//! Criterion companion to F1/F3: host-side cost of the three join
//! strategies at a fixed selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gis_core::{ExecOptions, JoinStrategy};
use gis_datagen::{build_fedmart, FedMartConfig};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let fm = build_fedmart(FedMartConfig {
        scale: 0.5,
        ..FedMartConfig::default()
    })
    .expect("build");
    let fed = &fm.federation;
    let k = fm.sizes.customers as i64 / 20;
    let sql = format!(
        "SELECT c.name, o.amount FROM customers c \
         JOIN orders o ON c.id = o.cust_id WHERE c.id < {k}"
    );
    let mut group = c.benchmark_group("join_strategies");
    group.sample_size(20);
    for strategy in [
        JoinStrategy::ShipWhole,
        JoinStrategy::SemiJoin,
        JoinStrategy::BindJoin,
        JoinStrategy::Auto,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &sql,
            |b, sql| {
                fed.set_exec_options(ExecOptions {
                    join_strategy: strategy,
                    bind_batch_size: 128,
                    ..ExecOptions::default()
                });
                b.iter(|| black_box(fed.query(sql).unwrap().batch.num_rows()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
