//! Criterion companion to experiment T1: end-to-end federated query
//! latency (host CPU time; the virtual-network numbers live in the
//! `t1_pushdown` report binary) with and without pushdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gis_core::{ExecOptions, OptimizerOptions};
use gis_datagen::{build_fedmart, FedMartConfig};
use std::hint::black_box;

fn bench_pushdown(c: &mut Criterion) {
    let fm = build_fedmart(FedMartConfig {
        scale: 0.5,
        ..FedMartConfig::default()
    })
    .expect("build");
    let fed = &fm.federation;
    let mut group = c.benchmark_group("pushdown");
    group.sample_size(20);
    for selectivity in [0.01f64, 0.5] {
        let k = (fm.sizes.orders as f64 * selectivity) as i64;
        let sql = format!("SELECT order_id, amount FROM orders WHERE order_id < {k}");
        group.bench_with_input(
            BenchmarkId::new("optimized", format!("sel={selectivity}")),
            &sql,
            |b, sql| {
                fed.set_optimizer_options(OptimizerOptions::default());
                fed.set_exec_options(ExecOptions::default());
                b.iter(|| black_box(fed.query(sql).unwrap().batch.num_rows()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("sel={selectivity}")),
            &sql,
            |b, sql| {
                fed.set_optimizer_options(OptimizerOptions::naive());
                fed.set_exec_options(ExecOptions::naive());
                b.iter(|| black_box(fed.query(sql).unwrap().batch.num_rows()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
