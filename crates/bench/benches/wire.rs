//! Wire-format throughput: encode/decode of batches and requests.
//! The wire is on every fragment's critical path; these benches keep
//! its cost visible.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gis_adapters::{wire_req, SourceRequest};
use gis_net::codec::{decode_frame, encode_frame_into};
use gis_net::wire::{decode_batch, encode_batch};
use gis_net::ColumnCodec;
use gis_storage::{CmpOp, ScanPredicate};
use gis_types::{Batch, DataType, Field, Schema, Value};
use std::hint::black_box;

fn sample_batch(rows: usize) -> Batch {
    let schema = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("score", DataType::Float64),
        Field::new("day", DataType::Date),
    ])
    .into_ref();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int64(i as i64),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Utf8(format!("name-{i}"))
                },
                Value::Float64(i as f64 / 3.0),
                Value::Date(i as i32),
            ]
        })
        .collect();
    Batch::from_rows(schema, &data).unwrap()
}

/// A single-column batch whose data reliably selects `codec` under
/// the exact size-based selection rule (asserted at bench setup).
fn codec_batch(codec: ColumnCodec, rows: usize) -> Batch {
    let (field, gen): (Field, Box<dyn Fn(usize) -> Value>) = match codec {
        // High-entropy wide integers: ~10-byte zigzag varints lose
        // to the flat layout and nothing repeats or deltas.
        ColumnCodec::Raw => (
            Field::new("v", DataType::Int64),
            Box::new(|i| Value::Int64((i as i64).wrapping_mul(-0x61c8_8646_80b5_83eb))),
        ),
        // Eight distinct strings cycling row-by-row: runs of one kill
        // RLE, the dictionary packs each row into a byte.
        ColumnCodec::Dict => (
            Field::new("v", DataType::Utf8),
            Box::new(|i| Value::Utf8(format!("category-{:02}", i % 8))),
        ),
        // Long runs of identical values.
        ColumnCodec::Rle => (
            Field::new("v", DataType::Int64),
            Box::new(|i| Value::Int64((i / 512) as i64)),
        ),
        // A sorted sequence: one-byte deltas.
        ColumnCodec::Delta => (
            Field::new("v", DataType::Int64),
            Box::new(|i| Value::Int64(1_000_000 + i as i64 * 3)),
        ),
        // Sparse: null suppression beats everything.
        ColumnCodec::NullSup => (
            Field::new("v", DataType::Int64),
            Box::new(|i| {
                if i % 17 == 0 {
                    Value::Int64(i as i64 * 7919)
                } else {
                    Value::Null
                }
            }),
        ),
    };
    let schema = Schema::new(vec![field]).into_ref();
    let data: Vec<Vec<Value>> = (0..rows).map(|i| vec![gen(i)]).collect();
    Batch::from_rows(schema, &data).unwrap()
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    const ROWS: usize = 4096;
    for codec in ColumnCodec::all() {
        let batch = codec_batch(codec, ROWS);
        let mut buf = BytesMut::new();
        let stats = encode_frame_into(&mut buf, &batch);
        assert_eq!(
            stats.codecs[codec as usize],
            1,
            "{} batch selected {} instead",
            codec.name(),
            stats.codec_summary()
        );
        let encoded = buf.freeze();
        // Throughput in *decoded* bytes: what the codec moves per
        // second of CPU, comparable across codecs.
        group.throughput(Throughput::Bytes(stats.raw as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", codec.name()),
            &batch,
            |b, batch| {
                let mut scratch = BytesMut::new();
                b.iter(|| {
                    scratch.clear();
                    black_box(encode_frame_into(&mut scratch, batch).wire)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decode", codec.name()),
            &encoded,
            |b, encoded| b.iter(|| black_box(decode_frame(encoded.clone()).unwrap().num_rows())),
        );
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for rows in [128usize, 4096] {
        let batch = sample_batch(rows);
        let encoded = encode_batch(&batch);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode_batch", rows),
            &batch,
            |b, batch| b.iter(|| black_box(encode_batch(batch).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_batch", rows),
            &encoded,
            |b, encoded| b.iter(|| black_box(decode_batch(encoded.clone()).unwrap().num_rows())),
        );
    }
    let lookup = SourceRequest::Lookup {
        table: "t".into(),
        key_columns: vec![0],
        keys: (0..1000i64).map(|i| vec![Value::Int64(i)]).collect(),
        projection: vec![0, 2],
    };
    group.bench_function("encode_lookup_1k_keys", |b| {
        b.iter(|| black_box(wire_req::encode_request(&lookup).len()))
    });
    let scan = SourceRequest::Scan {
        table: "t".into(),
        predicates: vec![
            ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(10)),
            ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("x".into())),
        ],
        projection: vec![0, 1, 2],
        sort: vec![],
        limit: Some(100),
    };
    group.bench_function("request_roundtrip", |b| {
        b.iter(|| {
            let bytes = wire_req::encode_request(&scan);
            black_box(wire_req::decode_request(bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire, bench_codecs);
criterion_main!(benches);
