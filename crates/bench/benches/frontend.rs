//! Frontend throughput: parse, bind, optimize — the mediator's
//! fixed per-query cost, independent of the network.

use criterion::{criterion_group, criterion_main, Criterion};
use gis_datagen::{build_fedmart, FedMartConfig};
use std::hint::black_box;

const SQL: &str = "SELECT c.region, count(*) AS n, sum(o.amount) AS rev \
                   FROM customers c JOIN orders o ON c.id = o.cust_id \
                   JOIN products p ON o.product_id = p.product_id \
                   WHERE c.balance > 100.0 AND p.category = 'tools' \
                   GROUP BY c.region HAVING count(*) > 3 \
                   ORDER BY rev DESC LIMIT 10";

fn bench_frontend(c: &mut Criterion) {
    let fm = build_fedmart(FedMartConfig::tiny()).expect("build");
    let fed = &fm.federation;
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse", |b| {
        b.iter(|| black_box(gis_sql::parse(SQL).unwrap()))
    });
    group.bench_function("parse_bind_optimize", |b| {
        b.iter(|| black_box(fed.logical_plan(SQL).unwrap().node_count()))
    });
    group.bench_function("explain_including_physical", |b| {
        b.iter(|| black_box(fed.explain(SQL).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
