//! Serving-runtime hot paths: cold vs cached query service, and the
//! session submit/reply round-trip through the scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_runtime::{Runtime, RuntimeConfig};
use std::hint::black_box;
use std::sync::Arc;

const SQL: &str = "SELECT c.region, sum(o.amount) AS rev \
                   FROM customers c JOIN orders o ON c.id = o.cust_id \
                   GROUP BY c.region ORDER BY rev DESC LIMIT 5";

fn bench_runtime(c: &mut Criterion) {
    let fm = build_fedmart(FedMartConfig::tiny()).expect("build");
    let fed = Arc::new(fm.federation);
    let runtime = Runtime::new(fed, RuntimeConfig::default().with_workers(2));
    let mut group = c.benchmark_group("runtime");

    let mut cold = runtime.session();
    cold.set_caching(false);
    group.bench_function("query_cold_no_caches", |b| {
        b.iter(|| black_box(cold.query(SQL).unwrap().batch.num_rows()))
    });

    let mut plan_only = runtime.session();
    plan_only.set_result_cache(false);
    plan_only.query(SQL).expect("prime plan cache");
    group.bench_function("query_plan_cached", |b| {
        b.iter(|| black_box(plan_only.query(SQL).unwrap().batch.num_rows()))
    });

    let warm = runtime.session();
    warm.query(SQL).expect("prime both caches");
    group.bench_function("query_fully_cached", |b| {
        b.iter(|| {
            let r = warm.query(SQL).unwrap();
            assert!(r.metrics.result_cache_hit);
            black_box(r.batch.num_rows())
        })
    });

    group.bench_function("submit_wait_roundtrip", |b| {
        b.iter(|| black_box(warm.submit("SELECT 1 AS x").unwrap().wait().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
