//! Component-engine microbenchmarks: access-path costs inside each
//! autonomous store, plus the ablation knob of experiment design
//! decision #1 (zone-map pruning on/off is approximated by
//! pruning-friendly vs pruning-hostile predicates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gis_storage::{CmpOp, ColumnStore, KvStore, RowStore, ScanPredicate};
use gis_types::{DataType, Field, Schema, SchemaRef, Value};
use std::hint::black_box;

const ROWS: i64 = 50_000;

fn schema() -> SchemaRef {
    Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("bucket", DataType::Int64),
        Field::new("score", DataType::Float64),
    ])
    .into_ref()
}

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::Int64(i),
        Value::Int64(i % 100),
        Value::Float64((i % 1000) as f64),
    ]
}

fn bench_row_store(c: &mut Criterion) {
    let mut store = RowStore::new("t", schema(), Some(0)).unwrap();
    for i in 0..ROWS {
        store.insert(row(i)).unwrap();
    }
    store.create_index(1).unwrap();
    let mut group = c.benchmark_group("row_store");
    group.bench_function("pk_point", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan(
                        &[ScanPredicate::new(0, CmpOp::Eq, Value::Int64(ROWS / 2))],
                        &[],
                        None,
                    )
                    .unwrap()
                    .batch
                    .num_rows(),
            )
        })
    });
    group.bench_function("pk_range_1pct", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan(
                        &[
                            ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(0)),
                            ScanPredicate::new(0, CmpOp::Lt, Value::Int64(ROWS / 100)),
                        ],
                        &[],
                        None,
                    )
                    .unwrap()
                    .batch
                    .num_rows(),
            )
        })
    });
    group.bench_function("secondary_eq", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan(
                        &[ScanPredicate::new(1, CmpOp::Eq, Value::Int64(7))],
                        &[],
                        None,
                    )
                    .unwrap()
                    .batch
                    .num_rows(),
            )
        })
    });
    group.bench_function("full_scan_filter", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan(
                        &[ScanPredicate::new(2, CmpOp::Lt, Value::Float64(10.0))],
                        &[],
                        None,
                    )
                    .unwrap()
                    .batch
                    .num_rows(),
            )
        })
    });
    group.finish();
}

fn bench_column_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_store");
    for segment in [1024usize, 8192] {
        let mut store = ColumnStore::with_segment_rows("t", schema(), segment);
        for i in 0..ROWS {
            store.append(row(i)).unwrap();
        }
        store.seal().unwrap();
        // id is clustered → zone maps prune; bucket is not → no
        // pruning. The pair shows what zone maps buy.
        group.bench_with_input(
            BenchmarkId::new("clustered_range", segment),
            &(),
            |b, ()| {
                b.iter(|| {
                    let (batch, _) = store
                        .scan(
                            &[
                                ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(1000)),
                                ScanPredicate::new(0, CmpOp::Lt, Value::Int64(1500)),
                            ],
                            &[0],
                            None,
                        )
                        .unwrap();
                    black_box(batch.num_rows())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("unclustered_eq", segment), &(), |b, ()| {
            b.iter(|| {
                let (batch, _) = store
                    .scan(
                        &[ScanPredicate::new(1, CmpOp::Eq, Value::Int64(7))],
                        &[0],
                        None,
                    )
                    .unwrap();
                black_box(batch.num_rows())
            })
        });
    }
    group.finish();
}

fn bench_kv_store(c: &mut Criterion) {
    let mut store = KvStore::new("t", schema(), 1).unwrap();
    for i in 0..ROWS {
        store.put(row(i)).unwrap();
    }
    let mut group = c.benchmark_group("kv_store");
    group.bench_function("point_get", |b| {
        b.iter(|| {
            black_box(
                store
                    .get(&[Value::Int64(ROWS / 3)])
                    .unwrap()
                    .map(|r| r.len()),
            )
        })
    });
    group.bench_function("range_1pct", |b| {
        b.iter(|| {
            black_box(
                store
                    .scan_range(
                        Some(&Value::Int64(0)),
                        Some(&Value::Int64(ROWS / 100)),
                        None,
                    )
                    .unwrap()
                    .num_rows(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_row_store, bench_column_store, bench_kv_store);
criterion_main!(benches);
