//! Criterion micro-benchmarks for the vectorized mediator kernels:
//! hash join, GROUP BY, and DISTINCT on synthetic key/value batches,
//! comparing the retained `Vec<Value>` reference path against the
//! vectorized serial and partitioned-parallel pipelines. Int64 keys
//! take the fixed-width u128 path; long Utf8 keys force the
//! hashed+verified path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gis_adapters::AggFunc;
use gis_bench::synth::kv_batch;
use gis_core::exec::aggregate::{
    distinct_kernel, distinct_ref, hash_aggregate_kernel, hash_aggregate_ref,
};
use gis_core::exec::join::{hash_join_kernel, hash_join_ref};
use gis_core::exec::keys::{KernelGov, KernelOptions};
use gis_core::expr::ScalarExpr;
use gis_core::plan::logical::{AggregateExpr, JoinNode};
use gis_sql::ast::JoinKind;
use gis_types::{DataType, Field, Schema};

const ROWS: usize = 100_000;
const CARDINALITY: u64 = 1_000;

fn parallel_opts() -> KernelOptions {
    KernelOptions {
        parallel_rows: 0,
        ..KernelOptions::from_exec(&gis_core::ExecOptions::default())
    }
}

fn bench_group_by(c: &mut Criterion) {
    let aggs = vec![
        AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::col(1)),
            distinct: false,
        },
    ];
    let groups = [ScalarExpr::col(0)];
    let mut g = c.benchmark_group("group_by_100k");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (key, long) in [("int64", false), ("utf8_long", true)] {
        let input = kv_batch(ROWS, CARDINALITY, long, 11);
        let mut fields = vec![Field::new("k", input.column(0).data_type())];
        for a in &aggs {
            fields.push(Field::new(a.display_name(), DataType::Int64));
        }
        let schema = Schema::new(fields).into_ref();
        g.bench_function(BenchmarkId::new("reference", key), |b| {
            b.iter(|| {
                hash_aggregate_ref(&input, &groups, &aggs, schema.clone())
                    .expect("ref agg")
                    .num_rows()
            })
        });
        g.bench_function(BenchmarkId::new("serial", key), |b| {
            b.iter(|| {
                hash_aggregate_kernel(
                    &input,
                    &groups,
                    &aggs,
                    schema.clone(),
                    &KernelOptions::serial(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel agg")
                .0
                .num_rows()
            })
        });
        g.bench_function(BenchmarkId::new("partition", key), |b| {
            b.iter(|| {
                hash_aggregate_kernel(
                    &input,
                    &groups,
                    &aggs,
                    schema.clone(),
                    &parallel_opts(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel agg")
                .0
                .num_rows()
            })
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let side = ROWS / 2;
    let card = (side as u64 / 4).max(8);
    let mut g = c.benchmark_group("hash_join_100k");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (key, long) in [("int64", false), ("utf8_long", true)] {
        let left = kv_batch(side, card, long, 21);
        let right = kv_batch(side, card, long, 22);
        let schema = JoinNode::compute_schema(left.schema(), right.schema(), JoinKind::Inner);
        g.bench_function(BenchmarkId::new("reference", key), |b| {
            b.iter(|| {
                hash_join_ref(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                )
                .expect("ref join")
                .num_rows()
            })
        });
        g.bench_function(BenchmarkId::new("serial", key), |b| {
            b.iter(|| {
                hash_join_kernel(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                    &KernelOptions::serial(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel join")
                .0
                .num_rows()
            })
        });
        g.bench_function(BenchmarkId::new("partition", key), |b| {
            b.iter(|| {
                hash_join_kernel(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                    &parallel_opts(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel join")
                .0
                .num_rows()
            })
        });
    }
    g.finish();
}

fn bench_distinct(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinct_100k");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (key, long) in [("int64", false), ("utf8_long", true)] {
        let input = kv_batch(ROWS, CARDINALITY, long, 31);
        g.bench_function(BenchmarkId::new("reference", key), |b| {
            b.iter(|| distinct_ref(&input).num_rows())
        });
        g.bench_function(BenchmarkId::new("serial", key), |b| {
            b.iter(|| {
                distinct_kernel(&input, &KernelOptions::serial(), &KernelGov::unbounded())
                    .expect("kernel distinct")
                    .0
                    .num_rows()
            })
        });
        g.bench_function(BenchmarkId::new("partition", key), |b| {
            b.iter(|| {
                distinct_kernel(&input, &parallel_opts(), &KernelGov::unbounded())
                    .expect("kernel distinct")
                    .0
                    .num_rows()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_group_by, bench_join, bench_distinct);
criterion_main!(benches);
