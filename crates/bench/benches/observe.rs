//! Tracing overhead: the same federated join with span collection
//! off and on. The traced run pays for span construction at every
//! operator plus one extra wire frame per fragment exchange; the
//! budget is ≤5% on wall time (the span frames also add virtual
//! network time, which is the *point* — tracing is metered, not
//! free — so the comparison here is host CPU).

use criterion::{criterion_group, criterion_main, Criterion};
use gis_core::ExecOptions;
use gis_datagen::{build_fedmart, FedMart, FedMartConfig};
use std::hint::black_box;

const JOIN: &str = "SELECT c.region, sum(o.amount) AS revenue \
     FROM customers c JOIN orders o ON c.id = o.cust_id \
     GROUP BY c.region ORDER BY revenue DESC";

fn fedmart() -> FedMart {
    build_fedmart(FedMartConfig {
        conditions: gis_net::NetworkConditions::instant(),
        ..FedMartConfig::tiny()
    })
    .expect("fedmart")
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let fm = fedmart();
    let mut group = c.benchmark_group("tracing");
    for (name, tracing) in [("off", false), ("on", true)] {
        let exec = ExecOptions {
            tracing,
            ..ExecOptions::default()
        };
        fm.federation.set_exec_options(exec);
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = fm.federation.query(black_box(JOIN)).unwrap();
                black_box(r.batch.num_rows())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
