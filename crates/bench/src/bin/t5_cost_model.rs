//! T5 — cost model accuracy: estimated vs measured cardinality.
//!
//! Runs the optimizer's cardinality estimator over a suite of plans
//! and compares against observed result sizes, reporting the q-error
//! (max(est/act, act/est)). Expected shape: single-table predicates
//! land within ~2x (statistics-backed); joins and aggregates drift
//! further (magic constants) but stay within an order of magnitude —
//! good enough for strategy choices, which is all the mediator asks
//! of them.

use gis_bench::Report;
use gis_core::cost::estimate;
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let queries: &[(&str, &str)] = &[
        ("full scan", "SELECT id FROM customers"),
        ("eq on indexed pk", "SELECT id FROM customers WHERE id = 42"),
        ("range 10%", "SELECT id FROM customers WHERE id < 100"),
        (
            "range 50%",
            "SELECT order_id FROM orders WHERE order_id < 5000",
        ),
        (
            "eq on categorical",
            "SELECT id FROM customers WHERE tier = 'gold'",
        ),
        (
            "conjunction",
            "SELECT id FROM customers WHERE id < 500 AND balance > 0.0",
        ),
        (
            "equi join",
            "SELECT c.id FROM customers c JOIN orders o ON c.id = o.cust_id",
        ),
        (
            "selective join",
            "SELECT c.id FROM customers c JOIN orders o ON c.id = o.cust_id WHERE c.id < 10",
        ),
        (
            "group by",
            "SELECT region, count(*) FROM customers GROUP BY region",
        ),
        ("global agg", "SELECT count(*) FROM orders"),
    ];
    let mut report = Report::new(
        "T5: estimated vs measured rows (q-error)",
        &["query", "estimated", "actual", "q_error"],
    );
    let mut worst: f64 = 1.0;
    for (name, sql) in queries {
        let plan = fed.logical_plan(sql).expect("plan");
        let est = estimate(&plan).rows;
        let r = fed.query(sql).expect("query");
        let act = r.batch.num_rows() as f64;
        let q = if act == 0.0 || est == 0.0 {
            f64::INFINITY
        } else {
            (est / act).max(act / est)
        };
        worst = worst.max(q);
        report.row(&[
            name,
            &format!("{est:.0}"),
            &format!("{act:.0}"),
            &format!("{q:.2}"),
        ]);
    }
    report.note(format!("worst q-error: {worst:.2}"));
    report.note("Expected shape: stats-backed single-table ≤2, join/agg ≤10 (magic constants).");
    report.print();
}
