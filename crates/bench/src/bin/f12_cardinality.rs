//! F12 — sketch-based statistics vs System-R magic constants.
//!
//! Two identical FedMart federations answer the same join/filter
//! workload. The *baseline* has its catalog statistics cleared, so
//! every selectivity comes from the cost model's last-resort magic
//! constants (eq 0.1, range 0.3, table rows 1000). The *analyzed*
//! federation ran `ANALYZE` first: per-column HyperLogLog NDV
//! sketches, equi-depth histograms and MCV lists collected over the
//! priced wire. Per query we assert the rows are bit-identical and
//! read the q-error (max(est/actual, actual/est)) the federation's
//! own feedback ring recorded for the run.
//!
//! Emits `BENCH_stats.json`. Full mode asserts the PR's acceptance
//! floor: median q-error improves >=5x with statistics, and at least
//! one query's plan gets measurably cheaper (strictly fewer wire
//! bytes). `--smoke` runs the tiny federation and skips the floors.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_types::Value;

/// Join/filter queries whose cardinality the magic constants get
/// wrong: FedMart's orders table is 10x the default row guess, its
/// products table 5x smaller, and the filters have selectivities far
/// from 0.1/0.3.
const WORKLOAD: &[(&str, &str)] = &[
    (
        "region_eq",
        "SELECT id, name FROM customers WHERE region = 'east'",
    ),
    (
        "qty_range",
        "SELECT order_id, amount FROM orders WHERE quantity >= 16",
    ),
    (
        "amount_band",
        "SELECT order_id FROM orders WHERE amount >= 100.0 AND amount < 400.0",
    ),
    (
        "category_eq",
        "SELECT product_id, pname FROM products WHERE category = 'toys'",
    ),
    (
        "name_prefix",
        "SELECT id FROM customers WHERE name LIKE 'cust-1%'",
    ),
    (
        "toys_orders",
        "SELECT o.order_id, p.pname FROM orders o \
         JOIN products p ON o.product_id = p.product_id \
         WHERE p.category = 'toys'",
    ),
    (
        "stock_join",
        "SELECT p.pname, s.qty FROM products p \
         JOIN stock s ON p.product_id = s.product_id \
         WHERE p.category = 'garden' AND s.qty < 50",
    ),
    (
        "east_toys",
        "SELECT o.order_id FROM customers c \
         JOIN orders o ON c.id = o.cust_id \
         JOIN products p ON o.product_id = p.product_id \
         WHERE c.region = 'east' AND p.category = 'toys'",
    ),
];

fn build(smoke: bool) -> Federation {
    let cfg = if smoke {
        FedMartConfig::tiny()
    } else {
        FedMartConfig::default()
    };
    build_fedmart(cfg).expect("build fedmart").federation
}

// A multiset compare: statistics legitimately change plans, and an
// unordered query's row order with them — the *rows* must not move.
fn canon(mut rows: Vec<Vec<Value>>) -> Vec<String> {
    rows.sort();
    rows.into_iter().map(|r| format!("{r:?}")).collect()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if v.is_empty() {
        return 1.0;
    }
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // The baseline federation plans from magic constants only:
    // registration-time statistics are wiped from the catalog.
    let baseline = build(smoke);
    baseline.catalog().clear_stats();
    // The analyzed federation collects sketches over the priced wire
    // before the workload runs.
    let analyzed = build(smoke);
    analyzed.catalog().clear_stats();
    let analyze_result = analyzed.query("ANALYZE").expect("ANALYZE");
    let analyze_bytes = analyzed.stats_gauges().analyze_bytes;

    let mut report = Report::new(
        format!(
            "F12: cardinality estimation with ANALYZE sketches vs magic constants (FedMart {})",
            if smoke { "tiny" } else { "default" }
        ),
        &[
            "query",
            "actual",
            "magic_est",
            "magic_q",
            "stats_est",
            "stats_q",
            "magic_bytes",
            "stats_bytes",
        ],
    );
    let mut rows_json = Vec::new();
    let mut magic_qs = Vec::new();
    let mut stats_qs = Vec::new();
    let mut cheaper_plans = 0usize;
    for (name, sql) in WORKLOAD {
        let b = baseline.query(sql).expect("baseline query");
        let a = analyzed.query(sql).expect("analyzed query");
        assert_eq!(
            canon(b.batch.to_rows()),
            canon(a.batch.to_rows()),
            "statistics changed results for {name}"
        );
        let bq = baseline
            .feedback()
            .ring()
            .last()
            .cloned()
            .expect("baseline feedback sample");
        let aq = analyzed
            .feedback()
            .ring()
            .last()
            .cloned()
            .expect("analyzed feedback sample");
        magic_qs.push(bq.q_error);
        stats_qs.push(aq.q_error);
        if a.metrics.bytes_shipped < b.metrics.bytes_shipped {
            cheaper_plans += 1;
        }
        report.row(&[
            name,
            &bq.actual_rows,
            &format!("{:.0}", bq.est_rows),
            &format!("{:.2}", bq.q_error),
            &format!("{:.0}", aq.est_rows),
            &format!("{:.2}", aq.q_error),
            &fmt_bytes(b.metrics.bytes_shipped),
            &fmt_bytes(a.metrics.bytes_shipped),
        ]);
        rows_json.push(format!(
            "    {{\"query\": \"{}\", \"actual\": {}, \"magic_est\": {:.1}, \
             \"magic_q\": {:.3}, \"stats_est\": {:.1}, \"stats_q\": {:.3}, \
             \"magic_bytes\": {}, \"stats_bytes\": {}}}",
            name,
            bq.actual_rows,
            bq.est_rows,
            bq.q_error,
            aq.est_rows,
            aq.q_error,
            b.metrics.bytes_shipped,
            a.metrics.bytes_shipped
        ));
    }
    let magic_median = median(magic_qs.clone());
    let stats_median = median(stats_qs.clone());
    let improvement = magic_median / stats_median;
    report.note(format!(
        "median q-error: magic constants {:.2} vs analyzed {:.2} = {} improvement",
        magic_median,
        stats_median,
        fmt_ratio(magic_median, stats_median),
    ));
    report.note(format!(
        "{} of {} queries picked a strictly cheaper plan (fewer wire bytes) with statistics",
        cheaper_plans,
        WORKLOAD.len(),
    ));
    report.note(format!(
        "ANALYZE cost: {} over the priced wire ({})",
        fmt_bytes(analyze_bytes),
        analyze_result.batch.row_values(0)[0],
    ));
    report
        .note("Rows are asserted bit-identical per query: statistics change plans, never answers.");
    report.print();

    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"f12_cardinality\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"magic_median_q\": {magic_median:.3},\n"));
    out.push_str(&format!("  \"stats_median_q\": {stats_median:.3},\n"));
    out.push_str(&format!("  \"improvement\": {improvement:.2},\n"));
    out.push_str(&format!("  \"cheaper_plans\": {cheaper_plans},\n"));
    out.push_str(&format!("  \"analyze_wire_bytes\": {analyze_bytes},\n"));
    out.push_str("  \"queries\": [\n");
    out.push_str(&rows_json.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_stats.json", out).expect("write BENCH_stats.json");
    println!("wrote BENCH_stats.json ({} queries)", WORKLOAD.len());

    assert!(
        analyze_bytes > 0,
        "ANALYZE traffic must be metered on the priced wire"
    );
    if !smoke {
        assert!(
            improvement >= 5.0,
            "ANALYZE statistics must cut median q-error >=5x; got {improvement:.2}x \
             ({magic_median:.2} vs {stats_median:.2})"
        );
        assert!(
            cheaper_plans >= 1,
            "at least one plan must get strictly cheaper (fewer wire bytes) with statistics"
        );
    }
}
