//! F5 — co-located join pushdown (the R* local-join claim).
//!
//! Two tables on the same relational source, joined with a
//! selectivity dial on the small side. With pushdown enabled the
//! planner ships the join when its estimated output beats shipping
//! both inputs (cost-gated); the baseline disables it. Expected
//! shape: pushed bytes ∝ join output at low σ; at high σ the gate
//! declines and both plans converge.

use gis_adapters::{RelationalAdapter, SourceAdapter};
use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::{ExecOptions, Federation};
use gis_net::NetworkConditions;
use gis_storage::RowStore;
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

const FACTS: i64 = 20_000;
const DIMS: i64 = 200;

fn fed() -> Federation {
    let fed = Federation::new();
    let erp = RelationalAdapter::new("erp");
    let facts = Schema::new(vec![
        Field::required("fid", DataType::Int64),
        Field::new("dim_id", DataType::Int64),
        Field::new("payload", DataType::Utf8),
    ])
    .into_ref();
    erp.add_table(RowStore::new("facts", facts, Some(0)).unwrap());
    erp.load(
        "facts",
        (0..FACTS).map(|i| {
            vec![
                Value::Int64(i),
                Value::Int64(i % DIMS),
                Value::Utf8(format!("row-{i}-{}", "x".repeat(24))),
            ]
        }),
    )
    .unwrap();
    let dims = Schema::new(vec![
        Field::required("dim_id", DataType::Int64),
        Field::new("label", DataType::Utf8),
    ])
    .into_ref();
    erp.add_table(RowStore::new("dims", dims, Some(0)).unwrap());
    erp.load(
        "dims",
        (0..DIMS).map(|d| vec![Value::Int64(d), Value::Utf8(format!("dim{d}"))]),
    )
    .unwrap();
    fed.add_source(
        Arc::new(erp) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed
}

fn main() {
    let f = fed();
    let mut report = Report::new(
        "F5: co-located join pushdown, facts ⋈ dims(σ) on one source",
        &[
            "dim_sel",
            "result_rows",
            "auto_bytes",
            "auto_ms",
            "mediator_bytes",
            "mediator_ms",
            "saving",
        ],
    );
    for selectivity in [0.005, 0.05, 0.25, 0.5, 1.0] {
        let k = ((DIMS as f64 * selectivity).round() as i64).max(1);
        let sql = format!(
            "SELECT f.payload, d.label FROM erp.facts f \
             JOIN erp.dims d ON f.dim_id = d.dim_id WHERE d.dim_id < {k}"
        );
        f.set_exec_options(ExecOptions::default());
        let pushed = f.query(&sql).expect("pushed");
        f.set_exec_options(ExecOptions {
            colocated_join: false,
            ..ExecOptions::default()
        });
        let mediator = f.query(&sql).expect("mediator");
        assert_eq!(pushed.batch.num_rows(), mediator.batch.num_rows());
        report.row(&[
            &format!("{selectivity:.3}"),
            &pushed.batch.num_rows(),
            &fmt_bytes(pushed.metrics.bytes_shipped),
            &format!("{:.0}", pushed.metrics.virtual_network_ms()),
            &fmt_bytes(mediator.metrics.bytes_shipped),
            &format!("{:.0}", mediator.metrics.virtual_network_ms()),
            &fmt_ratio(
                mediator.metrics.bytes_shipped as f64,
                pushed.metrics.bytes_shipped as f64,
            ),
        ]);
    }
    report.note(format!(
        "{FACTS} facts ⋈ {DIMS} dims; WAN 40 ms / 1 MB/s. Without pushdown the mediator's \
         strategy chooser still applies (bind-join on the dims side), so the baseline is the \
         engine's best non-colocated plan, not a strawman."
    ));
    report.note("The planner cost-gates the pushdown: at σ=1 the join output exceeds the inputs, so it declines and the two plans converge (saving → 1.0x, never below).");
    report.print();
}
