//! F7 — availability under outages (sf=tiny).
//!
//! Four claims, four tables, every fault scripted on the simulated
//! network so outcomes are exact and reproducible:
//!
//! 1. **Replica failover masks a hard partition.** With every source
//!    carrying one replica and every *primary* partitioned, the full
//!    workload still answers — 100% success, zero wrong rows — because
//!    fragments fail over to the surviving replica.
//! 2. **An open breaker converts retry storms into instant refusals.**
//!    The first query into a partition pays the full retry schedule in
//!    virtual wire time; once the breaker opens, refusals cost zero
//!    virtual microseconds.
//! 3. **Partial results trade completeness for availability.** With
//!    `partial_results` opted in and one source down, queries return
//!    the reachable rows plus a degradation report instead of failing.
//! 4. **Seeded fault storms are absorbed by retries + failover.** Under
//!    per-message Bernoulli loss (fixed seeds) on every link, the
//!    workload's rows never change — only its retry/failover metrics.

use gis_bench::Report;
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_net::{BreakerConfig, NetworkConditions};
use gis_types::Value;

const WORKLOAD: &[&str] = &[
    "SELECT count(*), sum(amount) FROM orders",
    "SELECT region, count(*) FROM customers GROUP BY region",
    "SELECT c.tier, sum(o.amount) AS rev FROM customers c \
     JOIN orders o ON c.id = o.cust_id GROUP BY c.tier",
    "SELECT category, count(*) FROM products GROUP BY category",
    "SELECT product_id, qty FROM stock WHERE qty > 400",
];

const SOURCES: &[&str] = &["crm", "sales", "inventory"];

/// FedMart tiny with one WAN replica per source.
fn replicated_fedmart() -> Federation {
    let fed = build_fedmart(FedMartConfig::tiny())
        .expect("fedmart")
        .federation;
    for source in SOURCES {
        fed.add_source_replica(source, NetworkConditions::wan())
            .expect("replica");
    }
    fed
}

/// Sorted result rows for every workload query (the ground truth).
fn baseline(fed: &Federation) -> Vec<Vec<Vec<Value>>> {
    WORKLOAD
        .iter()
        .map(|sql| {
            let mut rows = fed.query(sql).expect("baseline").batch.to_rows();
            rows.sort();
            rows
        })
        .collect()
}

fn failover_availability(report: &mut Report) {
    let fed = replicated_fedmart();
    let truth = baseline(&fed);
    // Hard-partition every primary: one of each source's two replicas
    // is now unreachable.
    for source in SOURCES {
        fed.link(source).expect("link").faults().partition();
    }
    let mut ok = 0u64;
    let mut wrong = 0u64;
    let mut failed = 0u64;
    let mut failovers = 0u64;
    for (sql, want) in WORKLOAD.iter().zip(&truth) {
        match fed.query(sql) {
            Ok(r) => {
                let mut rows = r.batch.to_rows();
                rows.sort();
                if &rows == want {
                    ok += 1;
                } else {
                    wrong += 1;
                }
                failovers += r.metrics.failures;
            }
            Err(_) => failed += 1,
        }
    }
    report.row(&[
        &(WORKLOAD.len() as u64),
        &ok,
        &failed,
        &wrong,
        &format!("{:.0}%", 100.0 * ok as f64 / WORKLOAD.len() as f64),
        &failovers,
    ]);
}

fn breaker_fail_fast(report: &mut Report) {
    let fed = build_fedmart(FedMartConfig::tiny())
        .expect("fedmart")
        .federation;
    fed.configure_breaker(BreakerConfig {
        failure_threshold: 3,
        cooldown_us: 60_000_000,
    });
    let link = fed.link("crm").expect("link");
    link.faults().partition();
    let sql = "SELECT count(*) FROM customers";

    // First query: full retry schedule against the dead link.
    let before = fed.clock().now_us();
    let err = fed.query(sql).expect_err("partitioned");
    let storm_us = fed.clock().now_us() - before;
    report.row(&[
        &"retry exhaustion",
        &err.code(),
        &link.metrics().failures(),
        &storm_us,
    ]);

    // Breaker is now open: refusals are instant.
    let before = fed.clock().now_us();
    let err = fed.query(sql).expect_err("fail-fast");
    let fast_us = fed.clock().now_us() - before;
    report.row(&[
        &"open-breaker fail-fast",
        &err.code(),
        &link.breaker().fast_failures(),
        &fast_us,
    ]);
    assert_eq!(fast_us, 0, "fail-fast must pay zero wire latency");
}

fn partial_results(report: &mut Report) {
    let fed = build_fedmart(FedMartConfig::tiny())
        .expect("fedmart")
        .federation;
    fed.configure_breaker(BreakerConfig::disabled());
    // A left join keeps its outer (reachable) rows when the inner
    // source degrades to an empty fragment.
    let sql = "SELECT c.id, o.order_id FROM customers c \
               LEFT JOIN orders o ON c.id = o.cust_id";
    let complete = fed.query(sql).expect("complete").batch.num_rows();
    fed.link("sales").expect("link").faults().partition();

    let strict = fed.query(sql).expect_err("strict mode fails");
    report.row(&[&"strict (default)", &"-", &strict.code(), &"error"]);

    let mut exec = fed.exec_options();
    exec.partial_results = true;
    fed.set_exec_options(exec);
    let r = fed.query(sql).expect("partial");
    let summary = r.degraded.as_ref().map(|d| d.summary()).unwrap_or_default();
    report.row(&[&"partial_results", &complete, &r.batch.num_rows(), &summary]);
}

fn fault_storm(report: &mut Report) {
    for (seed, p) in [(7u64, 0.05f64), (11, 0.15), (13, 0.30)] {
        let fed = replicated_fedmart();
        let truth = baseline(&fed);
        for link in fed.all_links() {
            link.faults().flaky(seed ^ link.name().len() as u64, p);
        }
        let mut ok = 0u64;
        let mut wrong = 0u64;
        let mut failed = 0u64;
        let mut retries = 0u64;
        let mut drops = 0u64;
        for (sql, want) in WORKLOAD.iter().zip(&truth) {
            match fed.query(sql) {
                Ok(r) => {
                    let mut rows = r.batch.to_rows();
                    rows.sort();
                    if &rows == want {
                        ok += 1;
                    } else {
                        wrong += 1;
                    }
                    retries += r.metrics.retries;
                    drops += r.metrics.failures;
                }
                Err(_) => failed += 1,
            }
        }
        report.row(&[
            &seed,
            &format!("{p:.2}"),
            &(WORKLOAD.len() as u64),
            &ok,
            &failed,
            &wrong,
            &drops,
            &retries,
        ]);
    }
}

fn main() {
    let mut a = Report::new(
        "F7a: replica failover, every primary hard-partitioned (tiny, 1 WAN replica per source)",
        &[
            "queries",
            "ok",
            "failed",
            "wrong_rows",
            "success",
            "failed_attempts",
        ],
    );
    failover_availability(&mut a);
    a.note("Acceptance: success = 100% and wrong_rows = 0 with one of two replicas down.");
    a.print();

    let mut b = Report::new(
        "F7b: virtual-time cost of refusing a dead source (breaker threshold 3)",
        &["path", "error", "count", "virtual_us"],
    );
    breaker_fail_fast(&mut b);
    b.note("Retry exhaustion pays the full backoff schedule; the open breaker refuses in 0us.");
    b.print();

    let mut c = Report::new(
        "F7c: graceful degradation with the orders source partitioned",
        &["mode", "complete_rows", "returned_rows", "report"],
    );
    partial_results(&mut c);
    c.note("Degraded answers carry an explicit report and are never admitted to the result cache.");
    c.print();

    let mut d = Report::new(
        "F7d: seeded fault storm, Bernoulli loss on every link (retries + failover absorb it)",
        &[
            "seed",
            "loss_p",
            "queries",
            "ok",
            "failed",
            "wrong_rows",
            "dropped_msgs",
            "retries",
        ],
    );
    fault_storm(&mut d);
    d.note(
        "Faults move the traffic metrics, never the rows: wrong_rows stays 0 at every loss rate.",
    );
    d.print();
}
