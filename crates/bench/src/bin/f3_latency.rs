//! F3 — sensitivity to WAN latency.
//!
//! The same moderately-selective federated join executed under
//! increasing one-way latency; all three strategies forced, plus
//! Auto's pick. Expected shape: at low latency the byte-minimizing
//! strategy wins; as latency grows, message count dominates and the
//! few-message strategies (semijoin, then ship-whole with its big
//! but few messages) close the gap; Auto tracks the winner.

use gis_bench::Report;
use gis_core::{ExecOptions, JoinStrategy};
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_net::NetworkConditions;

fn main() {
    let mut report = Report::new(
        "F3: virtual latency (ms) per strategy, customers(5%) ⋈ orders",
        &[
            "rtt_ms",
            "ship_ms",
            "semi_ms",
            "bind_ms",
            "auto_ms",
            "auto_pick",
        ],
    );
    for latency_ms in [0u64, 1, 10, 40, 100, 400] {
        let conditions = if latency_ms == 0 {
            NetworkConditions {
                latency_us: 0,
                bandwidth_bytes_per_sec: 1_000_000,
            }
        } else {
            NetworkConditions::with_latency_ms(latency_ms)
        };
        let fm = build_fedmart(FedMartConfig {
            conditions,
            ..FedMartConfig::default()
        })
        .expect("build");
        let fed = &fm.federation;
        let k = fm.sizes.customers as i64 / 20; // 5%
        let sql = format!(
            "SELECT c.name, o.amount FROM customers c \
             JOIN orders o ON c.id = o.cust_id WHERE c.id < {k}"
        );
        let mut times = Vec::new();
        for strategy in [
            JoinStrategy::ShipWhole,
            JoinStrategy::SemiJoin,
            JoinStrategy::BindJoin,
            JoinStrategy::Auto,
        ] {
            fed.set_exec_options(ExecOptions {
                join_strategy: strategy,
                bind_batch_size: 8,
                ..ExecOptions::default()
            });
            let r = fed.query(&sql).expect("query");
            times.push(r.metrics.virtual_network_ms());
        }
        fed.set_exec_options(ExecOptions::default());
        let plan = fed.explain(&sql).expect("explain");
        let pick = if plan.contains("BindJoin[semijoin") {
            "semijoin"
        } else if plan.contains("BindJoin[bind-join") {
            "bind-join"
        } else {
            "ship-whole"
        };
        report.row(&[
            &latency_ms,
            &format!("{:.0}", times[0]),
            &format!("{:.0}", times[1]),
            &format!("{:.0}", times[2]),
            &format!("{:.0}", times[3]),
            &pick,
        ]);
    }
    report.note(
        "bind_batch_size=8 to make bind-join's chattiness visible; bandwidth fixed at 1 MB/s.",
    );
    report.note("Expected shape: bind-join degrades fastest with RTT; Auto stays within ~10% of the per-row winner.");
    report.print();
}
