//! T1 — predicate + projection pushdown vs naive shipping.
//!
//! Sweeps filter selectivity on `orders` and compares the optimized
//! mediator (filters and projections execute at the source) against
//! the naive one (full table shipped, filtered at the mediator).
//! Expected shape: pushdown traffic scales with selectivity; naive
//! traffic is flat at the full-table size, so the advantage grows as
//! 1/selectivity.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::{ExecOptions, OptimizerOptions};
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let total_orders = fm.sizes.orders as f64;
    // order_id is uniform on [0, orders): a `<` threshold is an exact
    // selectivity dial.
    let mut report = Report::new(
        "T1: pushdown vs naive, SELECT order_id, amount FROM orders WHERE order_id < k",
        &[
            "selectivity",
            "rows",
            "push_bytes",
            "push_msgs",
            "push_net_ms",
            "naive_bytes",
            "naive_msgs",
            "naive_net_ms",
            "bytes_saved",
        ],
    );
    for selectivity in [0.001, 0.01, 0.1, 0.5, 1.0] {
        let k = (total_orders * selectivity).round() as i64;
        let sql = format!("SELECT order_id, amount FROM orders WHERE order_id < {k}");
        fed.set_optimizer_options(OptimizerOptions::default());
        fed.set_exec_options(ExecOptions::default());
        let push = fed.query(&sql).expect("optimized query");
        fed.set_optimizer_options(OptimizerOptions::naive());
        fed.set_exec_options(ExecOptions::naive());
        let naive = fed.query(&sql).expect("naive query");
        assert_eq!(
            push.batch.num_rows(),
            naive.batch.num_rows(),
            "results differ"
        );
        report.row(&[
            &format!("{selectivity:.3}"),
            &push.batch.num_rows(),
            &fmt_bytes(push.metrics.bytes_shipped),
            &push.metrics.messages,
            &format!("{:.1}", push.metrics.virtual_network_ms()),
            &fmt_bytes(naive.metrics.bytes_shipped),
            &naive.metrics.messages,
            &format!("{:.1}", naive.metrics.virtual_network_ms()),
            &fmt_ratio(
                naive.metrics.bytes_shipped as f64,
                push.metrics.bytes_shipped as f64,
            ),
        ]);
    }
    report.note(format!(
        "FedMart sf=1 ({} orders); WAN 40 ms / 1 MB/s; naive = no pushdown, no pruning, ship-whole.",
        fm.sizes.orders
    ));
    report.note(
        "Expected shape: push_bytes ∝ selectivity, naive_bytes flat, advantage ∝ 1/selectivity.",
    );
    report.print();
}
