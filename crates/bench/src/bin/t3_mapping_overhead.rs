//! T3 — the cost of heterogeneity mediation.
//!
//! The `customers` global table is mediated: legacy int32 keys widen,
//! balances convert cents→dollars (linear), tiers recode int→string
//! (value map). The same rows are also reachable un-mediated as
//! `crm.customers`. The experiment measures (a) the mediator-side CPU
//! cost of applying transforms, and (b) whether predicate pushdown
//! *through* the mapping still works (inverted literals). Expected
//! shape: byte traffic identical (transforms run mediator-side),
//! wall-time overhead small, inverted pushdown as selective as
//! native pushdown.

use gis_bench::{fmt_bytes, Report};
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let mut report = Report::new(
        "T3: mediation overhead, mapped `customers` vs raw `crm.customers`",
        &["query", "rows", "bytes", "msgs", "wall_ms"],
    );
    let cases: &[(&str, &str)] = &[
        (
            "full scan, mapped",
            "SELECT id, name, tier, balance FROM customers",
        ),
        (
            "full scan, raw",
            "SELECT cust_no, nm, tier_code, bal_cents FROM crm.customers",
        ),
        (
            "pushdown through linear transform (balance > $40k)",
            "SELECT id FROM customers WHERE balance > 40000.0",
        ),
        (
            "equivalent native predicate (cents > 4M)",
            "SELECT cust_no FROM crm.customers WHERE bal_cents > 4000000",
        ),
        (
            "pushdown through value map (tier = 'gold')",
            "SELECT id FROM customers WHERE tier = 'gold'",
        ),
        (
            "equivalent native predicate (tier_code = 3)",
            "SELECT cust_no FROM crm.customers WHERE tier_code = 3",
        ),
    ];
    // Warm up once so wall-times compare fairly.
    let _ = fed.query("SELECT count(*) FROM customers").unwrap();
    for (name, sql) in cases {
        // Median of 5 runs for wall time stability.
        let mut walls: Vec<u128> = Vec::new();
        let mut last = None;
        for _ in 0..5 {
            let r = fed.query(sql).expect("query");
            walls.push(r.metrics.wall_us);
            last = Some(r);
        }
        walls.sort_unstable();
        let r = last.unwrap();
        report.row(&[
            name,
            &r.batch.num_rows(),
            &fmt_bytes(r.metrics.bytes_shipped),
            &r.metrics.messages,
            &format!("{:.2}", walls[2] as f64 / 1e3),
        ]);
    }
    report.note("Mapped and raw scans ship the same bytes: transforms run at the mediator.");
    report.note("Expected shape: mapped row counts equal native ones; wall overhead <2x on full scans; pushdown survives invertible transforms.");
    report.print();
}
