//! F9 — materialized views vs re-shipping a repeated workload.
//!
//! The FedMart analytic workload (three join/aggregate queries) runs
//! repeatedly, the way a dashboard polls a mediator. Phase A answers
//! every repetition from the sources; phase B creates one
//! materialized view per query and re-runs the same workload, so
//! repetitions are answered from mediator-resident rows and ship
//! nothing. The views total *includes* the initial materialization —
//! the comparison is end-to-end bytes for the whole workload, not
//! just the steady state.
//!
//! The second table forces a refresh of each view: refresh cost is
//! the view's own fragment (a few aggregate rows), not the workload,
//! which is why the ratio grows with repetition count.
//!
//! Emits `BENCH_views.json`. Full mode asserts the PR's acceptance
//! floor: >=5x total-byte reduction. `--smoke` runs 3 repetitions.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};

/// The repeated analytic workload: (view name, SQL). View definitions
/// are the exact query texts, so the optimized plans meet the matcher
/// as structurally equal.
const WORKLOAD: &[(&str, &str)] = &[
    (
        "rev_by_region",
        "SELECT c.region, count(*) AS orders, sum(o.amount) AS revenue \
         FROM customers c JOIN orders o ON c.id = o.cust_id \
         GROUP BY c.region ORDER BY revenue DESC",
    ),
    (
        "units_by_category",
        "SELECT p.category, sum(o.quantity) AS units \
         FROM products p JOIN orders o ON p.product_id = o.product_id \
         GROUP BY p.category ORDER BY p.category",
    ),
    (
        "customers_by_region",
        "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region",
    ),
];

/// Runs the whole workload once, returning bytes shipped.
fn run_workload(fed: &Federation) -> u64 {
    WORKLOAD
        .iter()
        .map(|(_, sql)| {
            fed.query(sql)
                .expect("workload query")
                .metrics
                .bytes_shipped
        })
        .sum()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 20 };

    // Phase A: every repetition re-ships from the sources.
    let fm = build_fedmart(FedMartConfig::tiny()).expect("fedmart");
    let baseline_per_rep = run_workload(&fm.federation);
    let baseline_total = baseline_per_rep * reps;

    // Phase B: a fresh, identical federation with one view per query.
    let fm = build_fedmart(FedMartConfig::tiny()).expect("fedmart");
    let fed = &fm.federation;
    let mut create_bytes = Vec::new();
    for (name, sql) in WORKLOAD {
        let r = fed
            .create_materialized_view(name, sql)
            .expect("create view");
        create_bytes.push(r.metrics.bytes_shipped);
    }
    let mut steady_total = 0u64;
    let mut hits = 0usize;
    for _ in 0..reps {
        for (name, sql) in WORKLOAD {
            let r = fed.query(sql).expect("workload query");
            if r.metrics.views_used.contains(&name.to_string()) {
                hits += 1;
            }
            steady_total += r.metrics.bytes_shipped;
        }
    }
    assert_eq!(
        hits,
        WORKLOAD.len() * reps as usize,
        "every repetition must be answered from its view"
    );
    let views_total: u64 = create_bytes.iter().sum::<u64>() + steady_total;

    let mut report = Report::new(
        format!("F9: materialized views vs re-shipping ({reps} repetitions, FedMart tiny)"),
        &["view", "create_bytes", "steady_bytes", "refresh_bytes"],
    );
    let mut refresh_bytes = Vec::new();
    for (i, (name, _)) in WORKLOAD.iter().enumerate() {
        // A forced refresh re-ships exactly the view's fragment.
        let r = fed.refresh_materialized_view(name).expect("refresh");
        refresh_bytes.push(r.metrics.bytes_shipped);
        report.row(&[
            name,
            &fmt_bytes(create_bytes[i]),
            &fmt_bytes(0u64),
            &fmt_bytes(r.metrics.bytes_shipped),
        ]);
    }
    report.note(format!(
        "workload total: sources {} vs views {} (create + {} zero-byte repetitions) = {} reduction",
        fmt_bytes(baseline_total),
        fmt_bytes(views_total),
        reps,
        fmt_ratio(baseline_total as f64, views_total as f64),
    ));
    report.note(
        "Refresh cost is the view's own fragment, independent of how often the workload repeats.",
    );
    report.print();

    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"f9_materialized_views\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"repetitions\": {reps},\n"));
    out.push_str(&format!("  \"baseline_bytes\": {baseline_total},\n"));
    out.push_str(&format!("  \"views_bytes\": {views_total},\n"));
    out.push_str(&format!(
        "  \"reduction\": {:.2},\n",
        baseline_total as f64 / views_total as f64
    ));
    out.push_str("  \"views\": [\n");
    let body: Vec<String> = WORKLOAD
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            format!(
                "    {{\"view\": \"{}\", \"create_bytes\": {}, \"refresh_bytes\": {}}}",
                name, create_bytes[i], refresh_bytes[i]
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_views.json", out).expect("write BENCH_views.json");
    println!("wrote BENCH_views.json ({} views)", WORKLOAD.len());

    if !smoke {
        let ratio = baseline_total as f64 / views_total as f64;
        assert!(
            ratio >= 5.0,
            "views must cut workload bytes >=5x; got {ratio:.2}x \
             ({baseline_total} vs {views_total})"
        );
    }
}
