//! T2 — cost-based join ordering vs syntactic order.
//!
//! Multi-way join queries written in a deliberately bad order (big ⋈
//! big first, selective relation last). With the DP reorderer the
//! selective customer filter drives the plan; without it, the
//! mediator materializes the big intermediate. Expected shape: the
//! gap grows with join width.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::OptimizerOptions;
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let queries: &[(&str, String)] = &[
        (
            "3-way",
            "SELECT count(*) FROM orders o \
             JOIN stock s ON o.product_id = s.product_id \
             JOIN customers c ON o.cust_id = c.id \
             WHERE c.id < 10"
                .to_string(),
        ),
        (
            "4-way",
            "SELECT count(*) FROM orders o \
             JOIN stock s ON o.product_id = s.product_id \
             JOIN products p ON s.product_id = p.product_id \
             JOIN customers c ON o.cust_id = c.id \
             WHERE c.id < 10"
                .to_string(),
        ),
        (
            "5-way",
            "SELECT count(*) FROM orders o \
             JOIN stock s ON o.product_id = s.product_id \
             JOIN products p ON s.product_id = p.product_id \
             JOIN customers c ON o.cust_id = c.id \
             JOIN regions r ON c.region = r.region \
             WHERE c.id < 10"
                .to_string(),
        ),
    ];
    let mut report = Report::new(
        "T2: DP join ordering vs syntactic order (selective filter written last)",
        &[
            "query",
            "dp_wall_ms",
            "dp_bytes",
            "syntactic_wall_ms",
            "syntactic_bytes",
            "wall_speedup",
        ],
    );
    for (name, sql) in queries {
        fed.set_optimizer_options(OptimizerOptions::default());
        let dp = fed.query(sql).expect("dp query");
        fed.set_optimizer_options(OptimizerOptions {
            join_reorder: false,
            ..OptimizerOptions::default()
        });
        let syntactic = fed.query(sql).expect("syntactic query");
        assert_eq!(
            dp.batch.to_rows(),
            syntactic.batch.to_rows(),
            "{name}: orders must not change results"
        );
        report.row(&[
            name,
            &format!("{:.1}", dp.metrics.wall_us as f64 / 1e3),
            &fmt_bytes(dp.metrics.bytes_shipped),
            &format!("{:.1}", syntactic.metrics.wall_us as f64 / 1e3),
            &fmt_bytes(syntactic.metrics.bytes_shipped),
            &fmt_ratio(syntactic.metrics.wall_us as f64, dp.metrics.wall_us as f64),
        ]);
    }
    report.note("Identical fragments ship either way; the reorderer saves mediator work (wall time) by joining the selective side first, and can unlock bind-joins.");
    report.note("Expected shape: speedup grows with join width.");
    report.print();
}
