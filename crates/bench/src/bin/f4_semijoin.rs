//! F4 — semijoin byte reduction vs join selectivity (the SDD-1
//! claim).
//!
//! For each outer selectivity, compare what ship-whole and semijoin
//! move for the inner relation, and report the reduction ratio.
//! Expected shape: reduction ≈ 1 − (matched fraction), degrading to
//! ≤1x (overhead) when everything matches.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::{ExecOptions, JoinStrategy};
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let customers = fm.sizes.customers as f64;
    let mut report = Report::new(
        "F4: semijoin reduction, customers(σ) ⋈ orders (inner = orders)",
        &[
            "sel",
            "matched_rows",
            "ship_bytes",
            "semi_bytes",
            "reduction",
            "key_overhead_bytes",
        ],
    );
    for selectivity in [0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let k = ((customers * selectivity).round() as i64).max(1);
        let sql = format!(
            "SELECT o.order_id FROM customers c \
             JOIN orders o ON c.id = o.cust_id WHERE c.id < {k}"
        );
        fed.set_exec_options(ExecOptions {
            join_strategy: JoinStrategy::ShipWhole,
            ..ExecOptions::default()
        });
        let ship = fed.query(&sql).expect("ship");
        fed.set_exec_options(ExecOptions {
            join_strategy: JoinStrategy::SemiJoin,
            ..ExecOptions::default()
        });
        let semi = fed.query(&sql).expect("semi");
        assert_eq!(ship.batch.num_rows(), semi.batch.num_rows());
        // Key overhead ≈ bytes the semijoin run sent *to* sales beyond
        // the scan request (approximate: request-side of the lookup).
        let key_overhead = (k as u64) * 9;
        report.row(&[
            &format!("{selectivity:.3}"),
            &semi.batch.num_rows(),
            &fmt_bytes(ship.metrics.bytes_shipped),
            &fmt_bytes(semi.metrics.bytes_shipped),
            &fmt_ratio(
                ship.metrics.bytes_shipped as f64,
                semi.metrics.bytes_shipped as f64,
            ),
            &fmt_bytes(key_overhead),
        ]);
    }
    report.note("Zipf skew means low-id customers are *hot*: matched rows exceed uniform expectation at small σ.");
    report.note("Expected shape: reduction falls monotonically toward ~1x as σ→1 (keys+matches approach the full relation).");
    report.print();
}
