//! F6 — the serving runtime under concurrent load (sf=1).
//!
//! Three claims, three tables:
//!
//! 1. **Throughput scales with workers.** A fixed mixed workload
//!    pushed through 1→8 workers by 8 client threads, with the
//!    simulated network paced to real time so WAN waits occupy host
//!    time. One worker serializes every wait; more workers overlap
//!    them, so queries/sec rises with the worker count.
//! 2. **The plan cache collapses frontend latency.** Host-side
//!    parse→bind→optimize for a 3-way join is orders of magnitude
//!    slower than a warm cache hit serving the same query.
//! 3. **Admission control sheds load instead of deadlocking.** A
//!    burst of 200 submissions against 1 worker and a depth-8 queue:
//!    the excess is rejected `OVERLOADED` immediately, everything
//!    admitted completes.

use gis_bench::Report;
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_runtime::{Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Instant;

const JOIN_SQL: &str = "SELECT c.region, p.category, sum(o.amount) AS revenue \
     FROM customers c \
     JOIN orders o ON c.id = o.cust_id \
     JOIN products p ON o.product_id = p.product_id \
     WHERE c.tier = 'gold' \
     GROUP BY c.region, p.category ORDER BY revenue DESC LIMIT 10";

fn workload() -> Vec<String> {
    vec![
        "SELECT count(*), sum(amount) FROM orders".into(),
        "SELECT region, count(*) FROM customers GROUP BY region".into(),
        "SELECT c.tier, sum(o.amount) AS rev FROM customers c \
         JOIN orders o ON c.id = o.cust_id GROUP BY c.tier"
            .into(),
        "SELECT category, count(*) FROM products GROUP BY category".into(),
        "SELECT count(*) FROM orders WHERE order_day >= DATE '2020-01-01'".into(),
        JOIN_SQL.into(),
    ]
}

fn build() -> Arc<Federation> {
    let fm = build_fedmart(FedMartConfig::default()).expect("build sf=1");
    Arc::new(fm.federation)
}

fn throughput_sweep(report: &mut Report) {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 2;
    let queries = workload();
    for workers in [1usize, 2, 4, 8] {
        let fed = build();
        let runtime = Runtime::new(
            fed.clone(),
            RuntimeConfig::default()
                .with_workers(workers)
                .with_queue_depth(4096),
        );
        // Warm the plan cache so the sweep measures execution
        // concurrency, not first-compile effects.
        let warmer = runtime.session();
        for sql in &queries {
            warmer.query(sql).expect("warm");
        }
        // Pace the network to real time: simulated WAN waits occupy
        // host time, so overlapping in-flight queries across workers
        // is what raises throughput — exactly as in a live federation.
        fed.clock().set_pace_permille(1_000);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let runtime = &runtime;
                let queries = &queries;
                scope.spawn(move || {
                    let mut session = runtime.session();
                    session.set_result_cache(false); // force real execution
                    for _ in 0..ROUNDS {
                        for sql in queries {
                            session.query(sql).expect("query");
                        }
                    }
                });
            }
        });
        let elapsed = started.elapsed().as_secs_f64();
        let total = (CLIENTS * ROUNDS * queries.len()) as f64;
        let stats = runtime.stats();
        report.row(&[
            &workers,
            &(total as u64),
            &format!("{elapsed:.2}"),
            &format!("{:.0}", total / elapsed),
            &stats.plan_cache_hits,
            &stats.rejected,
        ]);
    }
}

fn plan_cache_latency(report: &mut Report) {
    const SAMPLES: usize = 50;
    let fed = build();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());

    // Cold frontend: full parse→bind→optimize, timed directly.
    let mut cold_us: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            fed.logical_plan(JOIN_SQL).expect("plan");
            t.elapsed().as_micros()
        })
        .collect();
    cold_us.sort_unstable();

    // Warm hit: the runtime serves the same query from its caches —
    // the host-side cost of a fully warm request.
    let session = runtime.session();
    session.query(JOIN_SQL).expect("prime");
    let mut warm_us: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let r = session.query(JOIN_SQL).expect("warm query");
            assert!(r.metrics.plan_cache_hit && r.metrics.result_cache_hit);
            t.elapsed().as_micros()
        })
        .collect();
    warm_us.sort_unstable();

    let cold = cold_us[SAMPLES / 2] as f64;
    let warm = warm_us[SAMPLES / 2] as f64;
    report.row(&[
        &"3-way join + group/order",
        &format!("{cold:.0}"),
        &format!("{warm:.0}"),
        &format!("{:.1}x", cold / warm.max(1.0)),
    ]);
}

fn admission_burst(report: &mut Report) {
    const BURST: usize = 200;
    let fed = build();
    let runtime = Runtime::new(
        fed,
        RuntimeConfig::default().with_workers(1).with_queue_depth(8),
    );
    let mut session = runtime.session();
    session.set_result_cache(false);
    let started = Instant::now();
    let mut pending = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..BURST {
        match session.submit(JOIN_SQL) {
            Ok(p) => pending.push(p),
            Err(_) => rejected += 1,
        }
    }
    let reject_elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let admitted = pending.len() as u64;
    for p in pending {
        p.wait().expect("admitted queries complete");
    }
    let drain_ms = started.elapsed().as_secs_f64() * 1e3;
    report.row(&[
        &BURST,
        &admitted,
        &rejected,
        &format!("{reject_elapsed_ms:.1}"),
        &format!("{drain_ms:.0}"),
    ]);
}

fn main() {
    let mut t = Report::new(
        "F6a: throughput vs workers (8 clients, mixed workload, paced WAN, result cache off)",
        &[
            "workers",
            "queries",
            "elapsed_s",
            "qps",
            "plan_hits",
            "rejected",
        ],
    );
    throughput_sweep(&mut t);
    t.note(
        "qps rises with workers as overlapped WAN waits amortize; zero rejections at depth 4096.",
    );
    t.print();

    let mut p = Report::new(
        "F6b: host frontend latency, cold parse->bind->optimize vs warm cache hit (median of 50)",
        &["query", "cold_us", "warm_hit_us", "speedup"],
    );
    plan_cache_latency(&mut p);
    p.note("Acceptance: speedup >= 5x. A warm hit skips the frontend and execution entirely.");
    p.print();

    let mut a = Report::new(
        "F6c: admission burst, 200 submits vs 1 worker / queue depth 8",
        &["burst", "admitted", "rejected", "reject_in_ms", "drain_ms"],
    );
    admission_burst(&mut a);
    a.note("Rejections are immediate (reject_in_ms is the whole submit loop); admitted work drains without deadlock.");
    a.print();
}
