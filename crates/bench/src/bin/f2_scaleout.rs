//! F2 — scale-out across component sources.
//!
//! The same `orders` data horizontally partitioned over 1–16 columnar
//! sources; the query is a filtered aggregate over the UNION of the
//! partitions. Expected shape: total bytes ~constant (the data is the
//! data), per-source bytes ∝ 1/N, message count grows linearly (one
//! fragment per source) — the mediator's integration overhead is the
//! per-source fixed cost.

use gis_bench::{fmt_bytes, Report};
use gis_core::ExecOptions;
use gis_datagen::{build_fedmart, FedMartConfig};

fn main() {
    let mut report = Report::new(
        "F2: scale-out, SELECT count(*), sum(amount) over partitioned orders (day filter)",
        &[
            "sources",
            "rows",
            "total_bytes",
            "max_source_bytes",
            "msgs",
            "seq_net_ms",
            "par_net_ms",
            "wall_ms",
        ],
    );
    for parts in [1usize, 2, 4, 8, 16] {
        let fm = build_fedmart(FedMartConfig {
            sales_partitions: parts,
            ..FedMartConfig::default()
        })
        .expect("build");
        let fed = &fm.federation;
        fed.set_exec_options(ExecOptions {
            parallel_fetch: true,
            ..ExecOptions::default()
        });
        let sql = format!(
            "SELECT count(*) AS n, sum(amount) AS total FROM {} \
             WHERE order_day >= DATE '2020-01-01'",
            fm.orders_from_clause()
        );
        let r = fed.query(&sql).expect("query");
        let max_source = r
            .metrics
            .per_source
            .values()
            .map(|t| t.bytes)
            .max()
            .unwrap_or(0);
        report.row(&[
            &parts,
            &r.batch.row_values(0)[0],
            &fmt_bytes(r.metrics.bytes_shipped),
            &fmt_bytes(max_source),
            &r.metrics.messages,
            &format!("{:.0}", r.metrics.virtual_network_ms()),
            &format!("{:.0}", r.metrics.virtual_parallel_ms()),
            &format!("{:.1}", r.metrics.wall_us as f64 / 1e3),
        ]);
    }
    report.note("seq_net_ms = shared-clock sum (total work); par_net_ms = busiest link (elapsed lower bound with parallel_fetch=on).");
    report.note("Expected shape: total_bytes flat, max_source_bytes and par_net_ms ∝ 1/N (plus per-source fixed latency), msgs ∝ N.");
    report.print();
}
