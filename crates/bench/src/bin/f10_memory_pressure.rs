//! F10 — the memory governor under pressure (sf=1).
//!
//! Three claims, three tables:
//!
//! 1. **Spilling preserves answers.** The hash-heavy workload run
//!    ungoverned vs under a budget that forces every hash kernel
//!    through the grace-hash disk path: rows are bit-identical, the
//!    cost is wall time and spill I/O (both reported).
//! 2. **Runaway queries die; the runtime survives.** A storm of
//!    concurrent clients mixing well-behaved point/aggregate queries
//!    with memory-hungry multi-join group-bys, under a per-query
//!    hard limit with spilling disabled. Every runaway is killed
//!    with `MEM`; every well-behaved query completes; nothing
//!    deadlocks and the pool drains back to zero.
//! 3. **The governor is observable.** The run ends by printing the
//!    `gis_mem_*` / `gis_spill_*` gauge lines scraped from
//!    `Runtime::render_text()`.
//!
//! `--smoke` shrinks the federation and the storm for CI.

use gis_bench::{fmt_bytes, Report};
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_runtime::{Runtime, RuntimeConfig};
use gis_types::Value;
use std::sync::Arc;
use std::time::Instant;

/// Hash-heavy: three-source join, group-by, order-by — every
/// governed kernel (join build, group table, sort buffer) fires.
const RUNAWAY_SQL: &str = "SELECT c.region, p.category, sum(o.amount) AS revenue \
     FROM customers c \
     JOIN orders o ON c.id = o.cust_id \
     JOIN products p ON o.product_id = p.product_id \
     GROUP BY c.region, p.category ORDER BY revenue DESC";

fn well_behaved() -> Vec<String> {
    vec![
        "SELECT name, region FROM customers WHERE id = 7".into(),
        "SELECT count(*) FROM orders".into(),
        "SELECT count(*) FROM products WHERE price > 100".into(),
    ]
}

fn build(smoke: bool) -> Arc<Federation> {
    let cfg = if smoke {
        FedMartConfig::tiny()
    } else {
        FedMartConfig::default()
    };
    Arc::new(build_fedmart(cfg).expect("build fedmart").federation)
}

fn canon(rows: Vec<Vec<Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// F10a: the same workload with and without forced spilling.
fn spill_fidelity(report: &mut Report, smoke: bool) {
    let mut unbounded_digest: Option<Vec<String>> = None;
    for (label, limit) in [("unbounded", u64::MAX), ("spill-everything", 1u64)] {
        let fed = build(smoke);
        let runtime = Runtime::new(
            fed,
            RuntimeConfig::default()
                .with_workers(2)
                .with_result_cache_bytes(0) // every run must execute
                .with_query_mem_limit(limit),
        );
        let session = runtime.session();
        let started = Instant::now();
        let mut digest = Vec::new();
        let rounds = if smoke { 2 } else { 5 };
        for _ in 0..rounds {
            let r = session.query(RUNAWAY_SQL).expect("governed query");
            digest = canon(r.batch.to_rows());
        }
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = runtime.stats();
        match &unbounded_digest {
            None => unbounded_digest = Some(digest.clone()),
            Some(reference) => {
                assert_eq!(
                    reference, &digest,
                    "spilled rows diverged from unbounded rows"
                );
                assert!(stats.spill_events > 0, "1-byte budget must force spilling");
            }
        }
        report.row(&[
            &label,
            &rounds,
            &format!("{elapsed_ms:.1}"),
            &stats.spill_events,
            &fmt_bytes(stats.spilled_bytes),
            &digest.len(),
        ]);
    }
}

/// F10b: the storm. Returns the governed runtime's exposition so the
/// caller can print the governor gauges (claim 3).
fn runaway_storm(report: &mut Report, smoke: bool) -> String {
    let clients = if smoke { 4 } else { 8 };
    let rounds = if smoke { 2 } else { 4 };
    let fed = build(smoke);
    let runtime = Runtime::new(
        fed,
        RuntimeConfig::default()
            .with_workers(4)
            .with_queue_depth(4096)
            .with_query_mem_limit(64 * 1024) // runaways blow this
            .with_spill_cap(0) // no mercy: excess is fatal
            // Caches off so the drained pool reads exactly zero —
            // resident cache entries hold pool bytes by design.
            .with_plan_cache_capacity(0)
            .with_result_cache_bytes(0),
    );
    let benign = well_behaved();
    let started = Instant::now();
    let mut ok = 0u64;
    let mut killed = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let runtime = &runtime;
            let benign = &benign;
            handles.push(scope.spawn(move || {
                let mut session = runtime.session();
                session.set_result_cache(false);
                let mut ok = 0u64;
                let mut killed = 0u64;
                for _ in 0..rounds {
                    if c % 2 == 0 {
                        // Runaway client: must die with MEM, nothing else.
                        let err = session.query(RUNAWAY_SQL).expect_err("runaway survived");
                        assert_eq!(err.code(), "MEM", "unexpected: {err}");
                        killed += 1;
                    } else {
                        for sql in benign {
                            session.query(sql).expect("well-behaved query");
                            ok += 1;
                        }
                    }
                }
                (ok, killed)
            }));
        }
        for h in handles {
            let (o, k) = h.join().unwrap();
            ok += o;
            killed += k;
        }
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = runtime.stats();
    assert_eq!(stats.mem_killed, killed, "every kill is counted");
    assert_eq!(stats.failed, 0, "no error besides MEM");
    assert_eq!(stats.mem_pool_used, 0, "pool drains after the storm");
    report.row(&[
        &clients,
        &(ok + killed),
        &ok,
        &killed,
        &stats.mem_killed,
        &format!("{elapsed_ms:.0}"),
    ]);
    runtime.render_text()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut a = Report::new(
        "F10a: hash-heavy 3-way join+group+order, unbounded vs 1-byte budget (grace-hash spill)",
        &[
            "config",
            "rounds",
            "elapsed_ms",
            "spill_events",
            "spill_bytes",
            "rows",
        ],
    );
    spill_fidelity(&mut a, smoke);
    a.note("Row digests are bit-identical across configs (asserted per run); spilling trades wall time for bounded memory.");
    a.print();

    let mut b = Report::new(
        "F10b: runaway storm, per-query limit 64KB / spill off — kills vs completions",
        &[
            "clients",
            "queries",
            "completed",
            "runaways_killed",
            "stat_mem_killed",
            "elapsed_ms",
        ],
    );
    let expo = runaway_storm(&mut b, smoke);
    b.note("Every runaway dies with MEM; every well-behaved query completes; the pool is fully reclaimed.");
    b.print();

    println!("## F10c: governor gauges scraped from render_text()\n");
    for line in expo
        .lines()
        .filter(|l| l.contains("gis_mem_") || l.contains("gis_spill_") || l.contains("mem_killed"))
    {
        println!("{line}");
    }
}
