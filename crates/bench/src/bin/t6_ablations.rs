//! T6 — ablation study: what each mediator mechanism is worth.
//!
//! A representative federated query runs with the full optimizer,
//! then with each mechanism disabled in isolation. Expected shape:
//! every ablation costs traffic and/or time; predicate pushdown
//! dominates, matching the design decisions called out in DESIGN.md.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::{ExecOptions, JoinStrategy, OptimizerOptions};
use gis_datagen::{build_fedmart, FedMartConfig};

const SQL: &str = "SELECT c.region, count(*) AS n, sum(o.amount) AS rev \
                   FROM customers c JOIN orders o ON c.id = o.cust_id \
                   WHERE c.tier = 'gold' AND c.balance > 20000.0 AND o.quantity >= 5 \
                   GROUP BY c.region ORDER BY rev DESC LIMIT 5";

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let full_opt = OptimizerOptions::default();
    let full_exec = ExecOptions::default();

    let variants: Vec<(&str, OptimizerOptions, ExecOptions)> = vec![
        ("full optimizer (baseline)", full_opt, full_exec),
        (
            "no predicate pushdown",
            OptimizerOptions {
                predicate_pushdown: false,
                ..full_opt
            },
            full_exec,
        ),
        (
            "no projection pruning",
            OptimizerOptions {
                projection_pruning: false,
                ..full_opt
            },
            full_exec,
        ),
        (
            "no join reordering",
            OptimizerOptions {
                join_reorder: false,
                ..full_opt
            },
            full_exec,
        ),
        (
            "no constant folding",
            OptimizerOptions {
                fold_constants: false,
                ..full_opt
            },
            full_exec,
        ),
        (
            "no limit pushdown",
            OptimizerOptions {
                limit_pushdown: false,
                ..full_opt
            },
            full_exec,
        ),
        (
            "forced ship-whole joins",
            full_opt,
            ExecOptions {
                join_strategy: JoinStrategy::ShipWhole,
                ..full_exec
            },
        ),
        (
            "no aggregate pushdown",
            full_opt,
            ExecOptions {
                aggregate_pushdown: false,
                ..full_exec
            },
        ),
        (
            "everything off",
            OptimizerOptions::naive(),
            ExecOptions::naive(),
        ),
    ];

    let mut report = Report::new(
        "T6: ablations on a gold-tier revenue query (customers ⋈ orders, grouped)",
        &["configuration", "bytes", "msgs", "net_ms", "bytes_vs_full"],
    );
    let mut baseline_bytes = 0u64;
    let mut reference_rows = None;
    for (name, opt, exec) in variants {
        fed.set_optimizer_options(opt);
        fed.set_exec_options(exec);
        let r = fed.query(SQL).expect("query");
        match &reference_rows {
            None => reference_rows = Some(r.batch.to_rows()),
            Some(want) => assert_eq!(&r.batch.to_rows(), want, "{name} changed results"),
        }
        if baseline_bytes == 0 {
            baseline_bytes = r.metrics.bytes_shipped;
        }
        report.row(&[
            &name,
            &fmt_bytes(r.metrics.bytes_shipped),
            &r.metrics.messages,
            &format!("{:.0}", r.metrics.virtual_network_ms()),
            &fmt_ratio(r.metrics.bytes_shipped as f64, baseline_bytes as f64),
        ]);
    }
    report.note("All configurations return identical rows (asserted).");
    report.note("Expected shape: every ablation ≥1.0x bytes; predicate pushdown dominates on this selective query.");
    report.print();
}
