//! T4 — source capability asymmetry.
//!
//! The *same* 20 000-row table is loaded behind all three adapter
//! classes (relational / columnar / key-value) and probed with the
//! same three query shapes. Expected shape: the relational source
//! answers everything natively (tiny responses); the columnar source
//! filters but cannot aggregate (aggregation input ships); the KV
//! source cannot filter on non-key columns at all (full table ships,
//! mediator filters).

use gis_adapters::{ColumnarAdapter, KvAdapter, RelationalAdapter, SourceAdapter};
use gis_bench::{fmt_bytes, Report};
use gis_core::Federation;
use gis_net::NetworkConditions;
use gis_storage::{ColumnStore, KvStore, RowStore};
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

const ROWS: i64 = 20_000;

fn rows() -> impl Iterator<Item = Vec<Value>> {
    (0..ROWS).map(|i| {
        vec![
            Value::Int64(i),
            Value::Int64(i % 97),
            Value::Utf8(["red", "green", "blue", "teal"][(i % 4) as usize].into()),
            Value::Float64((i % 1000) as f64 / 10.0),
        ]
    })
}

fn schema() -> gis_types::SchemaRef {
    Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("bucket", DataType::Int64),
        Field::new("color", DataType::Utf8),
        Field::new("score", DataType::Float64),
    ])
    .into_ref()
}

fn main() {
    let fed = Federation::new();
    let rel = RelationalAdapter::new("rel");
    rel.add_table(RowStore::new("events", schema(), Some(0)).unwrap());
    rel.load("events", rows()).unwrap();
    fed.add_source(
        Arc::new(rel) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    let col = ColumnarAdapter::new("col");
    col.add_table(ColumnStore::with_segment_rows("events", schema(), 1024));
    col.load("events", rows()).unwrap();
    fed.add_source(
        Arc::new(col) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    let kv = KvAdapter::new("kv");
    kv.add_table(KvStore::new("events", schema(), 1).unwrap());
    kv.load("events", rows()).unwrap();
    fed.add_source(
        Arc::new(kv) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();

    let shapes: &[(&str, &str)] = &[
        (
            "point lookup (id = k)",
            "SELECT * FROM {S}.events WHERE id = 12345",
        ),
        (
            "selective non-key filter",
            "SELECT id FROM {S}.events WHERE color = 'teal' AND score > 90.0",
        ),
        (
            "grouped aggregate",
            "SELECT color, count(*), avg(score) FROM {S}.events GROUP BY color",
        ),
    ];
    let mut report = Report::new(
        "T4: identical data behind different capability profiles (bytes shipped)",
        &[
            "query shape",
            "relational FRPJASLB",
            "columnar FRP---LB",
            "kv FR----LB*",
        ],
    );
    for (name, template) in shapes {
        let mut cells: Vec<String> = vec![name.to_string()];
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for source in ["rel", "col", "kv"] {
            let sql = template.replace("{S}", source);
            let r = fed.query(&sql).expect("query");
            let mut sorted = r.batch.to_rows();
            sorted.sort();
            match &reference {
                None => reference = Some(sorted),
                Some(want) => assert_eq!(&sorted, want, "{source} diverged on {name}"),
            }
            cells.push(format!(
                "{} ({} msgs)",
                fmt_bytes(r.metrics.bytes_shipped),
                r.metrics.messages
            ));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        report.row(&refs);
    }
    report.note("All three answer identically; capability decides *where* the filtering happens and therefore what ships.");
    report.note("Expected shape: rel ≤ col ≤ kv bytes on every row; aggregate gap largest (rel ships 4 rows, others ship inputs).");
    report.print();
}
