//! F8 — mediator kernel throughput (vectorized key pipeline).
//!
//! Direct kernel-level measurement of the three mediator integration
//! kernels — hash join, GROUP BY, DISTINCT — at 10^4..10^6 rows,
//! on three paths each:
//!
//! * `reference` — the retained `Vec<Value>`-per-row implementations
//!   (the pre-vectorization kernels, also the differential oracle),
//! * `serial`    — the vectorized key pipeline, one thread,
//! * `partition` — the same pipeline, radix-partitioned across
//!   scoped threads.
//!
//! Rows/sec counts *input* rows (build+probe for joins). The run
//! emits `BENCH_kernels.json` so later PRs can track the perf
//! trajectory, and (full mode only) asserts the PR's acceptance
//! floor: ≥3x over the reference on the 10^6-row group-by and join.
//! `--smoke` runs the two smaller sizes only, for CI.

use gis_adapters::AggFunc;
use gis_bench::synth::kv_batch;
use gis_bench::{fmt_ratio, Report};
use gis_core::exec::aggregate::{
    distinct_kernel, distinct_ref, hash_aggregate_kernel, hash_aggregate_ref,
};
use gis_core::exec::join::{hash_join_kernel, hash_join_ref};
use gis_core::exec::keys::{KernelGov, KernelOptions};
use gis_core::expr::ScalarExpr;
use gis_core::plan::logical::{AggregateExpr, JoinNode};
use gis_sql::ast::JoinKind;
use gis_types::{DataType, Field, Schema, SchemaRef};
use std::time::Instant;

/// Distinct keys for an `n`-row group-by/distinct input: group count
/// scales with the data (one group per ~10 rows), mirroring how the
/// join sides scale key cardinality with size.
fn cardinality(n: usize) -> u64 {
    (n as u64 / 10).max(16)
}

fn parallel_opts() -> KernelOptions {
    KernelOptions {
        parallel_rows: 0,
        ..KernelOptions::from_exec(&gis_core::ExecOptions::default())
    }
}

struct Sample {
    kernel: &'static str,
    rows: usize,
    path: &'static str,
    rows_per_sec: f64,
}

/// The three measured paths of one kernel: label + boxed runner
/// returning the output row count (the observable sink).
type Runs<'a> = [(&'static str, Box<dyn FnMut() -> usize + 'a>); 3];

fn time_rows_per_sec(input_rows: usize, mut f: impl FnMut() -> usize) -> f64 {
    // One warmup, then best of two timed runs (the kernels are
    // single-shot batch calls; best-of damps scheduler noise).
    let sink = f();
    assert!(sink < usize::MAX, "keep the call observable");
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let out = f();
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        assert!(out < usize::MAX);
        best = best.min(secs);
    }
    input_rows as f64 / best
}

fn agg_schema(aggs: &[AggregateExpr]) -> SchemaRef {
    let mut fields = vec![Field::new("k", DataType::Int64)];
    for a in aggs {
        fields.push(Field::new(a.display_name(), DataType::Int64));
    }
    Schema::new(fields).into_ref()
}

fn bench_group_by(n: usize, samples: &mut Vec<Sample>) {
    let input = kv_batch(n, cardinality(n), false, 11);
    let aggs = vec![
        AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::col(1)),
            distinct: false,
        },
    ];
    let schema = agg_schema(&aggs);
    let groups = [ScalarExpr::col(0)];
    let runs: Runs = [
        (
            "reference",
            Box::new(|| {
                hash_aggregate_ref(&input, &groups, &aggs, schema.clone())
                    .expect("ref agg")
                    .num_rows()
            }),
        ),
        (
            "serial",
            Box::new(|| {
                hash_aggregate_kernel(
                    &input,
                    &groups,
                    &aggs,
                    schema.clone(),
                    &KernelOptions::serial(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel agg")
                .0
                .num_rows()
            }),
        ),
        (
            "partition",
            Box::new(|| {
                hash_aggregate_kernel(
                    &input,
                    &groups,
                    &aggs,
                    schema.clone(),
                    &parallel_opts(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel agg")
                .0
                .num_rows()
            }),
        ),
    ];
    for (path, mut f) in runs {
        samples.push(Sample {
            kernel: "group-by",
            rows: n,
            path,
            rows_per_sec: time_rows_per_sec(n, &mut *f),
        });
    }
}

fn bench_join(n: usize, samples: &mut Vec<Sample>) {
    // Build and probe sides of n/2 rows each: input = n rows total.
    // Key cardinality equals the side size, so each probe row matches
    // ~1 build row and the output stays ~n/2 rows — the measurement
    // follows the key pipeline, not output materialization.
    let side = n / 2;
    let card = (side as u64).max(8);
    let left = kv_batch(side, card, false, 21);
    let right = kv_batch(side, card, false, 22);
    let schema = JoinNode::compute_schema(left.schema(), right.schema(), JoinKind::Inner);
    let runs: Runs = [
        (
            "reference",
            Box::new(|| {
                hash_join_ref(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                )
                .expect("ref join")
                .num_rows()
            }),
        ),
        (
            "serial",
            Box::new(|| {
                hash_join_kernel(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                    &KernelOptions::serial(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel join")
                .0
                .num_rows()
            }),
        ),
        (
            "partition",
            Box::new(|| {
                hash_join_kernel(
                    &left,
                    &right,
                    &[0],
                    &[0],
                    JoinKind::Inner,
                    None,
                    schema.clone(),
                    &parallel_opts(),
                    &KernelGov::unbounded(),
                )
                .expect("kernel join")
                .0
                .num_rows()
            }),
        ),
    ];
    for (path, mut f) in runs {
        samples.push(Sample {
            kernel: "hash-join",
            rows: n,
            path,
            rows_per_sec: time_rows_per_sec(n, &mut *f),
        });
    }
}

fn bench_distinct(n: usize, samples: &mut Vec<Sample>) {
    let input = kv_batch(n, cardinality(n), false, 31);
    let runs: Runs = [
        ("reference", Box::new(|| distinct_ref(&input).num_rows())),
        (
            "serial",
            Box::new(|| {
                distinct_kernel(&input, &KernelOptions::serial(), &KernelGov::unbounded())
                    .expect("kernel distinct")
                    .0
                    .num_rows()
            }),
        ),
        (
            "partition",
            Box::new(|| {
                distinct_kernel(&input, &parallel_opts(), &KernelGov::unbounded())
                    .expect("kernel distinct")
                    .0
                    .num_rows()
            }),
        ),
    ];
    for (path, mut f) in runs {
        samples.push(Sample {
            kernel: "distinct",
            rows: n,
            path,
            rows_per_sec: time_rows_per_sec(n, &mut *f),
        });
    }
}

fn rate(samples: &[Sample], kernel: &str, rows: usize, path: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.kernel == kernel && s.rows == rows && s.path == path)
        .map(|s| s.rows_per_sec)
        .unwrap_or(0.0)
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else {
        format!("{:.0}k", r / 1e3)
    }
}

fn write_json(samples: &[Sample], smoke: bool) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"f8_mediator_throughput\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str("  \"cardinality\": \"n/10\",\n");
    out.push_str("  \"results\": [\n");
    let body: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"kernel\": \"{}\", \"rows\": {}, \"path\": \"{}\", \"rows_per_sec\": {:.0}}}",
                s.kernel, s.rows, s.path, s.rows_per_sec
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_kernels.json", out).expect("write BENCH_kernels.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut samples: Vec<Sample> = Vec::new();
    for &n in sizes {
        bench_group_by(n, &mut samples);
        bench_join(n, &mut samples);
        bench_distinct(n, &mut samples);
    }

    let mut report = Report::new(
        "F8: mediator kernel throughput (rows/sec; speedup vs the retained Vec<Value> reference)",
        &[
            "kernel",
            "rows",
            "reference",
            "serial",
            "partition",
            "serial_x",
            "partition_x",
        ],
    );
    for kernel in ["group-by", "hash-join", "distinct"] {
        for &n in sizes {
            let rref = rate(&samples, kernel, n, "reference");
            let rser = rate(&samples, kernel, n, "serial");
            let rpar = rate(&samples, kernel, n, "partition");
            report.row(&[
                &kernel,
                &n,
                &fmt_rate(rref),
                &fmt_rate(rser),
                &fmt_rate(rpar),
                &fmt_ratio(rser, rref),
                &fmt_ratio(rpar, rref),
            ]);
        }
    }
    report.note(
        "Acceptance: >=3x rows/sec over the reference on the 10^6-row group-by and hash-join \
         (best of serial/partition; asserted in full mode).",
    );
    report.note("Join rows = build + probe combined; joins run Inner on Int64 keys.");
    report.print();
    write_json(&samples, smoke);
    println!("wrote BENCH_kernels.json ({} samples)", samples.len());

    if !smoke {
        for kernel in ["group-by", "hash-join"] {
            let rref = rate(&samples, kernel, 1_000_000, "reference");
            let best = rate(&samples, kernel, 1_000_000, "serial").max(rate(
                &samples,
                kernel,
                1_000_000,
                "partition",
            ));
            assert!(
                best >= 3.0 * rref,
                "{kernel} 10^6: vectorized {best:.0} rows/s < 3x reference {rref:.0} rows/s"
            );
        }
        println!("acceptance: 10^6-row group-by and hash-join >= 3x reference ✓");
    }
}
