//! F1 — distributed join strategy crossover.
//!
//! `customers ⋈ orders` with a selectivity dial on the customer side
//! (`c.id < k`). For each selectivity the three strategies run
//! forced; Auto's pick is shown alongside. Expected shape: key
//! shipping (semijoin/bind) wins at low selectivity, ship-whole wins
//! as the key set approaches the full table (keys + matches exceed
//! the relation itself).

use gis_bench::{fmt_bytes, Report};
use gis_core::{ExecOptions, JoinStrategy};
use gis_datagen::{build_fedmart, FedMartConfig};

fn run(fed: &gis_core::Federation, sql: &str, strategy: JoinStrategy) -> (u64, u64, f64) {
    fed.set_exec_options(ExecOptions {
        join_strategy: strategy,
        bind_batch_size: 256,
        ..ExecOptions::default()
    });
    let r = fed.query(sql).expect("query");
    (
        r.metrics.bytes_shipped,
        r.metrics.messages,
        r.metrics.virtual_network_ms(),
    )
}

fn main() {
    let fm = build_fedmart(FedMartConfig::default()).expect("build");
    let fed = &fm.federation;
    let customers = fm.sizes.customers as f64;
    let mut report = Report::new(
        "F1: join strategy crossover, customers(σ) ⋈ orders",
        &[
            "sel",
            "ship_bytes",
            "ship_ms",
            "semi_bytes",
            "semi_ms",
            "bind_bytes",
            "bind_ms",
            "auto_pick",
        ],
    );
    for selectivity in [0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0] {
        let k = ((customers * selectivity).round() as i64).max(1);
        let sql = format!(
            "SELECT c.name, o.amount FROM customers c \
             JOIN orders o ON c.id = o.cust_id WHERE c.id < {k}"
        );
        let (ship_b, _sm, ship_ms) = run(fed, &sql, JoinStrategy::ShipWhole);
        let (semi_b, _mm, semi_ms) = run(fed, &sql, JoinStrategy::SemiJoin);
        let (bind_b, _bm, bind_ms) = run(fed, &sql, JoinStrategy::BindJoin);
        // What does Auto pick?
        fed.set_exec_options(ExecOptions::default());
        let plan = fed.explain(&sql).expect("explain");
        let pick = if plan.contains("BindJoin[semijoin") {
            "semijoin"
        } else if plan.contains("BindJoin[bind-join") {
            "bind-join"
        } else {
            "ship-whole"
        };
        report.row(&[
            &format!("{selectivity:.4}"),
            &fmt_bytes(ship_b),
            &format!("{ship_ms:.0}"),
            &fmt_bytes(semi_b),
            &format!("{semi_ms:.0}"),
            &fmt_bytes(bind_b),
            &format!("{bind_ms:.0}"),
            &pick,
        ]);
    }
    report.note("bind_batch_size=256; WAN 40 ms / 1 MB/s; FedMart sf=1, Zipf-skewed orders.");
    report.note("Expected shape: semi/bind ∝ selectivity, ship flat; crossover where key+match bytes ≈ table bytes.");
    report.print();
}
