//! F11 — the compressed wire protocol vs raw legacy frames.
//!
//! The FedMart fragment-shipping workload (full-table scans plus the
//! three-source revenue rollup) runs twice over identical
//! federations: once with adaptive per-column codecs on (the
//! default), once with `set_wire_compression(false)` so every frame
//! ships in the legacy raw layout. Per query we assert the rows are
//! bit-identical and report shipped bytes plus the metered network
//! time on both sides — on a WAN priced `latency + bytes/bandwidth`,
//! every byte the codecs remove is virtual wall clock returned.
//!
//! The second table breaks the compressed run down by codec: how many
//! shipped columns picked dict/RLE/delta/null-suppression, scraped
//! from the federation's `WireStats` accumulator.
//!
//! Emits `BENCH_wire.json`. Full mode asserts the PR's acceptance
//! floor: >=3x total byte reduction on the workload. `--smoke` runs
//! the tiny federation and skips the floor assert.

use gis_bench::{fmt_bytes, fmt_ratio, Report};
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMartConfig};
use gis_net::ColumnCodec;
use gis_types::Value;

/// The fragment-shipping workload: every FedMart source ships whole
/// fragments (scans) and the rollup exercises multi-source joins.
const WORKLOAD: &[(&str, &str)] = &[
    ("customers_scan", "SELECT * FROM customers ORDER BY id"),
    ("orders_scan", "SELECT * FROM orders ORDER BY order_id"),
    (
        "products_scan",
        "SELECT * FROM products ORDER BY product_id",
    ),
    (
        "stock_scan",
        "SELECT * FROM stock ORDER BY product_id, warehouse",
    ),
    (
        "revenue_rollup",
        "SELECT c.region, p.category, sum(o.amount) AS revenue \
         FROM customers c \
         JOIN orders o ON c.id = o.cust_id \
         JOIN products p ON o.product_id = p.product_id \
         GROUP BY c.region, p.category ORDER BY revenue DESC",
    ),
    (
        "region_counts",
        "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region",
    ),
    (
        "order_keys",
        "SELECT order_id, cust_id, product_id, quantity FROM orders ORDER BY order_id",
    ),
];

fn build(smoke: bool) -> Federation {
    let cfg = if smoke {
        FedMartConfig::tiny()
    } else {
        FedMartConfig::default()
    };
    build_fedmart(cfg).expect("build fedmart").federation
}

fn canon(rows: Vec<Vec<Value>>) -> Vec<String> {
    rows.into_iter().map(|r| format!("{r:?}")).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Identical federations (same deterministic seed); one ships raw.
    let compressed = build(smoke);
    let raw = build(smoke);
    raw.set_wire_compression(false);

    let mut report = Report::new(
        format!(
            "F11: adaptive wire codecs vs raw frames (FedMart {})",
            if smoke { "tiny" } else { "default" }
        ),
        &[
            "query",
            "raw_bytes",
            "wire_bytes",
            "reduction",
            "raw_net_ms",
            "comp_net_ms",
            "net_speedup",
        ],
    );
    let mut rows_json = Vec::new();
    let mut total_raw = 0u64;
    let mut total_wire = 0u64;
    for (name, sql) in WORKLOAD {
        let c = compressed.query(sql).expect("compressed query");
        let r = raw.query(sql).expect("raw query");
        assert_eq!(
            canon(c.batch.to_rows()),
            canon(r.batch.to_rows()),
            "compression changed results for {name}"
        );
        total_raw += r.metrics.bytes_shipped;
        total_wire += c.metrics.bytes_shipped;
        report.row(&[
            name,
            &fmt_bytes(r.metrics.bytes_shipped),
            &fmt_bytes(c.metrics.bytes_shipped),
            &fmt_ratio(
                r.metrics.bytes_shipped as f64,
                c.metrics.bytes_shipped as f64,
            ),
            &format!("{:.1}", r.metrics.virtual_network_us as f64 / 1e3),
            &format!("{:.1}", c.metrics.virtual_network_us as f64 / 1e3),
            &fmt_ratio(
                r.metrics.virtual_network_us as f64,
                c.metrics.virtual_network_us as f64,
            ),
        ]);
        rows_json.push(format!(
            "    {{\"query\": \"{}\", \"raw_bytes\": {}, \"wire_bytes\": {}, \
             \"raw_net_us\": {}, \"comp_net_us\": {}}}",
            name,
            r.metrics.bytes_shipped,
            c.metrics.bytes_shipped,
            r.metrics.virtual_network_us,
            c.metrics.virtual_network_us
        ));
    }
    let ratio = total_raw as f64 / total_wire as f64;
    report.note(format!(
        "workload total: raw {} vs compressed {} = {} reduction (rows bit-identical per query, asserted)",
        fmt_bytes(total_raw),
        fmt_bytes(total_wire),
        fmt_ratio(total_raw as f64, total_wire as f64),
    ));
    report.note(
        "Network time is the metered WAN clock (latency + bytes/bandwidth): \
         bytes removed convert directly into virtual wall clock.",
    );
    report.print();

    // Codec census for the compressed run, from the federation-wide
    // accumulator every remote exchange feeds.
    let ws = compressed.wire_stats();
    let mut census = Report::new(
        "F11b: codec census (compressed run, all shipped columns)",
        &["codec", "columns"],
    );
    for codec in ColumnCodec::all() {
        census.row(&[&codec.name(), &ws.columns(codec)]);
    }
    census.note(format!(
        "{} frames; accumulator raw {} vs wire {}",
        ws.frames(),
        fmt_bytes(ws.raw_bytes()),
        fmt_bytes(ws.wire_bytes()),
    ));
    census.print();
    assert!(
        ColumnCodec::all()
            .into_iter()
            .any(|c| c != ColumnCodec::Raw && ws.columns(c) > 0),
        "no adaptive codec fired on the workload"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"f11_wire_compression\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"raw_bytes\": {total_raw},\n"));
    out.push_str(&format!("  \"wire_bytes\": {total_wire},\n"));
    out.push_str(&format!("  \"reduction\": {ratio:.2},\n"));
    out.push_str("  \"codec_columns\": {");
    let codecs: Vec<String> = ColumnCodec::all()
        .into_iter()
        .map(|c| format!("\"{}\": {}", c.name(), ws.columns(c)))
        .collect();
    out.push_str(&codecs.join(", "));
    out.push_str("},\n");
    out.push_str("  \"queries\": [\n");
    out.push_str(&rows_json.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_wire.json", out).expect("write BENCH_wire.json");
    println!("wrote BENCH_wire.json ({} queries)", WORKLOAD.len());

    if !smoke {
        assert!(
            ratio >= 3.0,
            "adaptive codecs must cut workload bytes >=3x; got {ratio:.2}x \
             ({total_raw} vs {total_wire})"
        );
    }
}
