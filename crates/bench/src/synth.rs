//! Synthetic batches for the mediator-kernel experiments (F8 and the
//! `mediator_kernels` Criterion bench): deterministic pseudo-random
//! key/value columns with controlled key cardinality, built directly
//! as batches — no federation, no wire, so the measurements isolate
//! the kernels themselves.

use gis_types::{Array, Batch, Bitmap, DataType, Field, Schema, SchemaRef};

/// A tiny xorshift generator — deterministic across platforms, no
/// dependency on the `rand` shim (which is dev-only here).
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded generator (seed 0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn all_valid(n: usize) -> Bitmap {
    let mut m = Bitmap::with_capacity(n);
    for _ in 0..n {
        m.push(true);
    }
    m
}

/// `n` Int64 keys uniformly drawn from `0..cardinality`, no NULLs.
pub fn int64_keys(n: usize, cardinality: u64, seed: u64) -> Array {
    let mut rng = Xorshift::new(seed);
    let vals: Vec<i64> = (0..n).map(|_| rng.below(cardinality) as i64).collect();
    Array::Int64(vals, all_valid(n))
}

/// `n` Utf8 keys over `cardinality` distinct strings. `long` pads
/// keys past the fixed-width budget, forcing the hashed+verified
/// kernel path.
pub fn utf8_keys(n: usize, cardinality: u64, long: bool, seed: u64) -> Array {
    let mut rng = Xorshift::new(seed);
    let vals: Vec<String> = (0..n)
        .map(|_| {
            let k = rng.below(cardinality);
            if long {
                format!("key-{k:+060}")
            } else {
                format!("k{k}")
            }
        })
        .collect();
    Array::Utf8(vals, all_valid(n))
}

/// Schema of a two-column `(k, v)` batch.
pub fn kv_schema(key_type: DataType) -> SchemaRef {
    Schema::new(vec![
        Field::new("k", key_type),
        Field::new("v", DataType::Int64),
    ])
    .into_ref()
}

/// A `(k, v)` batch: `n` rows, keys of `cardinality` distinct values
/// (Int64 or long-Utf8), Int64 payloads.
pub fn kv_batch(n: usize, cardinality: u64, long_utf8_keys: bool, seed: u64) -> Batch {
    let key = if long_utf8_keys {
        utf8_keys(n, cardinality, true, seed)
    } else {
        int64_keys(n, cardinality, seed)
    };
    let mut rng = Xorshift::new(seed ^ 0xabcd_ef01_2345_6789);
    let vals: Vec<i64> = (0..n).map(|_| rng.below(1_000) as i64).collect();
    let payload = Array::Int64(vals, all_valid(n));
    Batch::try_new(kv_schema(key.data_type()), vec![key, payload]).expect("kv batch")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let a = kv_batch(100, 10, false, 7);
        let b = kv_batch(100, 10, false, 7);
        assert_eq!(a.to_rows(), b.to_rows());
        for v in a.column(0).iter_values() {
            match v {
                gis_types::Value::Int64(x) => assert!((0..10).contains(&x)),
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = kv_batch(50, 5, true, 3);
        assert_eq!(s.column(0).data_type(), DataType::Utf8);
    }
}
