//! # gis-bench — the experiment harness
//!
//! One report binary per reconstructed table/figure (see DESIGN.md's
//! evaluation index) plus Criterion micro-benchmarks. Every binary
//! prints a self-contained aligned table; EXPERIMENTS.md records the
//! outputs and compares their *shape* against the paper-implied
//! claims.
//!
//! | binary | experiment |
//! |--------|-----------|
//! | `t1_pushdown` | T1 — predicate/projection pushdown traffic |
//! | `f1_join_strategies` | F1 — strategy crossover vs selectivity |
//! | `t2_join_order` | T2 — DP join ordering vs syntactic order |
//! | `f2_scaleout` | F2 — source scale-out |
//! | `t3_mapping_overhead` | T3 — heterogeneity mediation cost |
//! | `f3_latency` | F3 — WAN latency sensitivity |
//! | `t4_capabilities` | T4 — source capability asymmetry |
//! | `f4_semijoin` | F4 — semijoin byte reduction |
//! | `t5_cost_model` | T5 — estimate vs measured |
//! | `f8_mediator_throughput` | F8 — vectorized kernel rows/sec |
//! | `f9_materialized_views` | F9 — views vs re-shipping a repeated workload |
//! | `f11_wire_compression` | F11 — adaptive wire codecs vs raw frames |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod synth;

use std::fmt::Display;

/// A simple aligned text table for experiment reports.
#[derive(Debug, Default)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// A report titled `title` with the given column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: vec![],
            notes: vec![],
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(hdr.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("\n* {n}"));
        }
        out.push('\n');
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a byte count with a thousands separator.
pub fn fmt_bytes(b: u64) -> String {
    let s = b.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio like `12.3x`.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den <= 0.0 {
        return "∞".into();
    }
    format!("{:.1}x", num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("demo", &["a", "long_header"]);
        r.row(&[&1, &"x"]);
        r.row(&[&22222, &"yyyy"]);
        r.note("a note");
        let s = r.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long_header"));
        assert!(s.contains("* a note"));
        let lines: Vec<&str> = s.lines().collect();
        // header and rows share width
        let hline = lines.iter().find(|l| l.contains("long_header")).unwrap();
        let rline = lines.iter().find(|l| l.contains("22222")).unwrap();
        assert_eq!(hline.len(), rline.len());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(123), "123");
        assert_eq!(fmt_bytes(1234567), "1_234_567");
        assert_eq!(fmt_ratio(10.0, 2.0), "5.0x");
        assert_eq!(fmt_ratio(1.0, 0.0), "∞");
    }
}
