//! # gis-observe — per-query structured tracing
//!
//! A federated mediator answers queries over sources it does not
//! control; when an answer is slow or wrong, the only recourse is
//! visibility into where time and bytes went, per fragment and per
//! link. This crate holds the shared observability vocabulary:
//!
//! * [`Span`] — one node of an annotated operator tree: label,
//!   rows in/out, bytes shipped, wall time, children. The executor
//!   builds one per physical operator; remote fragments report their
//!   own spans back over the wire and the mediator stitches them into
//!   a single tree (`EXPLAIN ANALYZE` renders it).
//! * [`TextExposition`] — a minimal Prometheus-style text format
//!   builder the runtime uses to export counters from the scheduler,
//!   caches, links and adapters.
//!
//! The crate deliberately depends only on `gis-types` so every layer
//! (net, adapters, core, runtime) can use it without cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expo;
pub mod ring;
pub mod span;

pub use expo::TextExposition;
pub use ring::BoundedRing;
pub use span::Span;
