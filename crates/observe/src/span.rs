//! Operator spans: the nodes of an `EXPLAIN ANALYZE` tree.

use std::fmt;

/// One instrumented operator in an executed plan.
///
/// Spans form a tree mirroring the physical plan, except that remote
/// fragments carry extra children: the operator stats the *source*
/// reported back over the wire (prefixed `remote:`) and the exchange
/// accounting (`recv[...]`). Wall time is inclusive of children.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Operator label, e.g. `HashJoin[inner]` or `Fragment[crm]`.
    pub label: String,
    /// Rows entering the operator (sum over inputs; 0 for leaves).
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Optimizer's row estimate for this operator, when one was made
    /// (0 = no estimate). Rendered as `est=…` next to the actual count
    /// so `EXPLAIN ANALYZE` exposes cardinality misestimates in place.
    pub est_rows: u64,
    /// Bytes shipped over a link by this operator (0 for pure
    /// mediator-side operators).
    pub bytes: u64,
    /// Inclusive host wall time, microseconds. For spans reported by
    /// a remote source this is the time spent *at the source*.
    pub wall_us: u64,
    /// Child spans (operator inputs, remote-reported stats).
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span with the given label.
    pub fn leaf(label: impl Into<String>) -> Span {
        Span {
            label: label.into(),
            ..Span::default()
        }
    }

    /// Builder: sets rows in.
    pub fn with_rows_in(mut self, rows: u64) -> Span {
        self.rows_in = rows;
        self
    }

    /// Builder: sets rows out.
    pub fn with_rows_out(mut self, rows: u64) -> Span {
        self.rows_out = rows;
        self
    }

    /// Builder: sets the optimizer's row estimate.
    pub fn with_est_rows(mut self, rows: u64) -> Span {
        self.est_rows = rows;
        self
    }

    /// Builder: sets bytes shipped.
    pub fn with_bytes(mut self, bytes: u64) -> Span {
        self.bytes = bytes;
        self
    }

    /// Builder: sets wall time.
    pub fn with_wall_us(mut self, us: u64) -> Span {
        self.wall_us = us;
        self
    }

    /// Builder: appends a child.
    pub fn with_child(mut self, child: Span) -> Span {
        self.children.push(child);
        self
    }

    /// Total bytes shipped in this subtree. Because mediator operators
    /// record 0 and each fragment records its own link traffic, this
    /// is the query's total shipped volume at the root.
    pub fn total_bytes(&self) -> u64 {
        self.bytes + self.children.iter().map(Span::total_bytes).sum::<u64>()
    }

    /// Number of spans in this subtree (including self).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Span::node_count).sum::<usize>()
    }

    /// Depth-first search for the first span whose label contains
    /// `needle` (diagnostics and tests).
    pub fn find(&self, needle: &str) -> Option<&Span> {
        if self.label.contains(needle) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(needle))
    }

    /// Number of spans in this subtree whose label contains `needle` —
    /// how tests count retry/failover/degraded event annotations.
    pub fn count_matching(&self, needle: &str) -> usize {
        usize::from(self.label.contains(needle))
            + self
                .children
                .iter()
                .map(|c| c.count_matching(needle))
                .sum::<usize>()
    }

    /// Renders the annotated tree, two-space indented, one span per
    /// line: `label (rows=… bytes=… time=…)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.label);
        if self.est_rows > 0 {
            out.push_str(&format!(
                " (rows_in={} rows={} est={} bytes={} time={})",
                self.rows_in,
                self.rows_out,
                self.est_rows,
                self.bytes,
                format_us(self.wall_us)
            ));
        } else {
            out.push_str(&format!(
                " (rows_in={} rows={} bytes={} time={})",
                self.rows_in,
                self.rows_out,
                self.bytes,
                format_us(self.wall_us)
            ));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Human-scaled microsecond rendering: `17us`, `4.20ms`, `1.50s`.
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Span {
        Span::leaf("HashJoin[inner]")
            .with_rows_in(150)
            .with_rows_out(40)
            .with_wall_us(2_500)
            .with_child(
                Span::leaf("Fragment[crm]")
                    .with_rows_out(100)
                    .with_bytes(4_096)
                    .with_child(Span::leaf("remote:scan[customers]").with_rows_out(100)),
            )
            .with_child(
                Span::leaf("Fragment[wms]")
                    .with_rows_out(50)
                    .with_bytes(2_048),
            )
    }

    #[test]
    fn render_is_indented_and_annotated() {
        let s = tree().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("HashJoin[inner] (rows_in=150 rows=40"));
        assert!(lines[1].starts_with("  Fragment[crm]"));
        assert!(lines[2].starts_with("    remote:scan[customers]"));
        assert!(lines[1].contains("bytes=4096"));
        assert!(lines[0].contains("time=2.50ms"));
    }

    #[test]
    fn totals_and_search() {
        let t = tree();
        assert_eq!(t.total_bytes(), 6_144);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.find("remote:").unwrap().rows_out, 100);
        assert!(t.find("nope").is_none());
    }

    #[test]
    fn estimate_renders_only_when_present() {
        let s = Span::leaf("Scan[t]").with_rows_out(10).render();
        assert!(!s.contains("est="), "no estimate, no annotation: {s}");
        let s = Span::leaf("Scan[t]")
            .with_rows_out(10)
            .with_est_rows(12)
            .render();
        assert!(
            s.contains("rows=10 est=12"),
            "estimate sits next to actuals: {s}"
        );
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_us(17), "17us");
        assert_eq!(format_us(4_200), "4.20ms");
        assert_eq!(format_us(1_500_000), "1.50s");
    }
}
