//! A bounded ring buffer with an overflow counter.
//!
//! Observability state must never become the memory problem it
//! exists to diagnose: every retained-history structure (the
//! slow-query log, span buffers) is bounded by an explicit capacity,
//! and anything pushed past capacity evicts the oldest entry while
//! the `overflow_dropped` counter records the loss — a monitoring
//! consumer can always tell "the buffer is the whole history" from
//! "the buffer is the tail of a longer history".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe bounded ring: push evicts the oldest entry once the
/// explicit capacity is reached and counts the eviction.
#[derive(Debug)]
pub struct BoundedRing<T> {
    entries: Mutex<VecDeque<T>>,
    capacity: usize,
    pushed: AtomicU64,
    overflow_dropped: AtomicU64,
}

impl<T> BoundedRing<T> {
    /// A ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> BoundedRing<T> {
        let capacity = capacity.max(1);
        BoundedRing {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            pushed: AtomicU64::new(0),
            overflow_dropped: AtomicU64::new(0),
        }
    }

    /// Appends an entry, evicting (and counting) the oldest when the
    /// ring is full.
    pub fn push(&self, entry: T) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.overflow_dropped.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(entry);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident (at most `capacity`).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Total entries ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Entries evicted because the ring was full — the gap between
    /// history and what [`BoundedRing::snapshot`] can still show.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped.load(Ordering::Relaxed)
    }
}

impl<T: Clone> BoundedRing<T> {
    /// The resident entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_drops_nothing() {
        let ring = BoundedRing::new(4);
        for i in 0..4 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![0, 1, 2, 3]);
        assert_eq!(ring.overflow_dropped(), 0);
        assert_eq!(ring.pushed(), 4);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let ring = BoundedRing::new(3);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![7, 8, 9]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overflow_dropped(), 7);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = BoundedRing::new(0);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot(), vec!["b"]);
        assert_eq!(ring.overflow_dropped(), 1);
    }
}
