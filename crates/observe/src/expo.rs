//! Prometheus-style text exposition builder.
//!
//! The runtime exports its counters (scheduler, caches, links,
//! adapters) in the Prometheus text format so the serving tier can be
//! scraped without pulling in an HTTP client library. This module is
//! a tiny builder for that format: `# HELP` / `# TYPE` headers and
//! labeled samples, in insertion order.

use std::fmt::Write as _;

/// Builder for the Prometheus text exposition format.
///
/// ```
/// use gis_observe::TextExposition;
/// let mut expo = TextExposition::new();
/// expo.header("gis_queries_total", "counter", "Queries submitted.");
/// expo.sample("gis_queries_total", &[("lane", "interactive")], 42);
/// let text = expo.render();
/// assert!(text.contains("gis_queries_total{lane=\"interactive\"} 42"));
/// ```
#[derive(Debug, Default)]
pub struct TextExposition {
    out: String,
}

impl TextExposition {
    /// An empty exposition.
    pub fn new() -> TextExposition {
        TextExposition::default()
    }

    /// Emits `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is a Prometheus type: `counter` or `gauge`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line. Labels render as
    /// `name{k1="v1",k2="v2"} value`; pass `&[]` for an unlabeled
    /// sample. Label values are escaped per the exposition format
    /// (backslash, double quote, newline).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Finishes the exposition and returns the text.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            other => s.push(other),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_samples() {
        let mut expo = TextExposition::new();
        expo.header("gis_queries_total", "counter", "Queries submitted.");
        expo.sample("gis_queries_total", &[], 7);
        expo.sample(
            "gis_link_bytes_total",
            &[("source", "crm"), ("dir", "rx")],
            4096,
        );
        let text = expo.render();
        assert!(text.contains("# HELP gis_queries_total Queries submitted.\n"));
        assert!(text.contains("# TYPE gis_queries_total counter\n"));
        assert!(text.contains("\ngis_queries_total 7\n"));
        assert!(text.contains("gis_link_bytes_total{source=\"crm\",dir=\"rx\"} 4096\n"));
    }

    #[test]
    fn escapes_label_values() {
        let mut expo = TextExposition::new();
        expo.sample("m", &[("q", "a\"b\\c\nd")], 1);
        assert_eq!(expo.render(), "m{q=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
