//! Shared virtual clock.
//!
//! All links of a federation advance one [`SimClock`]; because the
//! mediator's executor is a pull-based pipeline, message costs
//! accumulate sequentially exactly as a single-client query would
//! experience them. Experiments read virtual elapsed time instead of
//! wall time, so results are independent of host speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically-advancing virtual clock, in microseconds.
///
/// Cloning yields a handle to the *same* clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Current virtual time in milliseconds (convenience for reports).
    pub fn now_ms(&self) -> f64 {
        self.now_us() as f64 / 1_000.0
    }

    /// Advances the clock by `delta_us` and returns the new time.
    pub fn advance(&self, delta_us: u64) -> u64 {
        self.micros.fetch_add(delta_us, Ordering::Relaxed) + delta_us
    }

    /// Resets to zero (used between experiment trials).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }

    /// True when two handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.micros, &other.micros)
    }
}

/// A scoped timer measuring virtual time elapsed between construction
/// and [`VirtualSpan::elapsed_us`].
#[derive(Debug)]
pub struct VirtualSpan {
    clock: SimClock,
    start_us: u64,
}

impl VirtualSpan {
    /// Starts a span at the clock's current time.
    pub fn start(clock: &SimClock) -> Self {
        VirtualSpan {
            clock: clock.clone(),
            start_us: clock.now_us(),
        }
    }

    /// Virtual microseconds elapsed since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ms(), 0.15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_us(), 42);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SimClock::new()));
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance(10);
        c.reset();
        assert_eq!(c.now_us(), 0);
    }

    #[test]
    fn spans_measure_elapsed() {
        let c = SimClock::new();
        c.advance(5);
        let span = VirtualSpan::start(&c);
        c.advance(37);
        assert_eq!(span.elapsed_us(), 37);
    }
}
