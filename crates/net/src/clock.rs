//! Shared virtual clock.
//!
//! All links of a federation advance one [`SimClock`]; because the
//! mediator's executor is a pull-based pipeline, message costs
//! accumulate sequentially exactly as a single-client query would
//! experience them. Experiments read virtual elapsed time instead of
//! wall time, so results are independent of host speed.
//!
//! For *concurrency* experiments the purely-virtual model is not
//! enough: a simulated 40 ms WAN wait costs zero host time, so
//! overlapping many in-flight queries shows no wall-clock benefit.
//! [`SimClock::set_pace_permille`] turns on **pacing**: advancing the
//! clock also sleeps for a configured fraction of the virtual delta,
//! making network waits occupy real time that concurrent workers can
//! overlap. Pacing is off by default and never affects virtual
//! timekeeping or traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically-advancing virtual clock, in microseconds.
///
/// Cloning yields a handle to the *same* clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
    pace_permille: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Current virtual time in milliseconds (convenience for reports).
    pub fn now_ms(&self) -> f64 {
        self.now_us() as f64 / 1_000.0
    }

    /// Sets the pacing factor in permille of virtual time: `0` (the
    /// default) disables pacing, `1000` makes every virtual
    /// microsecond cost one host microsecond, `100` costs 10%.
    /// Shared by all clones of this clock.
    pub fn set_pace_permille(&self, permille: u64) {
        self.pace_permille.store(permille, Ordering::Relaxed);
    }

    /// The current pacing factor in permille (0 = pacing off).
    pub fn pace_permille(&self) -> u64 {
        self.pace_permille.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_us` and returns the new time.
    /// When pacing is enabled, also sleeps for the paced fraction of
    /// `delta_us` so virtual waits occupy host time.
    pub fn advance(&self, delta_us: u64) -> u64 {
        let now = self.micros.fetch_add(delta_us, Ordering::Relaxed) + delta_us;
        let pace = self.pace_permille.load(Ordering::Relaxed);
        if pace > 0 && delta_us > 0 {
            let host_us = delta_us.saturating_mul(pace) / 1_000;
            if host_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(host_us));
            }
        }
        now
    }

    /// Resets to zero (used between experiment trials).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }

    /// True when two handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.micros, &other.micros)
    }
}

/// A scoped timer measuring virtual time elapsed between construction
/// and [`VirtualSpan::elapsed_us`].
#[derive(Debug)]
pub struct VirtualSpan {
    clock: SimClock,
    start_us: u64,
}

impl VirtualSpan {
    /// Starts a span at the clock's current time.
    pub fn start(clock: &SimClock) -> Self {
        VirtualSpan {
            clock: clock.clone(),
            start_us: clock.now_us(),
        }
    }

    /// Virtual microseconds elapsed since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ms(), 0.15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_us(), 42);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SimClock::new()));
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance(10);
        c.reset();
        assert_eq!(c.now_us(), 0);
    }

    #[test]
    fn pacing_occupies_host_time_without_touching_virtual_time() {
        let c = SimClock::new();
        let handle = c.clone();
        assert_eq!(c.pace_permille(), 0);
        c.set_pace_permille(100);
        assert_eq!(handle.pace_permille(), 100, "clones share the pace");
        let started = std::time::Instant::now();
        c.advance(50_000); // 50 ms virtual → ≥5 ms host at 10%
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(c.now_us(), 50_000, "pacing never skews virtual time");
        c.set_pace_permille(0);
        let started = std::time::Instant::now();
        c.advance(1_000_000);
        assert!(started.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    fn spans_measure_elapsed() {
        let c = SimClock::new();
        c.advance(5);
        let span = VirtualSpan::start(&c);
        c.advance(37);
        assert_eq!(span.elapsed_us(), 37);
    }
}
