//! Metered point-to-point links.
//!
//! A [`Link`] models the mediator's connection to one component
//! system: every message pays `latency + bytes/bandwidth` on the
//! shared [`SimClock`], increments per-link counters, and consults the
//! link's [`FaultPlan`]. The executor treats `transfer` failures as
//! retryable network errors.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::clock::SimClock;
use crate::fault::{FaultPlan, FaultVerdict};
use gis_types::{GisError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Static link characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConditions {
    /// One-way latency per message, microseconds.
    pub latency_us: u64,
    /// Bandwidth in bytes per second (0 = infinite).
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkConditions {
    /// A local (in-datacenter) link: 100 µs, ~10 Gbit/s.
    pub fn lan() -> Self {
        NetworkConditions {
            latency_us: 100,
            bandwidth_bytes_per_sec: 1_250_000_000,
        }
    }

    /// A wide-area link of the paper's era flavor: 40 ms one-way,
    /// ~1 MB/s.
    pub fn wan() -> Self {
        NetworkConditions {
            latency_us: 40_000,
            bandwidth_bytes_per_sec: 1_000_000,
        }
    }

    /// An idealized free network (used to isolate CPU costs).
    pub fn instant() -> Self {
        NetworkConditions {
            latency_us: 0,
            bandwidth_bytes_per_sec: 0,
        }
    }

    /// Conditions with the given one-way latency in milliseconds and
    /// WAN-class bandwidth.
    pub fn with_latency_ms(ms: u64) -> Self {
        NetworkConditions {
            latency_us: ms * 1_000,
            ..NetworkConditions::wan()
        }
    }

    /// Virtual microseconds one message of `bytes` costs.
    pub fn message_cost_us(&self, bytes: usize) -> u64 {
        let transfer = if self.bandwidth_bytes_per_sec == 0 {
            0
        } else {
            (bytes as u128 * 1_000_000 / self.bandwidth_bytes_per_sec as u128) as u64
        };
        self.latency_us + transfer
    }
}

/// Cumulative traffic counters for one link.
#[derive(Debug, Default)]
pub struct LinkMetrics {
    messages: AtomicU64,
    bytes: AtomicU64,
    raw_bytes: AtomicU64,
    busy_us: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
}

impl LinkMetrics {
    /// Messages transferred (both directions).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total bytes transferred — what actually crossed the wire (the
    /// compressed size when wire compression is on).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total pre-compression bytes the transferred messages represent.
    /// Equal to [`bytes`](Self::bytes) when nothing was compressed.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes.load(Ordering::Relaxed)
    }

    /// Total virtual time spent on the wire, microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us.load(Ordering::Relaxed)
    }

    /// Injected/observed failures.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Retry attempts made against this link (recorded by the
    /// adapter's retry policy, one per backed-off re-attempt).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Records one retry attempt.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes all counters (between experiment trials).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.raw_bytes.store(0, Ordering::Relaxed);
        self.busy_us.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

/// A metered, fault-injectable link between mediator and one source.
#[derive(Debug, Clone)]
pub struct Link {
    name: String,
    conditions: NetworkConditions,
    clock: SimClock,
    metrics: Arc<LinkMetrics>,
    faults: Arc<FaultPlan>,
    breaker: Arc<CircuitBreaker>,
}

impl Link {
    /// A link named `name` with the given conditions, advancing `clock`.
    pub fn new(name: impl Into<String>, conditions: NetworkConditions, clock: SimClock) -> Self {
        Link {
            name: name.into(),
            conditions,
            clock,
            metrics: Arc::new(LinkMetrics::default()),
            faults: Arc::new(FaultPlan::none()),
            breaker: Arc::new(CircuitBreaker::default()),
        }
    }

    /// A zero-cost link for unit tests.
    pub fn loopback() -> Self {
        Link::new("loopback", NetworkConditions::instant(), SimClock::new())
    }

    /// The link's name (usually the source name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The link's conditions.
    pub fn conditions(&self) -> NetworkConditions {
        self.conditions
    }

    /// The traffic counters.
    pub fn metrics(&self) -> &LinkMetrics {
        &self.metrics
    }

    /// The fault plan (script failures through this handle).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The link's circuit breaker (configure or inspect through this
    /// handle; shared by all clones).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The breaker's current state at the clock's current time.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state(self.clock.now_us())
    }

    /// The clock this link advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Transfers one message of `bytes` bytes across the link,
    /// advancing the virtual clock and counters. Fails (without
    /// advancing time past the latency already spent) when the fault
    /// plan injects a failure. While the circuit breaker is open the
    /// message fails fast — [`GisError::Unavailable`], zero clock
    /// advance, zero wire latency.
    pub fn transfer(&self, bytes: usize) -> Result<()> {
        self.transfer_sized(bytes, bytes)
    }

    /// [`transfer`](Self::transfer) for a message that was compressed
    /// before shipping: the wire pays (and the clock advances by)
    /// `wire_bytes`, while `raw_bytes` — the pre-compression size —
    /// is recorded separately so reports can state the savings.
    pub fn transfer_sized(&self, wire_bytes: usize, raw_bytes: usize) -> Result<()> {
        if let Err(remaining_us) = self.breaker.admit(self.clock.now_us()) {
            return Err(GisError::Unavailable(format!(
                "link '{}': circuit open, probe in {remaining_us}us",
                self.name
            )));
        }
        match self.faults.verdict() {
            FaultVerdict::Drop(reason) => {
                self.metrics.failures.fetch_add(1, Ordering::Relaxed);
                // A failed message still wastes its latency.
                self.clock.advance(self.conditions.latency_us);
                self.metrics
                    .busy_us
                    .fetch_add(self.conditions.latency_us, Ordering::Relaxed);
                self.breaker.on_failure(self.clock.now_us());
                Err(GisError::Network(format!("link '{}': {reason}", self.name)))
            }
            FaultVerdict::Deliver { cost_factor } => {
                let cost = self
                    .conditions
                    .message_cost_us(wire_bytes)
                    .saturating_mul(u64::from(cost_factor));
                self.clock.advance(cost);
                self.metrics.messages.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .bytes
                    .fetch_add(wire_bytes as u64, Ordering::Relaxed);
                self.metrics
                    .raw_bytes
                    .fetch_add(raw_bytes as u64, Ordering::Relaxed);
                self.metrics.busy_us.fetch_add(cost, Ordering::Relaxed);
                self.breaker.on_success();
                Ok(())
            }
        }
    }

    /// Accounts a request/response exchange: `req` bytes out, `resp`
    /// bytes back — two messages, two latencies.
    pub fn round_trip(&self, req: usize, resp: usize) -> Result<()> {
        self.transfer(req)?;
        self.transfer(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_includes_latency_and_transfer() {
        let c = NetworkConditions {
            latency_us: 1_000,
            bandwidth_bytes_per_sec: 1_000_000, // 1 byte/µs
        };
        assert_eq!(c.message_cost_us(0), 1_000);
        assert_eq!(c.message_cost_us(500), 1_500);
        assert_eq!(NetworkConditions::instant().message_cost_us(1 << 30), 0);
    }

    #[test]
    fn transfer_advances_clock_and_counters() {
        let clock = SimClock::new();
        let link = Link::new(
            "src",
            NetworkConditions {
                latency_us: 10,
                bandwidth_bytes_per_sec: 1_000_000,
            },
            clock.clone(),
        );
        link.transfer(100).unwrap();
        assert_eq!(clock.now_us(), 110);
        assert_eq!(link.metrics().messages(), 1);
        assert_eq!(link.metrics().bytes(), 100);
        link.round_trip(50, 200).unwrap();
        assert_eq!(link.metrics().messages(), 3);
        assert_eq!(link.metrics().bytes(), 350);
    }

    #[test]
    fn injected_failure_counts_and_wastes_latency() {
        let clock = SimClock::new();
        let link = Link::new(
            "flaky",
            NetworkConditions {
                latency_us: 7,
                bandwidth_bytes_per_sec: 0,
            },
            clock.clone(),
        );
        link.faults().fail_next(1);
        let err = link.transfer(10).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(link.metrics().failures(), 1);
        assert_eq!(link.metrics().bytes(), 0);
        assert_eq!(clock.now_us(), 7);
        // retry succeeds
        assert!(link.transfer(10).is_ok());
    }

    #[test]
    fn transfer_sized_prices_the_wire_size_but_remembers_raw() {
        let clock = SimClock::new();
        let link = Link::new(
            "compressed",
            NetworkConditions {
                latency_us: 10,
                bandwidth_bytes_per_sec: 1_000_000, // 1 byte/µs
            },
            clock.clone(),
        );
        link.transfer_sized(100, 400).unwrap();
        assert_eq!(clock.now_us(), 110, "clock pays the compressed size");
        assert_eq!(link.metrics().bytes(), 100);
        assert_eq!(link.metrics().raw_bytes(), 400);
        // Plain transfer keeps the two in lockstep.
        link.transfer(50).unwrap();
        assert_eq!(link.metrics().bytes(), 150);
        assert_eq!(link.metrics().raw_bytes(), 450);
        link.metrics().reset();
        assert_eq!(link.metrics().raw_bytes(), 0);
    }

    #[test]
    fn clones_share_metrics() {
        let link = Link::loopback();
        let clone = link.clone();
        clone.transfer(5).unwrap();
        assert_eq!(link.metrics().messages(), 1);
    }

    #[test]
    fn open_breaker_fails_fast_with_zero_wire_latency() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let clock = SimClock::new();
        let link = Link::new(
            "dead",
            NetworkConditions {
                latency_us: 1_000,
                bandwidth_bytes_per_sec: 0,
            },
            clock.clone(),
        );
        link.breaker().set_config(BreakerConfig {
            failure_threshold: 2,
            cooldown_us: 10_000,
        });
        link.faults().partition();
        assert!(link.transfer(10).unwrap_err().is_retryable());
        assert!(link.transfer(10).unwrap_err().is_retryable());
        assert_eq!(link.breaker_state(), BreakerState::Open);
        assert_eq!(clock.now_us(), 2_000, "two failures paid latency");

        // Open: fail fast, no latency, distinct error domain.
        let err = link.transfer(10).unwrap_err();
        assert_eq!(err.code(), "UNAVAILABLE");
        assert!(!err.is_retryable());
        assert_eq!(clock.now_us(), 2_000, "fail-fast pays no wire latency");
        assert_eq!(link.breaker().fast_failures(), 1);
        assert_eq!(
            link.metrics().failures(),
            2,
            "fast failures are not wire failures"
        );

        // After the cooldown a probe goes through; success closes.
        link.faults().heal();
        clock.advance(10_000);
        assert!(link.transfer(10).is_ok());
        assert_eq!(link.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn slow_next_charges_multiplied_cost() {
        let clock = SimClock::new();
        let link = Link::new(
            "brownout",
            NetworkConditions {
                latency_us: 100,
                bandwidth_bytes_per_sec: 0,
            },
            clock.clone(),
        );
        link.faults().slow_next(1, 7);
        link.transfer(10).unwrap();
        assert_eq!(clock.now_us(), 700, "spike multiplies the message cost");
        link.transfer(10).unwrap();
        assert_eq!(clock.now_us(), 800, "then costs return to nominal");
        assert_eq!(link.metrics().busy_us(), 800);
    }
}
