//! # gis-net — the simulated wide-area network substrate
//!
//! Kameny-era global information systems federate sources over slow,
//! expensive networks; the dominant cost of a distributed plan is what
//! it ships. This crate substitutes a real WAN with a *metered,
//! virtual-time* network so experiments can report exactly:
//!
//! * **bytes** sent/received per link (the wire format in [`wire`] is
//!   hand-rolled so every byte is accounted for),
//! * **messages** (each paying a configurable one-way latency),
//! * **virtual elapsed time** accumulated on a [`SimClock`]
//!   (`latency + bytes/bandwidth` per message), independent of how
//!   fast the host machine is.
//!
//! Faults (timeouts, partitions, probabilistic drops) are injectable
//! per link, letting tests exercise the mediator's retry policy
//! without a flaky real network.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bloom;
pub mod breaker;
pub mod clock;
pub mod codec;
pub mod fault;
pub mod link;
pub mod retry;
pub mod wire;

pub use bloom::KeyBloom;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use clock::SimClock;
pub use codec::{
    decode_frame, encode_frame, encode_frame_into, encode_legacy_into, is_compressed_frame,
    raw_frame_size, ColumnCodec, FrameStats, WireStats,
};
pub use fault::{FaultPlan, FaultVerdict};
pub use link::{Link, LinkMetrics, NetworkConditions};
pub use retry::RetryPolicy;
