//! Fault injection for links.
//!
//! Autonomy means component systems fail independently of the
//! mediator; the federation executor must distinguish transient
//! message loss (retryable) from partitions (fail the fragment,
//! possibly answer from other sources). `FaultPlan` scripts both,
//! deterministically, so tests can assert exact retry behaviour.
//! Beyond counted loss and hard partitions, a plan can script seeded
//! probabilistic loss ([`FaultPlan::flaky`]) and latency brownouts
//! ([`FaultPlan::slow_next`]) — both reproducible message-for-message
//! from the seed, never from host entropy.

use parking_lot::Mutex;

/// Per-message ruling from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver the message.
    Deliver {
        /// Wire-cost multiplier: 1 = nominal, >1 = scripted latency
        /// spike.
        cost_factor: u32,
    },
    /// Drop the message with the given reason.
    Drop(&'static str),
}

/// Deterministic fault script attached to a [`crate::Link`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<FaultState>,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Fail the next N messages with a retryable error.
    fail_next: u32,
    /// Fail every k-th message (1-based), 0 = disabled.
    fail_every: u32,
    /// Messages observed so far.
    seen: u64,
    /// Hard partition: every message fails until healed.
    partitioned: bool,
    /// Seeded probabilistic loss: drop each message with probability
    /// `p` drawn from a splitmix64 stream. `None` = disabled.
    flaky: Option<FlakyState>,
    /// Multiply the wire cost of the next N messages by `factor`.
    slow_next: u32,
    slow_factor: u32,
}

#[derive(Debug, Clone, Copy)]
struct FlakyState {
    rng: u64,
    /// Drop threshold over the full u32 range: drop when the next
    /// draw is below it. `p = threshold / 2^32`.
    threshold: u64,
}

/// One step of the splitmix64 generator: updates the state in place
/// and returns the next 64-bit output. Small, fast, and fully
/// determined by the seed — exactly what reproducible fault storms
/// need.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Scripts the next `n` messages to fail (transient loss).
    pub fn fail_next(&self, n: u32) {
        self.state.lock().fail_next = n;
    }

    /// Fails every `k`-th message; `0` disables.
    pub fn fail_every(&self, k: u32) {
        self.state.lock().fail_every = k;
    }

    /// Starts a hard partition (all messages fail until
    /// [`FaultPlan::heal`]).
    pub fn partition(&self) {
        self.state.lock().partitioned = true;
    }

    /// Ends a partition.
    pub fn heal(&self) {
        self.state.lock().partitioned = false;
    }

    /// True while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.state.lock().partitioned
    }

    /// Drops each message with probability `p` (clamped to `[0, 1]`),
    /// decided by a splitmix64 stream seeded with `seed`: the same
    /// seed always yields the same drop sequence regardless of host,
    /// thread timing, or prior wall-clock state. `p = 0` disables.
    pub fn flaky(&self, seed: u64, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let mut s = self.state.lock();
        s.flaky = if p == 0.0 {
            None
        } else {
            Some(FlakyState {
                rng: seed,
                threshold: (p * (1u64 << 32) as f64) as u64,
            })
        };
    }

    /// Multiplies the wire cost of the next `n` delivered messages by
    /// `factor` — a scripted latency spike (brownout) rather than an
    /// outage. `factor = 1` or `n = 0` is a no-op.
    pub fn slow_next(&self, n: u32, factor: u32) {
        let mut s = self.state.lock();
        s.slow_next = n;
        s.slow_factor = factor.max(1);
    }

    /// Called once per message; rules whether it is delivered (and at
    /// what cost multiple) or dropped. Scripted rules are consulted in
    /// a fixed order: partition, `fail_next`, `fail_every`, `flaky`,
    /// then `slow_next` — the flaky PRNG only advances when the
    /// message survives the scripted drops, keeping sequences pinned.
    pub fn verdict(&self) -> FaultVerdict {
        let mut s = self.state.lock();
        s.seen += 1;
        if s.partitioned {
            return FaultVerdict::Drop("link partitioned");
        }
        if s.fail_next > 0 {
            s.fail_next -= 1;
            return FaultVerdict::Drop("injected transient failure");
        }
        if s.fail_every > 0 && s.seen.is_multiple_of(s.fail_every as u64) {
            return FaultVerdict::Drop("injected periodic failure");
        }
        if let Some(flaky) = s.flaky.as_mut() {
            let draw = splitmix64(&mut flaky.rng) >> 32;
            if draw < flaky.threshold {
                return FaultVerdict::Drop("injected probabilistic loss");
            }
        }
        let cost_factor = if s.slow_next > 0 {
            s.slow_next -= 1;
            s.slow_factor
        } else {
            1
        };
        FaultVerdict::Deliver { cost_factor }
    }

    /// Called once per message; returns `Some(reason)` when this
    /// message should fail. Convenience over [`FaultPlan::verdict`]
    /// for callers that only care about loss.
    pub fn check(&self) -> Option<&'static str> {
        match self.verdict() {
            FaultVerdict::Drop(reason) => Some(reason),
            FaultVerdict::Deliver { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_faultless() {
        let f = FaultPlan::none();
        for _ in 0..100 {
            assert!(f.check().is_none());
        }
    }

    #[test]
    fn fail_next_counts_down() {
        let f = FaultPlan::none();
        f.fail_next(2);
        assert!(f.check().is_some());
        assert!(f.check().is_some());
        assert!(f.check().is_none());
    }

    #[test]
    fn partition_blocks_until_healed() {
        let f = FaultPlan::none();
        f.partition();
        assert!(f.is_partitioned());
        assert!(f.check().is_some());
        assert!(f.check().is_some());
        f.heal();
        assert!(f.check().is_none());
    }

    #[test]
    fn fail_every_kth() {
        let f = FaultPlan::none();
        f.fail_every(3);
        let outcomes: Vec<bool> = (0..9).map(|_| f.check().is_some()).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn flaky_sequence_is_pinned_by_seed() {
        // The exact drop pattern for (seed=7, p=0.3) over 20 messages.
        // If this test ever fails, the PRNG or draw order changed and
        // every recorded fault-storm experiment silently shifted.
        let f = FaultPlan::none();
        f.flaky(7, 0.3);
        let drops: Vec<bool> = (0..20).map(|_| f.check().is_some()).collect();
        let expected = vec![
            false, true, false, false, false, true, false, false, true, false, true, false, false,
            false, false, false, false, false, false, false,
        ];
        assert_eq!(drops, expected);

        // Same seed, fresh plan: identical sequence.
        let g = FaultPlan::none();
        g.flaky(7, 0.3);
        let again: Vec<bool> = (0..20).map(|_| g.check().is_some()).collect();
        assert_eq!(again, expected);
    }

    #[test]
    fn flaky_extremes_and_disable() {
        let always = FaultPlan::none();
        always.flaky(1, 1.0);
        assert!((0..10).all(|_| always.check().is_some()));

        let never = FaultPlan::none();
        never.flaky(1, 0.0);
        assert!((0..10).all(|_| never.check().is_none()));

        let toggled = FaultPlan::none();
        toggled.flaky(1, 1.0);
        assert!(toggled.check().is_some());
        toggled.flaky(1, 0.0);
        assert!(toggled.check().is_none());
    }

    #[test]
    fn slow_next_multiplies_exactly_n_messages() {
        let f = FaultPlan::none();
        f.slow_next(2, 10);
        let factors: Vec<u32> = (0..4)
            .map(|_| match f.verdict() {
                FaultVerdict::Deliver { cost_factor } => cost_factor,
                FaultVerdict::Drop(_) => panic!("slow_next must not drop"),
            })
            .collect();
        assert_eq!(factors, vec![10, 10, 1, 1]);
    }

    #[test]
    fn drops_do_not_consume_slow_slots() {
        // A dropped message never reaches the wire, so a scripted
        // spike applies to the next *delivered* messages.
        let f = FaultPlan::none();
        f.fail_next(1);
        f.slow_next(1, 5);
        assert!(matches!(f.verdict(), FaultVerdict::Drop(_)));
        assert_eq!(f.verdict(), FaultVerdict::Deliver { cost_factor: 5 });
        assert_eq!(f.verdict(), FaultVerdict::Deliver { cost_factor: 1 });
    }
}
