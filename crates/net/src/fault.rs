//! Fault injection for links.
//!
//! Autonomy means component systems fail independently of the
//! mediator; the federation executor must distinguish transient
//! message loss (retryable) from partitions (fail the fragment,
//! possibly answer from other sources). `FaultPlan` scripts both,
//! deterministically, so tests can assert exact retry behaviour.

use parking_lot::Mutex;

/// Deterministic fault script attached to a [`crate::Link`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<FaultState>,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Fail the next N messages with a retryable error.
    fail_next: u32,
    /// Fail every k-th message (1-based), 0 = disabled.
    fail_every: u32,
    /// Messages observed so far.
    seen: u64,
    /// Hard partition: every message fails until healed.
    partitioned: bool,
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Scripts the next `n` messages to fail (transient loss).
    pub fn fail_next(&self, n: u32) {
        self.state.lock().fail_next = n;
    }

    /// Fails every `k`-th message; `0` disables.
    pub fn fail_every(&self, k: u32) {
        self.state.lock().fail_every = k;
    }

    /// Starts a hard partition (all messages fail until
    /// [`FaultPlan::heal`]).
    pub fn partition(&self) {
        self.state.lock().partitioned = true;
    }

    /// Ends a partition.
    pub fn heal(&self) {
        self.state.lock().partitioned = false;
    }

    /// True while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.state.lock().partitioned
    }

    /// Called once per message; returns `Some(reason)` when this
    /// message should fail.
    pub fn check(&self) -> Option<&'static str> {
        let mut s = self.state.lock();
        s.seen += 1;
        if s.partitioned {
            return Some("link partitioned");
        }
        if s.fail_next > 0 {
            s.fail_next -= 1;
            return Some("injected transient failure");
        }
        if s.fail_every > 0 && s.seen.is_multiple_of(s.fail_every as u64) {
            return Some("injected periodic failure");
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_faultless() {
        let f = FaultPlan::none();
        for _ in 0..100 {
            assert!(f.check().is_none());
        }
    }

    #[test]
    fn fail_next_counts_down() {
        let f = FaultPlan::none();
        f.fail_next(2);
        assert!(f.check().is_some());
        assert!(f.check().is_some());
        assert!(f.check().is_none());
    }

    #[test]
    fn partition_blocks_until_healed() {
        let f = FaultPlan::none();
        f.partition();
        assert!(f.is_partitioned());
        assert!(f.check().is_some());
        assert!(f.check().is_some());
        f.heal();
        assert!(f.check().is_none());
    }

    #[test]
    fn fail_every_kth() {
        let f = FaultPlan::none();
        f.fail_every(3);
        let outcomes: Vec<bool> = (0..9).map(|_| f.check().is_some()).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }
}
