//! Byte-exact wire format for values, schemas and batches.
//!
//! Hand-rolled so the federation experiments can account for every
//! byte a plan ships. Layout conventions:
//!
//! * integers: unsigned LEB128 varints; signed values zigzag first
//! * strings: varint length + UTF-8 bytes
//! * arrays: type tag, length, packed validity bitmap, then payloads
//!   (fixed-width types ship all slots including invalid ones — the
//!   same simplification Arrow IPC makes)
//! * batches: schema (once per stream in practice; included here per
//!   batch for simplicity and honesty about header overhead), then
//!   column arrays
//!
//! Everything round-trips; proptest hammers the encoders below.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_observe::Span;
use gis_types::{Array, Batch, Bitmap, DataType, Field, GisError, Result, Schema, Value};
use std::sync::Arc;

// ---- varint primitives ---------------------------------------------------

/// Appends `v` as an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
pub fn get_uvarint(buf: &mut Bytes) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(truncated());
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(GisError::Network("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends `v` zigzag-encoded.
pub fn put_ivarint(buf: &mut BytesMut, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads a zigzag varint.
pub fn get_ivarint(buf: &mut Bytes) -> Result<i64> {
    let u = get_uvarint(buf)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_count(buf, 1)?;
    // Validate straight from the frame slice; the only allocation is
    // the returned String itself.
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| GisError::Network("invalid UTF-8 on wire".into()))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

pub(crate) fn truncated() -> GisError {
    GisError::Network("truncated message".into())
}

/// Reads a count prefix and bounds it by the bytes remaining: every
/// counted item occupies at least `min_item_bytes` on the wire, so a
/// count that cannot possibly fit in the rest of the frame is a
/// corrupt frame — reject it *before* it sizes an allocation.
pub(crate) fn get_count(buf: &mut Bytes, min_item_bytes: usize) -> Result<usize> {
    let n = usize::try_from(get_uvarint(buf)?).map_err(|_| truncated())?;
    match n.checked_mul(min_item_bytes) {
        Some(need) if need <= buf.remaining() => Ok(n),
        _ => Err(truncated()),
    }
}

// ---- type tags ------------------------------------------------------------

pub(crate) fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Null => 0,
        DataType::Boolean => 1,
        DataType::Int32 => 2,
        DataType::Int64 => 3,
        DataType::Float64 => 4,
        DataType::Utf8 => 5,
        DataType::Date => 6,
        DataType::Timestamp => 7,
    }
}

pub(crate) fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Null,
        1 => DataType::Boolean,
        2 => DataType::Int32,
        3 => DataType::Int64,
        4 => DataType::Float64,
        5 => DataType::Utf8,
        6 => DataType::Date,
        7 => DataType::Timestamp,
        other => {
            return Err(GisError::Network(format!(
                "unknown type tag {other} on wire"
            )))
        }
    })
}

// ---- values ----------------------------------------------------------------

/// Encodes a single value (tag + payload).
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u8(type_tag(v.data_type()));
    match v {
        Value::Null => {}
        Value::Boolean(b) => buf.put_u8(u8::from(*b)),
        Value::Int32(x) => put_ivarint(buf, *x as i64),
        Value::Int64(x) => put_ivarint(buf, *x),
        Value::Float64(x) => buf.put_f64_le(*x),
        Value::Utf8(s) => put_str(buf, s),
        Value::Date(d) => put_ivarint(buf, *d as i64),
        Value::Timestamp(us) => put_ivarint(buf, *us),
    }
}

/// Decodes a single value.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    let dt = tag_type(buf.get_u8())?;
    Ok(match dt {
        DataType::Null => Value::Null,
        DataType::Boolean => {
            if !buf.has_remaining() {
                return Err(truncated());
            }
            Value::Boolean(buf.get_u8() != 0)
        }
        DataType::Int32 => Value::Int32(get_ivarint(buf)? as i32),
        DataType::Int64 => Value::Int64(get_ivarint(buf)?),
        DataType::Float64 => {
            if buf.remaining() < 8 {
                return Err(truncated());
            }
            Value::Float64(buf.get_f64_le())
        }
        DataType::Utf8 => Value::Utf8(get_str(buf)?),
        DataType::Date => Value::Date(get_ivarint(buf)? as i32),
        DataType::Timestamp => Value::Timestamp(get_ivarint(buf)?),
    })
}

// ---- schema -----------------------------------------------------------------

/// Encodes a schema.
pub fn encode_schema(buf: &mut BytesMut, schema: &Schema) {
    put_uvarint(buf, schema.len() as u64);
    for f in schema.fields() {
        put_str(buf, &f.name);
        buf.put_u8(type_tag(f.data_type));
        buf.put_u8(u8::from(f.nullable));
        match &f.qualifier {
            Some(q) => {
                buf.put_u8(1);
                put_str(buf, q);
            }
            None => buf.put_u8(0),
        }
    }
}

/// Decodes a schema.
pub fn decode_schema(buf: &mut Bytes) -> Result<Schema> {
    // Each field costs at least 4 bytes: empty-name varint, type tag,
    // nullable flag, qualifier flag.
    let n = get_count(buf, 4)?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf)?;
        if buf.remaining() < 2 {
            return Err(truncated());
        }
        let dt = tag_type(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        let has_q = {
            if !buf.has_remaining() {
                return Err(truncated());
            }
            buf.get_u8() != 0
        };
        let qualifier = if has_q { Some(get_str(buf)?) } else { None };
        fields.push(Field {
            name,
            data_type: dt,
            nullable,
            qualifier,
        });
    }
    Ok(Schema::new(fields))
}

// ---- arrays -------------------------------------------------------------------

pub(crate) fn encode_array(buf: &mut BytesMut, a: &Array) {
    buf.put_u8(type_tag(a.data_type()));
    let len = a.len();
    put_uvarint(buf, len as u64);
    buf.put_slice(a.validity().as_bytes());
    match a {
        Array::Boolean(v, _) => {
            for &b in v {
                buf.put_u8(u8::from(b));
            }
        }
        Array::Int32(v, _) | Array::Date(v, _) => {
            for &x in v {
                buf.put_i32_le(x);
            }
        }
        Array::Int64(v, _) | Array::Timestamp(v, _) => {
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        Array::Float64(v, _) => {
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        Array::Utf8(v, m) => {
            for (i, s) in v.iter().enumerate() {
                if m.get(i) {
                    put_str(buf, s);
                } else {
                    put_uvarint(buf, 0);
                }
            }
        }
    }
}

pub(crate) fn decode_array(buf: &mut Bytes) -> Result<Array> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    let dt = tag_type(buf.get_u8())?;
    // Bound the claimed length by the cheapest possible payload for
    // this type (the validity bitmap only adds to the true cost), so
    // a corrupt length cannot size a huge allocation.
    let min_width = match dt {
        DataType::Int32 | DataType::Date => 4,
        DataType::Int64 | DataType::Timestamp | DataType::Float64 => 8,
        _ => 1,
    };
    let len = get_count(buf, min_width)?;
    let bitmap_bytes = len.div_ceil(8);
    if buf.remaining() < bitmap_bytes {
        return Err(truncated());
    }
    let validity = Bitmap::from_bytes(buf.copy_to_bytes(bitmap_bytes).to_vec(), len);
    macro_rules! fixed {
        ($variant:ident, $width:expr, $read:expr) => {{
            let need = len.checked_mul($width).ok_or_else(truncated)?;
            if buf.remaining() < need {
                return Err(truncated());
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push($read(buf));
            }
            Array::$variant(v, validity)
        }};
    }
    Ok(match dt {
        DataType::Boolean => fixed!(Boolean, 1, |b: &mut Bytes| b.get_u8() != 0),
        DataType::Int32 => fixed!(Int32, 4, |b: &mut Bytes| b.get_i32_le()),
        DataType::Date => fixed!(Date, 4, |b: &mut Bytes| b.get_i32_le()),
        DataType::Int64 => fixed!(Int64, 8, |b: &mut Bytes| b.get_i64_le()),
        DataType::Timestamp => fixed!(Timestamp, 8, |b: &mut Bytes| b.get_i64_le()),
        DataType::Float64 => fixed!(Float64, 8, |b: &mut Bytes| b.get_f64_le()),
        DataType::Utf8 => {
            let mut v = Vec::with_capacity(len);
            for i in 0..len {
                if validity.get(i) {
                    v.push(get_str(buf)?);
                } else {
                    let z = get_uvarint(buf)?;
                    if z != 0 {
                        return Err(GisError::Network(
                            "non-empty payload for null string slot".into(),
                        ));
                    }
                    v.push(String::new());
                }
            }
            Array::Utf8(v, validity)
        }
        DataType::Null => return Err(GisError::Network("null-typed array on wire".into())),
    })
}

// ---- batches ----------------------------------------------------------------

/// Encodes a batch (schema + columns) and returns the frame.
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::new();
    encode_schema(&mut buf, batch.schema());
    put_uvarint(&mut buf, batch.num_rows() as u64);
    for col in batch.columns() {
        encode_array(&mut buf, col);
    }
    buf.freeze()
}

/// Decodes a batch produced by [`encode_batch`].
pub fn decode_batch(mut buf: Bytes) -> Result<Batch> {
    let schema = decode_schema(&mut buf)?;
    let rows = usize::try_from(get_uvarint(&mut buf)?).map_err(|_| truncated())?;
    let mut columns = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let a = decode_array(&mut buf)?;
        if a.len() != rows {
            return Err(GisError::Network(format!(
                "column length {} does not match row count {rows}",
                a.len()
            )));
        }
        columns.push(a);
    }
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes after batch".into()));
    }
    Batch::try_new(Arc::new(schema), columns)
        .map_err(|e| GisError::Network(format!("malformed batch on wire: {e}")))
}

/// Encodes a list of scalar values (bind-join key shipping).
pub fn encode_values(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    put_uvarint(&mut buf, values.len() as u64);
    for v in values {
        encode_value(&mut buf, v);
    }
    buf.freeze()
}

/// Decodes a list of scalar values.
pub fn decode_values(mut buf: Bytes) -> Result<Vec<Value>> {
    // Every encoded value is at least a one-byte type tag.
    let n = get_count(&mut buf, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_value(&mut buf)?);
    }
    Ok(out)
}

// ---- operator spans ---------------------------------------------------------

/// Span trees deeper than this are rejected as corrupt: no physical
/// plan a source executes comes close, and the bound keeps a hostile
/// frame from recursing the decoder off the stack.
const MAX_SPAN_DEPTH: usize = 64;

/// Encodes an operator span tree (remote `EXPLAIN ANALYZE` stats) and
/// returns the frame.
pub fn encode_span(span: &Span) -> Bytes {
    let mut buf = BytesMut::new();
    encode_span_into(&mut buf, span);
    buf.freeze()
}

fn encode_span_into(buf: &mut BytesMut, span: &Span) {
    put_str(buf, &span.label);
    put_uvarint(buf, span.rows_in);
    put_uvarint(buf, span.rows_out);
    put_uvarint(buf, span.bytes);
    put_uvarint(buf, span.wall_us);
    put_uvarint(buf, span.children.len() as u64);
    for c in &span.children {
        encode_span_into(buf, c);
    }
}

/// Decodes a span tree produced by [`encode_span`].
pub fn decode_span(mut buf: Bytes) -> Result<Span> {
    let span = decode_span_at(&mut buf, 0)?;
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes after span".into()));
    }
    Ok(span)
}

fn decode_span_at(buf: &mut Bytes, depth: usize) -> Result<Span> {
    if depth > MAX_SPAN_DEPTH {
        return Err(GisError::Network("span tree too deep on wire".into()));
    }
    let label = get_str(buf)?;
    let rows_in = get_uvarint(buf)?;
    let rows_out = get_uvarint(buf)?;
    let bytes = get_uvarint(buf)?;
    let wall_us = get_uvarint(buf)?;
    // Each child span costs at least 6 bytes (empty label + five
    // varints).
    let n_children = get_count(buf, 6)?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(decode_span_at(buf, depth + 1)?);
    }
    // Sources report no estimates — the optimizer's picture lives at
    // the mediator, so wire spans leave `est_rows` at 0.
    Ok(Span {
        label,
        rows_in,
        rows_out,
        bytes,
        wall_us,
        children,
        ..Span::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::Field;
    use proptest::prelude::*;

    fn sample_batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::required("id", DataType::Int64).with_qualifier("t"),
                Field::new("name", DataType::Utf8),
                Field::new("score", DataType::Float64),
                Field::new("day", DataType::Date),
            ])
            .into_ref(),
            &[
                vec![
                    Value::Int64(1),
                    Value::Utf8("ada".into()),
                    Value::Float64(0.5),
                    Value::Date(1000),
                ],
                vec![Value::Int64(2), Value::Null, Value::Null, Value::Null],
                vec![
                    Value::Int64(-3),
                    Value::Utf8("héllo".into()),
                    Value::Float64(-1.25),
                    Value::Date(-10),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn batch_roundtrip() {
        let b = sample_batch();
        let bytes = encode_batch(&b);
        let back = decode_batch(bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = Batch::empty(Schema::new(vec![Field::new("x", DataType::Boolean)]).into_ref());
        assert_eq!(decode_batch(encode_batch(&b)).unwrap(), b);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let bytes = encode_batch(&sample_batch());
        for cut in 0..bytes.len() {
            let sliced = bytes.slice(0..cut);
            assert!(decode_batch(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_prefixes_error_without_allocating() {
        // Each frame claims an absurd element count backed by almost
        // no bytes. Pre-hardening, these sized `Vec::with_capacity`
        // straight from the wire (capacity-overflow panic or OOM);
        // now every count is bounded by the remaining frame bytes.
        let huge = u64::MAX / 2;

        // Schema with a huge field count.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, huge);
        assert!(decode_schema(&mut buf.freeze()).is_err());

        // Array with a huge length.
        let mut buf = BytesMut::new();
        buf.put_u8(type_tag(DataType::Int64));
        put_uvarint(&mut buf, huge);
        buf.put_u8(0xFF); // one stray bitmap byte
        assert!(decode_array(&mut buf.freeze()).is_err());

        // Utf8 array whose length passes the bitmap check but not the
        // one-byte-per-slot payload bound.
        let mut buf = BytesMut::new();
        buf.put_u8(type_tag(DataType::Utf8));
        put_uvarint(&mut buf, 64); // needs 8 bitmap bytes + 64 payload bytes
        buf.put_slice(&[0xFF; 8]);
        assert!(decode_array(&mut buf.freeze()).is_err());

        // Value list with a huge count.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, huge);
        assert!(decode_values(buf.freeze()).is_err());

        // String with a huge byte length.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, huge);
        buf.put_slice(b"abc");
        assert!(get_str(&mut buf.freeze()).is_err());

        // Batch whose row count overflows usize arithmetic.
        let b = sample_batch();
        let mut buf = BytesMut::new();
        encode_schema(&mut buf, b.schema());
        put_uvarint(&mut buf, u64::MAX);
        assert!(decode_batch(buf.freeze()).is_err());
    }

    #[test]
    fn span_roundtrip_and_corrupt_frames() {
        let span = Span::leaf("HashJoin[inner]")
            .with_rows_in(10)
            .with_rows_out(4)
            .with_wall_us(123)
            .with_child(Span::leaf("scan[t]").with_rows_out(10).with_bytes(2048));
        assert_eq!(decode_span(encode_span(&span)).unwrap(), span);

        // Truncation at every cut point errors instead of panicking.
        let bytes = encode_span(&span);
        for cut in 0..bytes.len() {
            assert!(decode_span(bytes.slice(0..cut)).is_err(), "cut at {cut}");
        }

        // A frame claiming a huge child count is rejected.
        let mut buf = BytesMut::new();
        put_str(&mut buf, "x");
        for _ in 0..4 {
            put_uvarint(&mut buf, 0);
        }
        put_uvarint(&mut buf, u64::MAX / 4);
        assert!(decode_span(buf.freeze()).is_err());

        // A pathologically deep chain is rejected, not recursed.
        let mut deep = Span::leaf("leaf");
        for _ in 0..200 {
            deep = Span::leaf("n").with_child(deep);
        }
        assert!(decode_span(encode_span(&deep)).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = BytesMut::from(&encode_batch(&sample_batch())[..]);
        buf.put_u8(0xAB);
        assert!(decode_batch(buf.freeze()).is_err());
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            assert_eq!(get_uvarint(&mut buf.freeze()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = BytesMut::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut buf.freeze()).unwrap(), v);
        }
    }

    #[test]
    fn value_list_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Boolean(true),
            Value::Int32(-7),
            Value::Int64(1 << 40),
            Value::Float64(2.5),
            Value::Utf8(String::new()),
            Value::Date(0),
            Value::Timestamp(-5),
        ];
        assert_eq!(decode_values(encode_values(&vals)).unwrap(), vals);
    }

    proptest! {
        #[test]
        fn prop_ivarint_roundtrip(v in any::<i64>()) {
            let mut buf = BytesMut::new();
            put_ivarint(&mut buf, v);
            prop_assert_eq!(get_ivarint(&mut buf.freeze()).unwrap(), v);
        }

        #[test]
        fn prop_value_roundtrip(v in value_strategy()) {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            let back = decode_value(&mut buf.freeze()).unwrap();
            // Bitwise comparison for floats: encode preserves bits.
            prop_assert_eq!(format!("{back:?}"), format!("{v:?}"));
        }

        #[test]
        fn prop_int_batch_roundtrip(rows in proptest::collection::vec(
            (any::<Option<i64>>(), any::<Option<bool>>()), 0..50)
        ) {
            let schema = Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Boolean),
            ]).into_ref();
            let value_rows: Vec<Vec<Value>> = rows.iter().map(|(a, b)| vec![
                a.map_or(Value::Null, Value::Int64),
                b.map_or(Value::Null, Value::Boolean),
            ]).collect();
            let batch = Batch::from_rows(schema, &value_rows).unwrap();
            prop_assert_eq!(decode_batch(encode_batch(&batch)).unwrap(), batch);
        }
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Boolean),
            any::<i32>().prop_map(Value::Int32),
            any::<i64>().prop_map(Value::Int64),
            any::<f64>().prop_map(Value::Float64),
            ".*".prop_map(Value::Utf8),
            any::<i32>().prop_map(Value::Date),
            any::<i64>().prop_map(Value::Timestamp),
        ]
    }
}
