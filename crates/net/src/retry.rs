//! Retry policy for transient link failures.
//!
//! Wide-area links lose messages; the adapter layer retries retryable
//! failures before giving up on a fragment. A [`RetryPolicy`] bounds
//! that persistence three ways — attempt count, a total virtual-time
//! budget, and (at the call site) the query deadline — and spaces the
//! attempts with exponential backoff plus *deterministic* jitter:
//! the wait before retry `k` is a pure function of `(seed, k)`, so
//! experiments replay to the microsecond while distinct sources still
//! decorrelate their retry bursts.

/// When (and how long) to retry a retryable link failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, virtual microseconds. Doubles
    /// per retry up to [`RetryPolicy::max_backoff_us`]. `0` disables
    /// backoff entirely.
    pub base_backoff_us: u64,
    /// Upper bound on a single backoff wait.
    pub max_backoff_us: u64,
    /// Fraction of each backoff randomized away, in permille: `0` is
    /// full deterministic exponential, `500` draws the wait uniformly
    /// from `[backoff/2, backoff]`, `1000` from `(0, backoff]`.
    pub jitter_permille: u32,
    /// Seed for the jitter stream; attempts hash `(seed, attempt)` so
    /// the schedule is reproducible.
    pub seed: u64,
    /// Total virtual-time budget across all attempts of one request,
    /// including wire time already burned by failures. Once spending
    /// the next backoff would exceed it, the caller stops retrying and
    /// returns the last error. `u64::MAX` = unbounded.
    pub budget_us: u64,
}

impl Default for RetryPolicy {
    /// Three attempts with 1 ms → 2 ms backoff, half-range jitter, and
    /// a 30 s virtual budget — the historical fixed-count behaviour
    /// plus bounded waiting.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 100_000,
            jitter_permille: 500,
            seed: 0x6715_a2fe_3b90_c4d1,
            budget_us: 30_000_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy with `max_attempts` total attempts and the default
    /// backoff schedule.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Builder: caps the total virtual time spent on one request.
    pub fn with_budget_us(mut self, budget_us: u64) -> Self {
        self.budget_us = budget_us;
        self
    }

    /// Builder: sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The virtual-time wait before retry number `retry` (1-based:
    /// `1` is the wait between the first failure and the second
    /// attempt). Deterministic in `(self, retry)`.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        if self.base_backoff_us == 0 || retry == 0 {
            return 0;
        }
        let exp = retry.saturating_sub(1).min(63);
        let raw = self
            .base_backoff_us
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_us.max(self.base_backoff_us));
        if self.jitter_permille == 0 {
            return raw;
        }
        // Hash (seed, retry) through one splitmix64 step for the
        // jitter draw; subtracting keeps the wait <= raw so budgets
        // and deadlines stay conservative.
        let mut state = self.seed ^ (u64::from(retry)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let draw = state ^ (state >> 31);
        let span = raw.saturating_mul(u64::from(self.jitter_permille.min(1_000))) / 1_000;
        raw - if span == 0 { 0 } else { draw % (span + 1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keeps_three_attempts() {
        assert_eq!(RetryPolicy::default().max_attempts, 3);
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
        assert_eq!(RetryPolicy::with_max_attempts(0).max_attempts, 1);
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            jitter_permille: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_us(1), 1_000);
        assert_eq!(p.backoff_us(2), 2_000);
        assert_eq!(p.backoff_us(3), 4_000);
        assert_eq!(p.backoff_us(20), 100_000, "capped at max_backoff_us");
        // Same policy, same retry index → same wait, every time.
        let q = RetryPolicy::default();
        assert_eq!(q.backoff_us(2), q.backoff_us(2));
    }

    #[test]
    fn jitter_stays_within_the_configured_fraction() {
        let p = RetryPolicy {
            jitter_permille: 500,
            ..RetryPolicy::default()
        };
        for retry in 1..10 {
            let raw = RetryPolicy {
                jitter_permille: 0,
                ..p
            }
            .backoff_us(retry);
            let jittered = p.backoff_us(retry);
            assert!(jittered <= raw);
            assert!(
                jittered >= raw / 2,
                "retry {retry}: {jittered} < {}",
                raw / 2
            );
        }
    }

    #[test]
    fn seeds_decorrelate_schedules() {
        let a = RetryPolicy::default().with_seed(1);
        let b = RetryPolicy::default().with_seed(2);
        let sa: Vec<u64> = (1..8).map(|r| a.backoff_us(r)).collect();
        let sb: Vec<u64> = (1..8).map(|r| b.backoff_us(r)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zero_base_means_no_backoff() {
        let p = RetryPolicy {
            base_backoff_us: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_us(1), 0);
        assert_eq!(p.backoff_us(5), 0);
    }
}
