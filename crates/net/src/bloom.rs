//! Compact Bloom filters for semijoin key shipping.
//!
//! Instead of shipping every distinct outer join key to a source, the
//! mediator can ship a [`KeyBloom`] sized from catalog statistics:
//! `m = ceil(-n·ln p / (ln 2)²)` bits and `k = round((m/n)·ln 2)`
//! probes for `n` expected keys at false-positive rate `p`. False
//! positives only cost extra shipped rows — the mediator's exact hash
//! join re-checks every key — so correctness never depends on `p`.
//!
//! Probes use double hashing (`h1 + i·h2`, `h2` forced odd) over one
//! 64-bit stable hash, the standard Kirsch–Mitzenmacher construction,
//! so a key hashes once no matter how many probes the filter uses.
//! The key hash itself is FNV-1a over the tagged wire bytes of the
//! key values, making it stable across processes and platforms — the
//! filter crosses the (simulated) wire.

use crate::wire::{encode_value, get_uvarint, put_uvarint, truncated};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_types::{GisError, Result, Value};

/// Hard ceiling on filter size: a filter this large (16 MiB) has lost
/// to shipping the keys outright long before, and the bound keeps a
/// hostile frame from sizing a huge allocation.
pub const MAX_BLOOM_BYTES: usize = 16 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A Bloom filter over join-key hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBloom {
    bits: Vec<u8>,
    n_bits: u64,
    k: u32,
}

impl KeyBloom {
    /// A filter sized for `n` expected keys at false-positive rate
    /// `p` (clamped to sane bounds).
    pub fn sized_for(n: usize, p: f64) -> KeyBloom {
        let n = n.max(1) as f64;
        let p = p.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m_bits = (-n * p.ln() / (ln2 * ln2)).ceil() as u64;
        let m_bits = m_bits.clamp(64, (MAX_BLOOM_BYTES as u64) * 8);
        let k = ((m_bits as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        KeyBloom {
            bits: vec![0u8; (m_bits as usize).div_ceil(8)],
            n_bits: m_bits,
            k,
        }
    }

    /// Stable 64-bit hash of a composite key: FNV-1a over the tagged
    /// wire encoding of each value.
    pub fn hash_key(key: &[Value]) -> u64 {
        let mut buf = BytesMut::new();
        for v in key {
            encode_value(&mut buf, v);
        }
        let mut h = FNV_OFFSET;
        for &b in buf.iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    fn probes(&self, h: u64) -> impl Iterator<Item = u64> + '_ {
        let h1 = h;
        let h2 = (h >> 32) | 1; // odd, so probes cycle the whole table
        (0..u64::from(self.k)).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits)
    }

    /// Inserts a key hash.
    pub fn insert(&mut self, h: u64) {
        let (n_bits, k) = (self.n_bits, self.k);
        let h2 = (h >> 32) | 1;
        for i in 0..u64::from(k) {
            let bit = h.wrapping_add(i.wrapping_mul(h2)) % n_bits;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// True when the key hash may have been inserted (false positives
    /// possible, false negatives not).
    pub fn contains(&self, h: u64) -> bool {
        self.probes(h)
            .all(|bit| self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0)
    }

    /// Filter size in bytes (what shipping it costs).
    pub fn size_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Number of probe functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Predicted filter bytes for `n` keys at rate `p` without
    /// building the filter — the planner's cost input.
    pub fn predicted_bytes(n: usize, p: f64) -> usize {
        let n = n.max(1) as f64;
        let p = p.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m_bits = (-n * p.ln() / (ln2 * ln2)).ceil() as u64;
        (m_bits.clamp(64, (MAX_BLOOM_BYTES as u64) * 8) as usize).div_ceil(8)
    }

    /// Serializes the filter (bit count, probe count, bit bytes).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.bits.len() + 12);
        put_uvarint(&mut buf, self.n_bits);
        put_uvarint(&mut buf, u64::from(self.k));
        buf.put_slice(&self.bits);
        buf.freeze()
    }

    /// Decodes a filter, bounding the claimed size by the bytes
    /// remaining before allocating.
    pub fn decode(buf: &mut Bytes) -> Result<KeyBloom> {
        let n_bits = get_uvarint(buf)?;
        if n_bits == 0 || n_bits > (MAX_BLOOM_BYTES as u64) * 8 {
            return Err(GisError::Network(format!(
                "bloom filter claims {n_bits} bits"
            )));
        }
        let k = u32::try_from(get_uvarint(buf)?)
            .map_err(|_| GisError::Network("bloom probe count overflow".into()))?;
        if k == 0 || k > 16 {
            return Err(GisError::Network(format!("bloom filter claims {k} probes")));
        }
        let n_bytes = (n_bits as usize).div_ceil(8);
        if buf.remaining() < n_bytes {
            return Err(truncated());
        }
        let bits = buf.copy_to_bytes(n_bytes).to_vec();
        Ok(KeyBloom { bits, n_bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: i64) -> Vec<Value> {
        vec![Value::Int64(i), Value::Utf8(format!("k{i}"))]
    }

    #[test]
    fn no_false_negatives_and_low_false_positives() {
        let n = 5_000;
        let mut bloom = KeyBloom::sized_for(n, 0.01);
        for i in 0..n as i64 {
            bloom.insert(KeyBloom::hash_key(&key(i)));
        }
        // Every inserted key is found.
        for i in 0..n as i64 {
            assert!(bloom.contains(KeyBloom::hash_key(&key(i))), "lost key {i}");
        }
        // Non-members come back mostly negative.
        let fp = (n as i64..2 * n as i64)
            .filter(|&i| bloom.contains(KeyBloom::hash_key(&key(i))))
            .count();
        let rate = fp as f64 / n as f64;
        assert!(rate < 0.03, "false-positive rate {rate} way over target");
    }

    #[test]
    fn sizing_follows_the_math() {
        // 1% at n keys needs ~9.59 bits/key.
        let bloom = KeyBloom::sized_for(10_000, 0.01);
        let bits_per_key = (bloom.size_bytes() * 8) as f64 / 10_000.0;
        assert!(
            (9.0..11.0).contains(&bits_per_key),
            "bits/key {bits_per_key}"
        );
        assert!((6..=8).contains(&bloom.k()), "k {}", bloom.k());
        assert_eq!(
            KeyBloom::predicted_bytes(10_000, 0.01),
            bloom.size_bytes(),
            "prediction matches construction"
        );
        // Tiny inputs still make a usable filter.
        let tiny = KeyBloom::sized_for(0, 0.01);
        assert!(tiny.size_bytes() >= 8);
        assert!(tiny.k() >= 1);
    }

    #[test]
    fn hash_is_stable_and_distinguishes_types() {
        assert_eq!(
            KeyBloom::hash_key(&[Value::Int64(7)]),
            KeyBloom::hash_key(&[Value::Int64(7)])
        );
        assert_ne!(
            KeyBloom::hash_key(&[Value::Int64(7)]),
            KeyBloom::hash_key(&[Value::Int32(7)])
        );
        assert_ne!(
            KeyBloom::hash_key(&[Value::Utf8("ab".into()), Value::Utf8("c".into())]),
            KeyBloom::hash_key(&[Value::Utf8("a".into()), Value::Utf8("bc".into())]),
            "length prefixes keep concatenations apart"
        );
    }

    #[test]
    fn roundtrips_and_rejects_hostile_frames() {
        let mut bloom = KeyBloom::sized_for(100, 0.01);
        for i in 0..100 {
            bloom.insert(KeyBloom::hash_key(&key(i)));
        }
        let mut buf = bloom.encode();
        let back = KeyBloom::decode(&mut buf).unwrap();
        assert_eq!(back, bloom);
        assert!(!buf.has_remaining());

        // Truncations error, never panic.
        let frame = bloom.encode();
        for cut in 0..frame.len() {
            assert!(KeyBloom::decode(&mut frame.slice(0..cut)).is_err());
        }

        // Absurd bit counts are bounded before allocation.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, u64::MAX / 2);
        put_uvarint(&mut buf, 4);
        assert!(KeyBloom::decode(&mut buf.freeze()).is_err());

        // Zero probes / absurd probes rejected.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 64);
        put_uvarint(&mut buf, 0);
        buf.put_slice(&[0u8; 8]);
        assert!(KeyBloom::decode(&mut buf.freeze()).is_err());
    }
}
