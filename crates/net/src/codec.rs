//! Compressed wire frames: adaptive per-column codecs.
//!
//! Version-1 frames start with a two-byte `MAGIC, VERSION` header so
//! legacy raw frames (which begin with a schema field-count varint)
//! still decode: [`decode_frame`] sniffs the first byte and falls
//! back to [`crate::wire::decode_batch`]. The magic byte has its high
//! bit set, so it can never be the first byte of a legacy frame — the
//! legacy encoder emits the schema field count as a varint whose
//! first byte only carries a continuation bit for 128+ fields, which
//! no planner-produced schema reaches (and such a frame would still
//! have to match the version byte and then decode cleanly).
//!
//! Each column independently selects the cheapest of five layouts
//! from one exact stats pass over its values (shipped chunks are
//! small, so "sampling" the column is simply reading it):
//!
//! * **raw** (0): the legacy array layout, byte-identical fallback —
//!   wins for high-entropy integers where varints cost more than
//!   eight flat bytes;
//! * **dict** (1): up to 256 distinct values + bit-packed codes;
//! * **rle** (2): (run length, value) pairs, null runs included;
//! * **delta** (3): frame-of-reference bit-packed integers — offsets
//!   from the column minimum, or zigzag deltas between consecutive
//!   valid slots, whichever packs narrower;
//! * **nullsup** (4): validity bitmap + payloads for valid slots only
//!   (varint integers, so this doubles as the dense-integer layout).
//!
//! Floats compare *bitwise* throughout (runs, dictionaries), so
//! `-0.0` vs `0.0` and NaN payloads survive the codec unchanged.
//!
//! Decoders follow the same hostile-frame discipline as
//! `wire::get_count`: every count, width and run length is bounded by
//! the bytes remaining or by [`MAX_FRAME_ROWS`] *before* it sizes an
//! allocation, so truncated dictionaries, out-of-range codes and
//! absurd run lengths error instead of panicking or ballooning.
//! Payload bytes under NULL slots decode to the type's default — the
//! same zeroed representation array builders produce.

use crate::wire::{
    decode_array, decode_schema, decode_value, encode_array, encode_schema, encode_value,
    get_count, get_ivarint, get_str, get_uvarint, put_ivarint, put_str, put_uvarint, tag_type,
    truncated, type_tag,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_types::{Array, ArrayBuilder, Batch, Bitmap, DataType, GisError, Result, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// First byte of a compressed frame.
pub const FRAME_MAGIC: u8 = 0xC6;
/// Wire-protocol version this build encodes.
pub const FRAME_VERSION: u8 = 1;
/// Row-count ceiling for one compressed frame. The mediator ships
/// chunked results far below this; the cap bounds how large an array
/// a tiny hostile frame (a few RLE bytes claiming a huge row count)
/// can make the decoder build. Batches above the cap encode through
/// the legacy layout, which prices every row in frame bytes.
pub const MAX_FRAME_ROWS: usize = 1 << 20;
/// Distinct-value ceiling for dictionary encoding: one- to eight-bit
/// codes cover the categorical columns dictionaries are for; past 256
/// entries the dictionary rarely beats the other layouts.
pub const DICT_MAX: usize = 256;

/// Number of column codecs (sizes the per-codec counter arrays).
pub const CODEC_COUNT: usize = 5;

/// One column's chosen layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ColumnCodec {
    /// Legacy flat array layout.
    Raw = 0,
    /// Dictionary + bit-packed codes.
    Dict = 1,
    /// Run-length encoding.
    Rle = 2,
    /// Delta / frame-of-reference bit-packed integers.
    Delta = 3,
    /// Null-suppressed varint payloads.
    NullSup = 4,
}

impl ColumnCodec {
    /// Short name used in spans and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            ColumnCodec::Raw => "raw",
            ColumnCodec::Dict => "dict",
            ColumnCodec::Rle => "rle",
            ColumnCodec::Delta => "delta",
            ColumnCodec::NullSup => "nullsup",
        }
    }

    /// All codecs, index-aligned with their wire tags.
    pub fn all() -> [ColumnCodec; CODEC_COUNT] {
        [
            ColumnCodec::Raw,
            ColumnCodec::Dict,
            ColumnCodec::Rle,
            ColumnCodec::Delta,
            ColumnCodec::NullSup,
        ]
    }

    fn from_tag(tag: u8) -> Result<ColumnCodec> {
        Ok(match tag {
            0 => ColumnCodec::Raw,
            1 => ColumnCodec::Dict,
            2 => ColumnCodec::Rle,
            3 => ColumnCodec::Delta,
            4 => ColumnCodec::NullSup,
            other => {
                return Err(GisError::Network(format!(
                    "unknown column codec {other} on wire"
                )))
            }
        })
    }
}

/// What one frame encode produced: the bytes the legacy layout would
/// have cost, the bytes actually put on the wire, and how many
/// columns picked each codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Bytes the legacy encoding of the same batch occupies.
    pub raw: usize,
    /// Bytes of the frame as encoded.
    pub wire: usize,
    /// Columns per codec, indexed by codec tag.
    pub codecs: [u32; CODEC_COUNT],
}

impl FrameStats {
    /// Merges another frame's stats into this one (per-exchange
    /// aggregation for the `wire[...]` span).
    pub fn absorb(&mut self, other: &FrameStats) {
        self.raw += other.raw;
        self.wire += other.wire;
        for (a, b) in self.codecs.iter_mut().zip(other.codecs.iter()) {
            *a += b;
        }
    }

    /// Compact `name*count` summary of the codecs used, e.g.
    /// `dict*3,delta*1`; `legacy` when no column went through a codec
    /// (raw-mode frames).
    pub fn codec_summary(&self) -> String {
        let parts: Vec<String> = ColumnCodec::all()
            .into_iter()
            .filter(|c| self.codecs[*c as usize] > 0)
            .map(|c| format!("{}*{}", c.name(), self.codecs[c as usize]))
            .collect();
        if parts.is_empty() {
            "legacy".into()
        } else {
            parts.join(",")
        }
    }
}

/// Shared wire-compression counters: one set per federation, bumped
/// by every remote exchange, scraped by the runtime's metrics text.
#[derive(Debug, Default)]
pub struct WireStats {
    raw_bytes: AtomicU64,
    wire_bytes: AtomicU64,
    frames: AtomicU64,
    columns: [AtomicU64; CODEC_COUNT],
}

impl WireStats {
    /// A fresh counter set behind an `Arc`.
    pub fn shared() -> Arc<WireStats> {
        Arc::new(WireStats::default())
    }

    /// Records one encoded frame.
    pub fn record(&self, stats: &FrameStats) {
        self.raw_bytes
            .fetch_add(stats.raw as u64, Ordering::Relaxed);
        self.wire_bytes
            .fetch_add(stats.wire as u64, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
        for (counter, &n) in self.columns.iter().zip(stats.codecs.iter()) {
            if n > 0 {
                counter.fetch_add(u64::from(n), Ordering::Relaxed);
            }
        }
    }

    /// Total pre-compression bytes of recorded frames.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes.load(Ordering::Relaxed)
    }

    /// Total on-the-wire bytes of recorded frames.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes.load(Ordering::Relaxed)
    }

    /// Frames recorded.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Columns that selected `codec`.
    pub fn columns(&self, codec: ColumnCodec) -> u64 {
        self.columns[codec as usize].load(Ordering::Relaxed)
    }
}

// ---- size accounting -------------------------------------------------------

fn uvarint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).div_ceil(7).max(1)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn ivarint_len(v: i64) -> usize {
    uvarint_len(zigzag(v))
}

/// Exact length of the legacy (raw) encoding of one array.
fn raw_array_size(a: &Array) -> usize {
    let n = a.len();
    let header = 1 + uvarint_len(n as u64) + n.div_ceil(8);
    let payload = match a {
        Array::Boolean(v, _) => v.len(),
        Array::Int32(v, _) | Array::Date(v, _) => v.len() * 4,
        Array::Int64(v, _) | Array::Timestamp(v, _) => v.len() * 8,
        Array::Float64(v, _) => v.len() * 8,
        Array::Utf8(v, m) => v
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if m.get(i) {
                    uvarint_len(s.len() as u64) + s.len()
                } else {
                    1
                }
            })
            .sum(),
    };
    header + payload
}

/// Exact length of the legacy encoding of a whole batch — what the
/// wire *would* have carried uncompressed. Computed by formula so the
/// raw side of every `raw/sent` ratio costs no second encode.
pub fn raw_frame_size(batch: &Batch) -> usize {
    let schema = batch.schema();
    let mut size = uvarint_len(schema.len() as u64);
    for f in schema.fields() {
        size += uvarint_len(f.name.len() as u64) + f.name.len() + 3;
        if let Some(q) = &f.qualifier {
            size += uvarint_len(q.len() as u64) + q.len();
        }
    }
    size += uvarint_len(batch.num_rows() as u64);
    size + batch.columns().iter().map(raw_array_size).sum::<usize>()
}

// ---- bit packing -----------------------------------------------------------

fn packed_len(n: usize, width: u8) -> usize {
    (n * width as usize).div_ceil(8)
}

/// Bits needed to represent `max` (0 for 0).
fn bits_for(max: u64) -> u8 {
    (64 - max.leading_zeros()) as u8
}

fn width_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn pack_bits(buf: &mut BytesMut, vals: impl Iterator<Item = u64>, width: u8) {
    if width == 0 {
        return;
    }
    let mask = width_mask(width);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for v in vals {
        acc |= u128::from(v & mask) << nbits;
        nbits += u32::from(width);
        while nbits >= 8 {
            buf.put_u8(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        buf.put_u8(acc as u8);
    }
}

/// LSB-first reader over a length-checked packed run.
struct BitReader {
    bytes: Bytes,
    acc: u128,
    nbits: u32,
    pos: usize,
}

impl BitReader {
    fn new(bytes: Bytes) -> BitReader {
        BitReader {
            bytes,
            acc: 0,
            nbits: 0,
            pos: 0,
        }
    }

    fn read(&mut self, width: u8) -> u64 {
        if width == 0 {
            return 0;
        }
        while self.nbits < u32::from(width) {
            // The packed run was length-checked before this reader
            // was built, so the next byte always exists.
            self.acc |= u128::from(self.bytes[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let v = (self.acc as u64) & width_mask(width);
        self.acc >>= width;
        self.nbits -= u32::from(width);
        v
    }
}

// ---- column plans ----------------------------------------------------------

/// The per-column stats pass shared by every type: run boundaries
/// (bitwise equality for floats), a capped distinct set, and exact
/// candidate sizes. `S` is the cheap slot representation (bits for
/// floats, `&str` for strings) so the pass allocates nothing per
/// slot; run values are stored as start offsets into the array.
struct GenericStats {
    /// (run length, start slot) pairs.
    runs: Vec<(u64, usize)>,
    rle_size: usize,
    dict: Option<(Vec<Value>, Vec<u16>)>,
    dict_size: usize,
    nullsup_size: usize,
}

fn generic_stats<S, FL, FV>(
    n: usize,
    slots: impl Iterator<Item = Option<S>>,
    payload_len: FL,
    to_value: FV,
) -> GenericStats
where
    S: std::hash::Hash + Eq + Clone,
    FL: Fn(&S) -> usize,
    FV: Fn(&S) -> Value,
{
    let bitmap_bytes = n.div_ceil(8);
    let mut runs: Vec<(u64, usize)> = Vec::new();
    let mut rle_body = 0usize;
    let mut run_val: Option<Option<S>> = None;
    let mut run_len = 0u64;
    let mut run_start = 0usize;
    let mut dict_map: HashMap<S, u16> = HashMap::new();
    let mut dict_values: Vec<Value> = Vec::new();
    let mut dict_payload = 0usize;
    let mut codes: Vec<u16> = Vec::with_capacity(n);
    let mut dict_ok = true;
    let mut nullsup_payload = 0usize;
    for (i, slot) in slots.enumerate() {
        if matches!(&run_val, Some(p) if *p == slot) {
            run_len += 1;
        } else {
            if let Some(p) = run_val.take() {
                runs.push((run_len, run_start));
                rle_body += uvarint_len(run_len) + p.as_ref().map_or(1, |s| 1 + payload_len(s));
            }
            run_val = Some(slot.clone());
            run_len = 1;
            run_start = i;
        }
        if let Some(s) = &slot {
            nullsup_payload += payload_len(s);
            if dict_ok {
                let next = dict_map.len() as u16;
                let code = *dict_map.entry(s.clone()).or_insert(next);
                if usize::from(code) == dict_values.len() {
                    if dict_values.len() >= DICT_MAX {
                        dict_ok = false;
                    } else {
                        dict_payload += 1 + payload_len(s);
                        dict_values.push(to_value(s));
                    }
                }
                if dict_ok {
                    codes.push(code);
                }
            }
        } else if dict_ok {
            codes.push(0);
        }
    }
    if let Some(p) = run_val.take() {
        runs.push((run_len, run_start));
        rle_body += uvarint_len(run_len) + p.as_ref().map_or(1, |s| 1 + payload_len(s));
    }
    let rle_size = 1 + uvarint_len(runs.len() as u64) + rle_body;
    let nullsup_size = 1 + bitmap_bytes + nullsup_payload;
    let (dict, dict_size) = if dict_ok && !dict_values.is_empty() {
        let width = bits_for(dict_values.len() as u64 - 1);
        let size = 1
            + bitmap_bytes
            + uvarint_len(dict_values.len() as u64)
            + dict_payload
            + 1
            + packed_len(n, width);
        (Some((dict_values, codes)), size)
    } else {
        (None, usize::MAX)
    };
    GenericStats {
        runs,
        rle_size,
        dict,
        dict_size,
        nullsup_size,
    }
}

/// Integer delta/frame-of-reference plan: `(mode, base, width)`.
/// Mode 0 packs `v - min`; mode 1 packs zigzag deltas between
/// consecutive valid slots (NULLs carry the previous value, and the
/// first valid slot's delta from `base` is zero). All arithmetic
/// wraps, and the decoder wraps identically, so extreme ranges
/// round-trip.
fn int_delta_plan(vals: &[i64], m: &Bitmap) -> (u8, i64, u8) {
    let mut any = false;
    let (mut min, mut max, mut first, mut prev) = (0i64, 0i64, 0i64, 0i64);
    let mut max_zz = 0u64;
    for (i, &v) in vals.iter().enumerate() {
        if !m.get(i) {
            continue;
        }
        if !any {
            any = true;
            min = v;
            max = v;
            first = v;
        } else {
            min = min.min(v);
            max = max.max(v);
            max_zz = max_zz.max(zigzag(v.wrapping_sub(prev)));
        }
        prev = v;
    }
    if !any {
        return (0, 0, 0);
    }
    let for_width = bits_for(max.wrapping_sub(min) as u64);
    let delta_width = bits_for(max_zz);
    if delta_width < for_width {
        (1, first, delta_width)
    } else {
        (0, min, for_width)
    }
}

struct Plan {
    codec: ColumnCodec,
    runs: Vec<(u64, usize)>,
    dict: Option<(Vec<Value>, Vec<u16>)>,
    delta: Option<(u8, i64, u8)>,
}

fn int_value(dt: DataType, v: i64) -> Value {
    match dt {
        DataType::Int32 => Value::Int32(v as i32),
        DataType::Date => Value::Date(v as i32),
        DataType::Timestamp => Value::Timestamp(v),
        _ => Value::Int64(v),
    }
}

fn int_slots(a: &Array) -> Option<(Vec<i64>, &Bitmap)> {
    match a {
        Array::Int32(v, m) | Array::Date(v, m) => {
            Some((v.iter().map(|&x| i64::from(x)).collect(), m))
        }
        Array::Int64(v, m) | Array::Timestamp(v, m) => Some((v.clone(), m)),
        _ => None,
    }
}

fn plan_column(a: &Array) -> Plan {
    let n = a.len();
    let raw = raw_array_size(a);
    let (st, delta) = match a {
        Array::Boolean(v, m) => (
            generic_stats(
                n,
                (0..n).map(|i| m.get(i).then(|| v[i])),
                |_| 1,
                |&b| Value::Boolean(b),
            ),
            None,
        ),
        Array::Float64(v, m) => (
            generic_stats(
                n,
                (0..n).map(|i| m.get(i).then(|| v[i].to_bits())),
                |_| 8,
                |&bits| Value::Float64(f64::from_bits(bits)),
            ),
            None,
        ),
        Array::Utf8(v, m) => (
            generic_stats(
                n,
                (0..n).map(|i| m.get(i).then(|| v[i].as_str())),
                |s: &&str| uvarint_len(s.len() as u64) + s.len(),
                |s: &&str| Value::Utf8((*s).to_string()),
            ),
            None,
        ),
        _ => {
            let dt = a.data_type();
            let (vals, m) = int_slots(a).expect("non-generic arrays are integers");
            let st = generic_stats(
                n,
                (0..n).map(|i| m.get(i).then(|| vals[i])),
                |&v| ivarint_len(v),
                |&v| int_value(dt, v),
            );
            let (mode, base, width) = int_delta_plan(&vals, m);
            let delta_size = 1 + n.div_ceil(8) + 1 + ivarint_len(base) + 1 + packed_len(n, width);
            (st, Some((mode, base, width, delta_size)))
        }
    };
    let mut cands = vec![
        (ColumnCodec::Raw, raw),
        (ColumnCodec::Dict, st.dict_size),
        (ColumnCodec::Rle, st.rle_size),
        (ColumnCodec::NullSup, st.nullsup_size),
    ];
    if let Some((_, _, _, size)) = delta {
        cands.push((ColumnCodec::Delta, size));
    }
    let codec = cands
        .iter()
        .min_by_key(|(c, s)| (*s, *c))
        .expect("raw is always a candidate")
        .0;
    Plan {
        codec,
        runs: st.runs,
        dict: st.dict,
        delta: delta.map(|(mode, base, width, _)| (mode, base, width)),
    }
}

// ---- column encode ---------------------------------------------------------

fn encode_column(buf: &mut BytesMut, a: &Array) -> ColumnCodec {
    let plan = plan_column(a);
    buf.put_u8(plan.codec as u8);
    match plan.codec {
        ColumnCodec::Raw => encode_array(buf, a),
        ColumnCodec::Dict => {
            let (values, codes) = plan.dict.expect("dict plan carries its dictionary");
            buf.put_u8(type_tag(a.data_type()));
            buf.put_slice(a.validity().as_bytes());
            put_uvarint(buf, values.len() as u64);
            for v in &values {
                encode_value(buf, v);
            }
            let width = bits_for(values.len() as u64 - 1);
            buf.put_u8(width);
            pack_bits(buf, codes.iter().map(|&c| u64::from(c)), width);
        }
        ColumnCodec::Rle => {
            buf.put_u8(type_tag(a.data_type()));
            put_uvarint(buf, plan.runs.len() as u64);
            for &(len, start) in &plan.runs {
                put_uvarint(buf, len);
                encode_value(buf, &a.value_at(start));
            }
        }
        ColumnCodec::Delta => {
            let (mode, base, width) = plan.delta.expect("delta plan carries its parameters");
            let (vals, m) = int_slots(a).expect("delta only plans integer columns");
            buf.put_u8(type_tag(a.data_type()));
            buf.put_slice(m.as_bytes());
            buf.put_u8(mode);
            put_ivarint(buf, base);
            buf.put_u8(width);
            let mut prev = base;
            pack_bits(
                buf,
                vals.iter().enumerate().map(|(i, &v)| {
                    if !m.get(i) {
                        0
                    } else if mode == 0 {
                        v.wrapping_sub(base) as u64
                    } else {
                        let d = v.wrapping_sub(prev);
                        prev = v;
                        zigzag(d)
                    }
                }),
                width,
            );
        }
        ColumnCodec::NullSup => {
            buf.put_u8(type_tag(a.data_type()));
            buf.put_slice(a.validity().as_bytes());
            match a {
                Array::Boolean(v, m) => {
                    for (i, &b) in v.iter().enumerate() {
                        if m.get(i) {
                            buf.put_u8(u8::from(b));
                        }
                    }
                }
                Array::Float64(v, m) => {
                    for (i, &x) in v.iter().enumerate() {
                        if m.get(i) {
                            buf.put_f64_le(x);
                        }
                    }
                }
                Array::Utf8(v, m) => {
                    for (i, s) in v.iter().enumerate() {
                        if m.get(i) {
                            put_str(buf, s);
                        }
                    }
                }
                Array::Int32(v, m) | Array::Date(v, m) => {
                    for (i, &x) in v.iter().enumerate() {
                        if m.get(i) {
                            put_ivarint(buf, i64::from(x));
                        }
                    }
                }
                Array::Int64(v, m) | Array::Timestamp(v, m) => {
                    for (i, &x) in v.iter().enumerate() {
                        if m.get(i) {
                            put_ivarint(buf, x);
                        }
                    }
                }
            }
        }
    }
    plan.codec
}

// ---- column decode ---------------------------------------------------------

fn read_type(buf: &mut Bytes) -> Result<DataType> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    let dt = tag_type(buf.get_u8())?;
    if dt == DataType::Null {
        return Err(GisError::Network("null-typed column on wire".into()));
    }
    Ok(dt)
}

fn read_bitmap(buf: &mut Bytes, rows: usize) -> Result<Bitmap> {
    let bytes = rows.div_ceil(8);
    if buf.remaining() < bytes {
        return Err(truncated());
    }
    Ok(Bitmap::from_bytes(buf.copy_to_bytes(bytes).to_vec(), rows))
}

fn read_packed(buf: &mut Bytes, rows: usize, width: u8) -> Result<BitReader> {
    let bytes = packed_len(rows, width);
    if buf.remaining() < bytes {
        return Err(truncated());
    }
    Ok(BitReader::new(buf.copy_to_bytes(bytes)))
}

fn narrow32(v: i64) -> Result<i32> {
    i32::try_from(v).map_err(|_| GisError::Network("32-bit column value overflows".into()))
}

fn int_array(dt: DataType, vals: Vec<i64>, validity: Bitmap) -> Result<Array> {
    let narrow = |vals: &[i64], m: &Bitmap| -> Result<Vec<i32>> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| if m.get(i) { narrow32(v) } else { Ok(0) })
            .collect()
    };
    Ok(match dt {
        DataType::Int32 => Array::Int32(narrow(&vals, &validity)?, validity),
        DataType::Date => Array::Date(narrow(&vals, &validity)?, validity),
        DataType::Timestamp => Array::Timestamp(vals, validity),
        DataType::Int64 => Array::Int64(vals, validity),
        _ => {
            return Err(GisError::Network(
                "integer codec on non-integer type".into(),
            ))
        }
    })
}

fn is_integer(dt: DataType) -> bool {
    matches!(
        dt,
        DataType::Int32 | DataType::Int64 | DataType::Date | DataType::Timestamp
    )
}

fn decode_column(buf: &mut Bytes, rows: usize) -> Result<Array> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    let codec = ColumnCodec::from_tag(buf.get_u8())?;
    match codec {
        ColumnCodec::Raw => {
            let a = decode_array(buf)?;
            if a.len() != rows {
                return Err(GisError::Network(format!(
                    "column length {} does not match row count {rows}",
                    a.len()
                )));
            }
            Ok(a)
        }
        ColumnCodec::Dict => {
            let dt = read_type(buf)?;
            let validity = read_bitmap(buf, rows)?;
            // Each dictionary entry costs at least its one-byte tag.
            let d = get_count(buf, 1)?;
            if d > DICT_MAX {
                return Err(GisError::Network(format!(
                    "dictionary of {d} entries exceeds cap {DICT_MAX}"
                )));
            }
            if d == 0 && validity.count_set() > 0 {
                return Err(GisError::Network(
                    "empty dictionary with valid slots".into(),
                ));
            }
            let mut values = Vec::with_capacity(d);
            for _ in 0..d {
                let v = decode_value(buf)?;
                if v.is_null() {
                    return Err(GisError::Network("null dictionary entry".into()));
                }
                if v.data_type() != dt {
                    return Err(GisError::Network("dictionary entry type mismatch".into()));
                }
                values.push(v);
            }
            if !buf.has_remaining() {
                return Err(truncated());
            }
            let width = buf.get_u8();
            if width > 16 {
                return Err(GisError::Network(format!(
                    "absurd dictionary code width {width}"
                )));
            }
            let mut codes = read_packed(buf, rows, width)?;
            let mut b = ArrayBuilder::with_capacity(dt, rows);
            for i in 0..rows {
                let code = codes.read(width) as usize;
                if validity.get(i) {
                    let v = values.get(code).ok_or_else(|| {
                        GisError::Network(format!("dictionary code {code} out of range ({d})"))
                    })?;
                    b.push_value(v)
                        .map_err(|e| GisError::Network(format!("malformed dictionary: {e}")))?;
                } else {
                    b.push_null();
                }
            }
            Ok(b.finish())
        }
        ColumnCodec::Rle => {
            let dt = read_type(buf)?;
            // Each run costs at least two bytes: length + value tag.
            let n_runs = get_count(buf, 2)?;
            let mut b = ArrayBuilder::new(dt);
            for _ in 0..n_runs {
                let run = usize::try_from(get_uvarint(buf)?).map_err(|_| truncated())?;
                if run == 0 {
                    return Err(GisError::Network("zero-length run on wire".into()));
                }
                if run > rows - b.len() {
                    return Err(GisError::Network(format!(
                        "run of {run} overruns {rows}-row column"
                    )));
                }
                let v = decode_value(buf)?;
                if !v.is_null() && v.data_type() != dt {
                    return Err(GisError::Network("run value type mismatch".into()));
                }
                for _ in 0..run {
                    b.push_value(&v)
                        .map_err(|e| GisError::Network(format!("malformed run: {e}")))?;
                }
            }
            if b.len() != rows {
                return Err(GisError::Network(format!(
                    "runs cover {} of {rows} rows",
                    b.len()
                )));
            }
            Ok(b.finish())
        }
        ColumnCodec::Delta => {
            let dt = read_type(buf)?;
            if !is_integer(dt) {
                return Err(GisError::Network("delta codec on non-integer type".into()));
            }
            let validity = read_bitmap(buf, rows)?;
            if buf.remaining() < 2 {
                return Err(truncated());
            }
            let mode = buf.get_u8();
            if mode > 1 {
                return Err(GisError::Network(format!("unknown delta mode {mode}")));
            }
            let base = get_ivarint(buf)?;
            if !buf.has_remaining() {
                return Err(truncated());
            }
            let width = buf.get_u8();
            if width > 64 {
                return Err(GisError::Network(format!("absurd bit width {width}")));
            }
            let mut packed = read_packed(buf, rows, width)?;
            let mut vals = Vec::with_capacity(rows);
            let mut prev = base;
            for i in 0..rows {
                let u = packed.read(width);
                if !validity.get(i) {
                    vals.push(0);
                } else if mode == 0 {
                    vals.push(base.wrapping_add(u as i64));
                } else {
                    prev = prev.wrapping_add(unzigzag(u));
                    vals.push(prev);
                }
            }
            int_array(dt, vals, validity)
        }
        ColumnCodec::NullSup => {
            let dt = read_type(buf)?;
            let validity = read_bitmap(buf, rows)?;
            macro_rules! sparse {
                ($variant:ident, $default:expr, $read:expr) => {{
                    let mut v = Vec::with_capacity(rows);
                    for i in 0..rows {
                        if validity.get(i) {
                            v.push($read(buf)?);
                        } else {
                            v.push($default);
                        }
                    }
                    Array::$variant(v, validity)
                }};
            }
            Ok(match dt {
                DataType::Boolean => sparse!(Boolean, false, |b: &mut Bytes| {
                    if !b.has_remaining() {
                        return Err(truncated());
                    }
                    Ok::<bool, GisError>(b.get_u8() != 0)
                }),
                DataType::Float64 => sparse!(Float64, 0.0, |b: &mut Bytes| {
                    if b.remaining() < 8 {
                        return Err(truncated());
                    }
                    Ok::<f64, GisError>(b.get_f64_le())
                }),
                DataType::Utf8 => sparse!(Utf8, String::new(), get_str),
                DataType::Int64 => sparse!(Int64, 0, get_ivarint),
                DataType::Timestamp => sparse!(Timestamp, 0, get_ivarint),
                DataType::Int32 => sparse!(Int32, 0, |b: &mut Bytes| narrow32(get_ivarint(b)?)),
                DataType::Date => sparse!(Date, 0, |b: &mut Bytes| narrow32(get_ivarint(b)?)),
                DataType::Null => unreachable!("read_type rejects the null type"),
            })
        }
    }
}

// ---- frames ----------------------------------------------------------------

/// Encodes `batch` as a compressed (version-1) frame into `buf`,
/// returning raw/wire sizes and per-column codec counts. Batches over
/// [`MAX_FRAME_ROWS`] take the legacy layout so every frame this
/// function emits is decodable by [`decode_frame`].
pub fn encode_frame_into(buf: &mut BytesMut, batch: &Batch) -> FrameStats {
    if batch.num_rows() > MAX_FRAME_ROWS {
        return encode_legacy_into(buf, batch);
    }
    let start = buf.len();
    let mut stats = FrameStats {
        raw: raw_frame_size(batch),
        ..FrameStats::default()
    };
    buf.put_u8(FRAME_MAGIC);
    buf.put_u8(FRAME_VERSION);
    encode_schema(buf, batch.schema());
    put_uvarint(buf, batch.num_rows() as u64);
    for col in batch.columns() {
        let codec = encode_column(buf, col);
        stats.codecs[codec as usize] += 1;
    }
    stats.wire = buf.len() - start;
    stats
}

/// Encodes a compressed frame, returning the frame and its stats.
pub fn encode_frame(batch: &Batch) -> (Bytes, FrameStats) {
    let mut buf = BytesMut::new();
    let stats = encode_frame_into(&mut buf, batch);
    (buf.freeze(), stats)
}

/// Encodes with the legacy raw layout but reports [`FrameStats`] so
/// call sites meter both modes uniformly (`raw == wire`, no codecs).
pub fn encode_legacy_into(buf: &mut BytesMut, batch: &Batch) -> FrameStats {
    let start = buf.len();
    encode_schema(buf, batch.schema());
    put_uvarint(buf, batch.num_rows() as u64);
    for col in batch.columns() {
        encode_array(buf, col);
    }
    let wire = buf.len() - start;
    FrameStats {
        raw: wire,
        wire,
        codecs: [0; CODEC_COUNT],
    }
}

/// True when `frame` starts with the compressed-frame header.
pub fn is_compressed_frame(frame: &[u8]) -> bool {
    frame.len() >= 2 && frame[0] == FRAME_MAGIC && frame[1] == FRAME_VERSION
}

/// Decodes either a compressed (version-1) or a legacy raw frame —
/// the version-negotiation point: frames from peers that never
/// learned the codecs take the legacy path untouched.
pub fn decode_frame(buf: Bytes) -> Result<Batch> {
    if !is_compressed_frame(&buf) {
        return crate::wire::decode_batch(buf);
    }
    let mut buf = buf;
    buf.advance(2);
    let schema = decode_schema(&mut buf)?;
    let rows = usize::try_from(get_uvarint(&mut buf)?).map_err(|_| truncated())?;
    if rows > MAX_FRAME_ROWS {
        return Err(GisError::Network(format!(
            "frame claims {rows} rows (cap {MAX_FRAME_ROWS})"
        )));
    }
    let mut columns = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        columns.push(decode_column(&mut buf, rows)?);
    }
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes after frame".into()));
    }
    Batch::try_new(Arc::new(schema), columns)
        .map_err(|e| GisError::Network(format!("malformed batch on wire: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_batch;
    use gis_types::{Field, Schema};
    use proptest::prelude::*;
    use proptest::strategy::{boxed, BoxedStrategy, Union};

    fn batch_of(fields: Vec<Field>, rows: &[Vec<Value>]) -> Batch {
        Batch::from_rows(Schema::new(fields).into_ref(), rows).unwrap()
    }

    /// Bitwise batch equality: like `PartialEq` but NaN == NaN when
    /// the payload bits match, and -0.0 != 0.0.
    fn assert_bits_eq(a: &Batch, b: &Batch) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for (ca, cb) in a.columns().iter().zip(b.columns().iter()) {
            assert_eq!(ca.data_type(), cb.data_type());
            assert_eq!(ca.validity(), cb.validity());
            match (ca, cb) {
                (Array::Float64(va, m), Array::Float64(vb, _)) => {
                    for i in 0..va.len() {
                        if m.get(i) {
                            assert_eq!(va[i].to_bits(), vb[i].to_bits(), "slot {i}");
                        }
                    }
                }
                _ => assert_eq!(ca, cb),
            }
        }
    }

    fn roundtrip(b: &Batch) -> FrameStats {
        let (frame, stats) = encode_frame(b);
        assert_eq!(stats.wire, frame.len());
        let back = decode_frame(frame).unwrap();
        assert_bits_eq(&back, b);
        stats
    }

    fn int_col(vals: &[Option<i64>]) -> Vec<Vec<Value>> {
        vals.iter()
            .map(|v| vec![v.map_or(Value::Null, Value::Int64)])
            .collect()
    }

    #[test]
    fn each_codec_is_reachable_and_roundtrips() {
        // Dictionary: few distinct strings, no helpful runs.
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| vec![Value::Utf8(format!("region-{}", [0, 2, 1, 3][i % 4]))])
            .collect();
        let stats = roundtrip(&batch_of(vec![Field::new("r", DataType::Utf8)], &rows));
        assert_eq!(stats.codecs[ColumnCodec::Dict as usize], 1, "{stats:?}");

        // RLE: one long constant run.
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|_| vec![Value::Utf8("constant-padding-string".into())])
            .collect();
        let stats = roundtrip(&batch_of(vec![Field::new("c", DataType::Utf8)], &rows));
        assert_eq!(stats.codecs[ColumnCodec::Rle as usize], 1, "{stats:?}");

        // Delta: a sorted walk with small steps but a huge base
        // (varints and dictionaries both lose).
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| vec![Value::Int64(1_700_000_000_000_000 + 37 * i as i64)])
            .collect();
        let stats = roundtrip(&batch_of(vec![Field::new("ts", DataType::Int64)], &rows));
        assert_eq!(stats.codecs[ColumnCodec::Delta as usize], 1, "{stats:?}");

        // NullSup: mostly-null floats.
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                vec![if i % 29 == 0 {
                    Value::Float64(i as f64 * 1.7)
                } else {
                    Value::Null
                }]
            })
            .collect();
        let stats = roundtrip(&batch_of(vec![Field::new("f", DataType::Float64)], &rows));
        assert_eq!(stats.codecs[ColumnCodec::NullSup as usize], 1, "{stats:?}");

        // Raw: high-entropy wide integers — 10-byte varints lose to
        // the flat 8-byte layout and nothing repeats.
        let rows = int_col(
            &(0..300)
                .map(|i| Some((i as i64).wrapping_mul(-0x61c8_8646_80b5_83eb)))
                .collect::<Vec<_>>(),
        );
        let stats = roundtrip(&batch_of(vec![Field::new("h", DataType::Int64)], &rows));
        assert_eq!(stats.codecs[ColumnCodec::Raw as usize], 1, "{stats:?}");
    }

    #[test]
    fn compression_beats_raw_on_repetitive_batches() {
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| {
                vec![
                    Value::Int64(i as i64),
                    Value::Utf8(format!("status-{}", i % 3)),
                    Value::Float64(9.99),
                ]
            })
            .collect();
        let b = batch_of(
            vec![
                Field::new("id", DataType::Int64),
                Field::new("status", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ],
            &rows,
        );
        let stats = roundtrip(&b);
        assert_eq!(stats.raw, raw_frame_size(&b));
        assert_eq!(stats.raw, encode_batch(&b).len(), "raw formula is exact");
        assert!(
            stats.wire * 3 < stats.raw,
            "expected 3x on this batch: {stats:?}"
        );
    }

    #[test]
    fn edge_batches_roundtrip() {
        // Empty batch.
        let b = Batch::empty(Schema::new(vec![Field::new("x", DataType::Int32)]).into_ref());
        roundtrip(&b);
        // All-null columns of every type.
        for dt in [
            DataType::Boolean,
            DataType::Int32,
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Date,
            DataType::Timestamp,
        ] {
            let rows: Vec<Vec<Value>> = (0..50).map(|_| vec![Value::Null]).collect();
            roundtrip(&batch_of(vec![Field::new("n", dt)], &rows));
        }
        // Single-value dictionary candidates (constant columns pick
        // RLE over dict, but both must agree on the answer).
        let rows: Vec<Vec<Value>> = (0..10).map(|_| vec![Value::Int32(7)]).collect();
        roundtrip(&batch_of(vec![Field::new("k", DataType::Int32)], &rows));
        // NaN and signed-zero floats survive bitwise.
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Float64(f64::NAN)],
            vec![Value::Float64(-0.0)],
            vec![Value::Float64(0.0)],
            vec![Value::Float64(f64::NAN)],
            vec![Value::Null],
            vec![Value::Float64(f64::INFINITY)],
        ];
        roundtrip(&batch_of(vec![Field::new("f", DataType::Float64)], &rows));
        // Extreme integers through delta's wrapping arithmetic.
        roundtrip(&batch_of(
            vec![Field::new("i", DataType::Int64)],
            &int_col(&[Some(i64::MIN), Some(i64::MAX), None, Some(0), Some(-1)]),
        ));
    }

    #[test]
    fn legacy_frames_still_decode() {
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("n{i}"))])
            .collect();
        let b = batch_of(
            vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ],
            &rows,
        );
        // A legacy frame can never look compressed...
        let legacy = encode_batch(&b);
        assert!(!is_compressed_frame(&legacy));
        assert_ne!(legacy[0], FRAME_MAGIC);
        // ...and decode_frame negotiates both versions.
        assert_eq!(decode_frame(legacy).unwrap(), b);
        let (compressed, _) = encode_frame(&b);
        assert!(is_compressed_frame(&compressed));
        assert_eq!(decode_frame(compressed).unwrap(), b);
    }

    // ---- hostile frames ----------------------------------------------------

    /// A compressed frame header for one `rows`-row column of `dt`.
    fn frame_header(dt: DataType, rows: u64) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_u8(FRAME_MAGIC);
        buf.put_u8(FRAME_VERSION);
        encode_schema(&mut buf, &Schema::new(vec![Field::new("x", dt)]));
        put_uvarint(&mut buf, rows);
        buf
    }

    #[test]
    fn truncated_compressed_frames_error_not_panic() {
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Utf8(format!("cat-{}", i % 3)),
                    Value::Int64(1000 + i),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(0.25)
                    },
                ]
            })
            .collect();
        let b = batch_of(
            vec![
                Field::new("cat", DataType::Utf8),
                Field::new("seq", DataType::Int64),
                Field::new("w", DataType::Float64),
            ],
            &rows,
        );
        let (frame, stats) = encode_frame(&b);
        // The batch exercises several codecs at once.
        assert!(stats.codecs[ColumnCodec::Dict as usize] >= 1, "{stats:?}");
        for cut in 0..frame.len() {
            assert!(decode_frame(frame.slice(0..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_dictionary_frames_rejected() {
        // Out-of-range code: dictionary of 1 entry, codes claim 3.
        let mut buf = frame_header(DataType::Int64, 4);
        buf.put_u8(ColumnCodec::Dict as u8);
        buf.put_u8(type_tag(DataType::Int64));
        buf.put_u8(0x0F); // all 4 slots valid
        put_uvarint(&mut buf, 1); // one entry
        encode_value(&mut buf, &Value::Int64(42));
        buf.put_u8(2); // two-bit codes
        buf.put_u8(0b11_10_01_00); // codes 0,1,2,3 — 1..3 out of range
        let err = decode_frame(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // Absurd code width.
        let mut buf = frame_header(DataType::Int64, 4);
        buf.put_u8(ColumnCodec::Dict as u8);
        buf.put_u8(type_tag(DataType::Int64));
        buf.put_u8(0x0F);
        put_uvarint(&mut buf, 1);
        encode_value(&mut buf, &Value::Int64(42));
        buf.put_u8(63);
        buf.put_slice(&[0u8; 32]);
        assert!(decode_frame(buf.freeze()).is_err());

        // Dictionary bigger than the byte budget (truncated dict).
        let mut buf = frame_header(DataType::Utf8, 8);
        buf.put_u8(ColumnCodec::Dict as u8);
        buf.put_u8(type_tag(DataType::Utf8));
        buf.put_u8(0xFF);
        put_uvarint(&mut buf, 200); // claims 200 entries, has none
        assert!(decode_frame(buf.freeze()).is_err());

        // Dictionary count over the protocol cap.
        let mut buf = frame_header(DataType::Int64, 2);
        buf.put_u8(ColumnCodec::Dict as u8);
        buf.put_u8(type_tag(DataType::Int64));
        buf.put_u8(0x03);
        put_uvarint(&mut buf, 100_000);
        buf.put_slice(&vec![0u8; 200_000]);
        let err = decode_frame(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("exceeds cap"), "{err}");

        // Null dictionary entry.
        let mut buf = frame_header(DataType::Int64, 1);
        buf.put_u8(ColumnCodec::Dict as u8);
        buf.put_u8(type_tag(DataType::Int64));
        buf.put_u8(0x01);
        put_uvarint(&mut buf, 1);
        encode_value(&mut buf, &Value::Null);
        buf.put_u8(0);
        assert!(decode_frame(buf.freeze()).is_err());
    }

    #[test]
    fn hostile_run_lengths_rejected() {
        // A run claiming u64::MAX rows must error before allocating.
        let mut buf = frame_header(DataType::Int64, 10);
        buf.put_u8(ColumnCodec::Rle as u8);
        buf.put_u8(type_tag(DataType::Int64));
        put_uvarint(&mut buf, 1); // one run
        put_uvarint(&mut buf, u64::MAX); // of absurd length
        encode_value(&mut buf, &Value::Int64(1));
        let err = decode_frame(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("overruns"), "{err}");

        // Runs that cover too few rows.
        let mut buf = frame_header(DataType::Int64, 10);
        buf.put_u8(ColumnCodec::Rle as u8);
        buf.put_u8(type_tag(DataType::Int64));
        put_uvarint(&mut buf, 1);
        put_uvarint(&mut buf, 3);
        encode_value(&mut buf, &Value::Int64(1));
        assert!(decode_frame(buf.freeze()).is_err());

        // A zero-length run.
        let mut buf = frame_header(DataType::Int64, 2);
        buf.put_u8(ColumnCodec::Rle as u8);
        buf.put_u8(type_tag(DataType::Int64));
        put_uvarint(&mut buf, 2);
        put_uvarint(&mut buf, 0);
        encode_value(&mut buf, &Value::Int64(1));
        put_uvarint(&mut buf, 2);
        encode_value(&mut buf, &Value::Int64(1));
        assert!(decode_frame(buf.freeze()).is_err());

        // A run count that cannot fit the remaining bytes.
        let mut buf = frame_header(DataType::Int64, 10);
        buf.put_u8(ColumnCodec::Rle as u8);
        buf.put_u8(type_tag(DataType::Int64));
        put_uvarint(&mut buf, u64::MAX / 2);
        assert!(decode_frame(buf.freeze()).is_err());
    }

    #[test]
    fn hostile_misc_frames_rejected() {
        // Unknown codec tag.
        let mut buf = frame_header(DataType::Int64, 1);
        buf.put_u8(99);
        assert!(decode_frame(buf.freeze()).is_err());

        // Row count over the protocol cap.
        let buf = frame_header(DataType::Int64, (MAX_FRAME_ROWS as u64) + 1);
        let err = decode_frame(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");

        // Delta on a string column.
        let mut buf = frame_header(DataType::Utf8, 1);
        buf.put_u8(ColumnCodec::Delta as u8);
        buf.put_u8(type_tag(DataType::Utf8));
        buf.put_u8(0x01);
        buf.put_u8(0);
        put_ivarint(&mut buf, 0);
        buf.put_u8(0);
        assert!(decode_frame(buf.freeze()).is_err());

        // Delta with an absurd bit width.
        let mut buf = frame_header(DataType::Int64, 4);
        buf.put_u8(ColumnCodec::Delta as u8);
        buf.put_u8(type_tag(DataType::Int64));
        buf.put_u8(0x0F);
        buf.put_u8(0);
        put_ivarint(&mut buf, 0);
        buf.put_u8(200);
        assert!(decode_frame(buf.freeze()).is_err());

        // A 32-bit column whose varint payload overflows i32.
        let mut buf = frame_header(DataType::Int32, 1);
        buf.put_u8(ColumnCodec::NullSup as u8);
        buf.put_u8(type_tag(DataType::Int32));
        buf.put_u8(0x01);
        put_ivarint(&mut buf, i64::MAX / 2);
        assert!(decode_frame(buf.freeze()).is_err());

        // Trailing bytes after a valid frame.
        let rows: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::Int64(i)]).collect();
        let (frame, _) = encode_frame(&batch_of(vec![Field::new("x", DataType::Int64)], &rows));
        let mut buf = BytesMut::from(&frame[..]);
        buf.put_u8(0xAB);
        assert!(decode_frame(buf.freeze()).is_err());
    }

    // ---- proptests ---------------------------------------------------------

    fn slot_strategy(dt: DataType) -> BoxedStrategy<Value> {
        match dt {
            DataType::Boolean => boxed(any::<bool>().prop_map(Value::Boolean)),
            DataType::Int32 => boxed(prop_oneof![any::<i32>(), -10i32..10].prop_map(Value::Int32)),
            DataType::Int64 => boxed(
                prop_oneof![any::<i64>(), -10i64..10, Just(i64::MIN), Just(i64::MAX)]
                    .prop_map(Value::Int64),
            ),
            DataType::Float64 => boxed(
                prop_oneof![
                    any::<f64>(),
                    Just(f64::NAN),
                    Just(-0.0),
                    Just(0.0),
                    Just(f64::NEG_INFINITY),
                ]
                .prop_map(Value::Float64),
            ),
            DataType::Utf8 => boxed(
                prop_oneof![".{0,8}", Just(String::new()), Just(String::from("aa"))]
                    .prop_map(Value::Utf8),
            ),
            DataType::Date => boxed(any::<i32>().prop_map(Value::Date)),
            _ => boxed(any::<i64>().prop_map(Value::Timestamp)),
        }
    }

    fn col_strategy(dt: DataType) -> impl Strategy<Value = Vec<Value>> {
        // ~3:1 slot:NULL bias (the shim's oneof is uniform, so the
        // slot arm is repeated) — enough NULLs that nullsup and
        // all-null columns both fire across cases.
        let biased = Union::new(vec![
            slot_strategy(dt),
            slot_strategy(dt),
            slot_strategy(dt),
            boxed(Just(Value::Null)),
        ]);
        proptest::collection::vec(biased, 0..120)
    }

    fn any_dt() -> impl Strategy<Value = DataType> {
        prop_oneof![
            Just(DataType::Boolean),
            Just(DataType::Int32),
            Just(DataType::Int64),
            Just(DataType::Float64),
            Just(DataType::Utf8),
            Just(DataType::Date),
            Just(DataType::Timestamp),
        ]
    }

    proptest! {
        /// Every codec round-trips bit-identically: the selection
        /// rule is free to pick any layout and the answer must not
        /// change. The strategy biases toward repeats and NULLs so
        /// dict/rle/nullsup all fire across cases.
        #[test]
        fn prop_frame_roundtrip(
            dt_col in any_dt().prop_flat_map(|dt| (Just(dt), col_strategy(dt)))
        ) {
            let (dt, col) = dt_col;
            let rows: Vec<Vec<Value>> = col.iter().map(|v| vec![v.clone()]).collect();
            let b = Batch::from_rows(
                Schema::new(vec![Field::new("c", dt)]).into_ref(),
                &rows,
            ).unwrap();
            let (frame, stats) = encode_frame(&b);
            prop_assert_eq!(stats.wire, frame.len());
            let back = decode_frame(frame).unwrap();
            prop_assert_eq!(back.schema(), b.schema());
            for (ca, cb) in back.columns().iter().zip(b.columns().iter()) {
                prop_assert_eq!(
                    format!("{ca:?}"),
                    format!("{cb:?}"),
                    "stats {:?}", stats
                );
            }
        }

        /// Arbitrary bytes never panic the frame decoder.
        #[test]
        fn prop_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = decode_frame(Bytes::from(bytes.clone()));
            // Also with a valid header stapled on.
            let mut framed = vec![FRAME_MAGIC, FRAME_VERSION];
            framed.extend_from_slice(&bytes);
            let _ = decode_frame(Bytes::from(framed));
        }
    }
}
