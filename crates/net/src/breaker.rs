//! Per-link circuit breakers.
//!
//! Retries protect a query from *transient* loss; they are exactly
//! wrong against a dead source, where every later query burns its
//! full retry schedule against a link that is known-broken. The
//! breaker turns repeated failure into fast failure: after N
//! consecutive failures the link opens and refuses messages without
//! paying any wire latency, then lets a single probe through after a
//! virtual-time cooldown (half-open). A probe success closes the
//! breaker; a probe failure re-opens it for another cooldown.
//!
//! Time is the shared [`crate::SimClock`]'s virtual time, so breaker
//! behaviour is as deterministic as everything else on the simulated
//! WAN.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Breaker position. Ordered by "how broken": `Closed` < `HalfOpen` <
/// `Open`, which is also the gauge encoding (0/1/2) in the Prometheus
/// exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Normal operation; messages flow.
    Closed,
    /// Cooldown elapsed; the next request is a probe.
    HalfOpen,
    /// Failing fast; no messages reach the wire.
    Open,
}

impl BreakerState {
    /// Gauge encoding for metrics: closed=0, half-open=1, open=2.
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }

    /// Lower-case label for expositions and span annotations.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Open => "open",
        }
    }
}

/// Tuning knobs for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker. `0` disables the
    /// breaker entirely (it never opens).
    pub failure_threshold: u32,
    /// Virtual microseconds the breaker stays open before allowing a
    /// half-open probe.
    pub cooldown_us: u64,
}

impl Default for BreakerConfig {
    /// Open after 5 consecutive failures — above the default retry
    /// policy's 3 attempts, so a single retry-exhausted request never
    /// trips the breaker on its own — with a 250 ms virtual cooldown.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_us: 250_000,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never opens.
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            ..BreakerConfig::default()
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_us: u64,
}

/// A per-link circuit breaker over virtual time.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    opens: AtomicU64,
    fast_failures: AtomicU64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                config,
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_us: 0,
            }),
            opens: AtomicU64::new(0),
            fast_failures: AtomicU64::new(0),
        }
    }

    /// Replaces the configuration (state and counters are kept).
    pub fn set_config(&self, config: BreakerConfig) {
        self.inner.lock().config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> BreakerConfig {
        self.inner.lock().config
    }

    /// The current state, given the clock reading `now_us` (an open
    /// breaker whose cooldown elapsed reports — and becomes —
    /// half-open).
    pub fn state(&self, now_us: u64) -> BreakerState {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open
            && now_us.saturating_sub(inner.opened_at_us) >= inner.config.cooldown_us
        {
            inner.state = BreakerState::HalfOpen;
        }
        inner.state
    }

    /// Rules on one message at virtual time `now_us`: `Ok(())` lets it
    /// reach the wire; `Err(remaining_us)` fails it fast with the
    /// cooldown time left. Open→half-open promotion happens here when
    /// the cooldown has elapsed, making the message the probe.
    pub fn admit(&self, now_us: u64) -> Result<(), u64> {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let elapsed = now_us.saturating_sub(inner.opened_at_us);
                if elapsed >= inner.config.cooldown_us {
                    inner.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    drop(inner);
                    self.fast_failures.fetch_add(1, Ordering::Relaxed);
                    Err(self.inner.lock().config.cooldown_us - elapsed)
                }
            }
        }
    }

    /// Records a delivered message: closes the breaker and clears the
    /// failure streak.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.state = BreakerState::Closed;
    }

    /// Records a failed message at virtual time `now_us`. A half-open
    /// probe failure re-opens immediately; a closed breaker opens once
    /// the streak reaches the threshold.
    pub fn on_failure(&self, now_us: u64) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let threshold = inner.config.failure_threshold;
        if threshold == 0 {
            return;
        }
        let should_open = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= threshold,
            BreakerState::Open => false,
        };
        if should_open {
            inner.state = BreakerState::Open;
            inner.opened_at_us = now_us;
            drop(inner);
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Times the breaker transitioned closed/half-open → open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Messages failed fast while open (no wire latency paid).
    pub fn fast_failures(&self) -> u64 {
        self.fast_failures.load(Ordering::Relaxed)
    }

    /// Force-closes the breaker and zeroes counters (between trials).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at_us = 0;
        drop(inner);
        self.opens.store(0, Ordering::Relaxed);
        self.fast_failures.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_us: cooldown,
        })
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = breaker(3, 1_000);
        b.on_failure(0);
        b.on_failure(0);
        b.on_success(); // streak broken
        b.on_failure(0);
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn open_fails_fast_then_probes_after_cooldown() {
        let b = breaker(1, 1_000);
        b.on_failure(100);
        assert_eq!(b.admit(200), Err(900));
        assert_eq!(b.admit(1_099), Err(1));
        assert_eq!(b.fast_failures(), 2);
        // Cooldown elapsed: the next message is the probe.
        assert_eq!(b.admit(1_100), Ok(()));
        assert_eq!(b.state(1_100), BreakerState::HalfOpen);
        // Probe failure re-opens for a fresh cooldown.
        b.on_failure(1_100);
        assert_eq!(b.opens(), 2);
        assert!(b.admit(1_500).is_err());
        // Probe success closes.
        assert_eq!(b.admit(2_200), Ok(()));
        b.on_success();
        assert_eq!(b.state(2_200), BreakerState::Closed);
        assert_eq!(b.admit(2_200), Ok(()));
    }

    #[test]
    fn zero_threshold_disables() {
        let b = breaker(0, 1_000);
        for _ in 0..100 {
            b.on_failure(0);
        }
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn reset_closes_and_zeroes() {
        let b = breaker(1, 1_000);
        b.on_failure(0);
        let _ = b.admit(1);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.fast_failures(), 1);
        b.reset();
        assert_eq!(b.state(1), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
        assert_eq!(b.fast_failures(), 0);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1);
        assert_eq!(BreakerState::Open.as_gauge(), 2);
        assert_eq!(BreakerState::Open.label(), "open");
    }
}
