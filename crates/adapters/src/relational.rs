//! The relational adapter: wraps a set of [`RowStore`] tables.
//!
//! Models a full SQL component system (the DB2/Oracle of the
//! federation): filters, projections, sorts, limits, grouped
//! aggregates and parameterized lookups all run at the source, using
//! the row store's own access-path selection.

use crate::local_exec::{hash_aggregate, limit_batch, sort_batch};
use crate::request::{SourceAdapter, SourceRequest};
use gis_catalog::CapabilityProfile;
use gis_storage::{CmpOp, RowStore, ScanPredicate, TableStats};
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A full-SQL component system backed by row stores.
pub struct RelationalAdapter {
    name: String,
    tables: RwLock<BTreeMap<String, RowStore>>,
    data_version: std::sync::atomic::AtomicU64,
}

impl RelationalAdapter {
    /// An empty source named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        RelationalAdapter {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            data_version: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&self, store: RowStore) {
        let key = store.name().to_ascii_lowercase();
        self.tables.write().insert(key, store);
        self.bump_data_version();
    }

    /// Runs `f` with mutable access to a table (loading, index DDL).
    pub fn with_table_mut<T>(
        &self,
        table: &str,
        f: impl FnOnce(&mut RowStore) -> Result<T>,
    ) -> Result<T> {
        let mut tables = self.tables.write();
        let store = tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| self.no_table(table))?;
        let out = f(store);
        drop(tables);
        // Mutable access is assumed to have mutated: loads and index
        // DDL both change what a cached result would return.
        self.bump_data_version();
        out
    }

    /// Inserts rows into a table.
    pub fn load(&self, table: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        self.with_table_mut(table, |t| t.insert_many(rows))
    }

    fn bump_data_version(&self) {
        self.data_version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn no_table(&self, table: &str) -> GisError {
        GisError::Storage(format!("source '{}' has no table '{table}'", self.name))
    }
}

impl SourceAdapter for RelationalAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn data_version(&self) -> u64 {
        self.data_version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn kind(&self) -> &'static str {
        "relational"
    }

    fn capabilities(&self) -> CapabilityProfile {
        CapabilityProfile::full_sql()
    }

    fn tables(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(|t| t.schema().clone())
            .ok_or_else(|| self.no_table(table))
    }

    fn collect_stats(&self, table: &str) -> Result<TableStats> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(RowStore::collect_stats)
            .ok_or_else(|| self.no_table(table))
    }

    fn execute(&self, request: &SourceRequest) -> Result<Vec<Batch>> {
        request.check_capabilities(&self.capabilities())?;
        let tables = self.tables.read();
        // Co-located join: both tables live here; join locally and
        // ship only the result.
        if let SourceRequest::Join {
            left_table,
            right_table,
            left_keys,
            right_keys,
            left_predicates,
            right_predicates,
            left_projection,
            right_projection,
        } = request
        {
            let left_store = tables
                .get(&left_table.to_ascii_lowercase())
                .ok_or_else(|| self.no_table(left_table))?;
            let right_store = tables
                .get(&right_table.to_ascii_lowercase())
                .ok_or_else(|| self.no_table(right_table))?;
            let left = left_store.scan(left_predicates, &[], None)?.batch;
            let right = right_store.scan(right_predicates, &[], None)?.batch;
            let joined = crate::local_exec::inner_hash_join(&left, &right, left_keys, right_keys)?;
            // Project to the requested columns of each side.
            let left_width = left_store.schema().len();
            let mut ords: Vec<usize> = if left_projection.is_empty() {
                (0..left_width).collect()
            } else {
                left_projection.clone()
            };
            let right_ords: Vec<usize> = if right_projection.is_empty() {
                (0..right_store.schema().len()).collect()
            } else {
                right_projection.clone()
            };
            ords.extend(right_ords.iter().map(|&o| left_width + o));
            let projected = joined.project(&ords)?;
            let out_schema =
                request.join_output_schema(left_store.schema(), right_store.schema())?;
            return Ok(vec![Batch::try_new(
                out_schema,
                projected.columns().to_vec(),
            )?]);
        }
        let store = tables
            .get(&request.table().to_ascii_lowercase())
            .ok_or_else(|| self.no_table(request.table()))?;
        match request {
            SourceRequest::Scan {
                predicates,
                projection,
                sort,
                limit,
                ..
            } => {
                // A sort invalidates early limiting inside the scan.
                let scan_limit = if sort.is_empty() {
                    limit.map(|l| l as usize)
                } else {
                    None
                };
                let result = store.scan(predicates, projection, scan_limit)?;
                let mut batch = result.batch;
                if !sort.is_empty() {
                    batch = sort_batch(&batch, sort);
                }
                batch = limit_batch(batch, *limit);
                Ok(vec![batch])
            }
            SourceRequest::Aggregate {
                predicates,
                group_by,
                aggregates,
                ..
            } => {
                let input = store.scan(predicates, &[], None)?.batch;
                let out_schema = request.output_schema(store.schema())?;
                let out = hash_aggregate(&[input], group_by, aggregates, out_schema)?;
                Ok(vec![out])
            }
            SourceRequest::Join { .. } => unreachable!("handled above"),
            SourceRequest::Lookup {
                key_columns,
                keys,
                projection,
                ..
            } => {
                let mut parts = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for key in keys {
                    if key.len() != key_columns.len() {
                        return Err(GisError::Internal("lookup key width mismatch".into()));
                    }
                    if !seen.insert(key.clone()) {
                        continue; // duplicate key tuples fetched once
                    }
                    if key.iter().any(Value::is_null) {
                        continue; // NULL keys match nothing
                    }
                    let preds: Vec<ScanPredicate> = key_columns
                        .iter()
                        .zip(key)
                        .map(|(&c, v)| ScanPredicate::new(c, CmpOp::Eq, v.clone()))
                        .collect();
                    let r = store.scan(&preds, projection, None)?;
                    if r.batch.num_rows() > 0 {
                        parts.push(r.batch);
                    }
                }
                let out_schema = request.output_schema(store.schema())?;
                Ok(vec![Batch::concat(out_schema, &parts)?])
            }
            SourceRequest::LookupFilter {
                key_columns,
                bloom,
                projection,
                ..
            } => {
                let all = store.scan(&[], &[], None)?.batch;
                filter_by_bloom(&all, key_columns, bloom, projection, || {
                    request.output_schema(store.schema())
                })
            }
        }
    }
}

/// Shared semijoin-filter evaluation: keep rows whose key tuple may
/// be in the Bloom filter (NULL keys match nothing, like `Lookup`),
/// then project. Used by every adapter whose profile advertises
/// `filter_lookup`.
pub(crate) fn filter_by_bloom(
    all: &Batch,
    key_columns: &[usize],
    bloom: &gis_net::KeyBloom,
    projection: &[usize],
    out_schema: impl FnOnce() -> Result<SchemaRef>,
) -> Result<Vec<Batch>> {
    use gis_net::KeyBloom;
    let width = all.schema().len();
    for &c in key_columns {
        if c >= width {
            return Err(GisError::Internal(format!(
                "filter key ordinal {c} out of range for {width}-column table"
            )));
        }
    }
    let ords: Vec<usize> = if projection.is_empty() {
        (0..width).collect()
    } else {
        projection.to_vec()
    };
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut key = Vec::with_capacity(key_columns.len());
    'rows: for r in 0..all.num_rows() {
        key.clear();
        for &c in key_columns {
            let v = all.column(c).value_at(r);
            if v.is_null() {
                continue 'rows;
            }
            key.push(v);
        }
        if bloom.contains(KeyBloom::hash_key(&key)) {
            rows.push(ords.iter().map(|&c| all.column(c).value_at(r)).collect());
        }
    }
    let schema = out_schema()?;
    Ok(vec![Batch::from_rows(schema, &rows)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AggFunc, AggSpec, SortSpec};
    use gis_types::{DataType, Field, Schema};

    fn adapter() -> RelationalAdapter {
        let a = RelationalAdapter::new("crm");
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("balance", DataType::Float64),
        ])
        .into_ref();
        a.add_table(RowStore::new("customers", schema, Some(0)).unwrap());
        a.load(
            "customers",
            (0..50i64).map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Utf8(if i % 2 == 0 { "east" } else { "west" }.into()),
                    Value::Float64(i as f64),
                ]
            }),
        )
        .unwrap();
        a
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.tables(), vec!["customers"]);
        assert_eq!(a.table_schema("customers").unwrap().len(), 3);
        assert!(a.table_schema("nope").is_err());
        let stats = a.collect_stats("customers").unwrap();
        assert_eq!(stats.row_count, 50);
    }

    #[test]
    fn scan_with_sort_and_limit() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "customers".into(),
            predicates: vec![ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("east".into()))],
            projection: vec![0, 2],
            sort: vec![SortSpec {
                column: 1, // post-projection ordinal: balance
                asc: false,
                nulls_first: false,
            }],
            limit: Some(3),
        };
        let batches = a.execute(&req).unwrap();
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row_values(0)[1], Value::Float64(48.0));
        assert_eq!(b.row_values(1)[1], Value::Float64(46.0));
    }

    #[test]
    fn aggregate_pushdown() {
        let a = adapter();
        let req = SourceRequest::Aggregate {
            table: "customers".into(),
            predicates: vec![],
            group_by: vec![1],
            aggregates: vec![
                AggSpec {
                    func: AggFunc::Count,
                    column: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    column: Some(2),
                },
            ],
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 2);
        let east = b
            .to_rows()
            .into_iter()
            .find(|r| r[0] == Value::Utf8("east".into()))
            .unwrap();
        assert_eq!(east[1], Value::Int64(25));
        assert_eq!(
            east[2],
            Value::Float64((0..50).step_by(2).sum::<i64>() as f64)
        );
    }

    #[test]
    fn lookup_dedups_and_skips_nulls() {
        let a = adapter();
        let req = SourceRequest::Lookup {
            table: "customers".into(),
            key_columns: vec![0],
            keys: vec![
                vec![Value::Int64(7)],
                vec![Value::Int64(7)],
                vec![Value::Null],
                vec![Value::Int64(999)],
                vec![Value::Int64(3)],
            ],
            projection: vec![0],
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 2);
        let mut ids: Vec<Value> = b.column(0).iter_values().collect();
        ids.sort();
        assert_eq!(ids, vec![Value::Int64(3), Value::Int64(7)]);
    }

    #[test]
    fn unknown_table_errors() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "ghost".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        assert!(a.execute(&req).is_err());
    }

    #[test]
    fn default_pushable_predicates_accept_everything() {
        let a = adapter();
        let preds = vec![
            ScanPredicate::new(0, CmpOp::Eq, Value::Int64(1)),
            ScanPredicate::new(2, CmpOp::Lt, Value::Float64(5.0)),
        ];
        assert_eq!(a.pushable_predicates("customers", &preds), vec![true, true]);
    }
}
