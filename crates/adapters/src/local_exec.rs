//! Local (inside-the-source) evaluation helpers.
//!
//! Component systems that advertise sort/aggregate capabilities need
//! their own tiny evaluator — a real autonomous DBMS would; these
//! helpers play that role for the adapters. They are intentionally
//! independent of the mediator's executor in `gis-core`: the source
//! side of the federation is a different system.

use crate::request::{AggFunc, AggSpec, SortSpec};
use gis_types::{Batch, GisError, Result, Row, SchemaRef, SortKey, SortOrder, Value};
use std::collections::HashMap;

/// Sorts a batch under the given sort specs.
pub fn sort_batch(batch: &Batch, sort: &[SortSpec]) -> Batch {
    let keys: Vec<SortKey> = sort
        .iter()
        .map(|s| SortKey {
            column: s.column,
            order: if s.asc {
                SortOrder::Ascending
            } else {
                SortOrder::Descending
            },
            nulls_first: s.nulls_first,
        })
        .collect();
    let idx = gis_types::ordering::sorted_indices(batch, &keys);
    batch.take(&idx)
}

/// Applies a row limit.
pub fn limit_batch(batch: Batch, limit: Option<u64>) -> Batch {
    match limit {
        Some(n) if (batch.num_rows() as u64) > n => batch.slice(0, n as usize),
        _ => batch,
    }
}

/// A running aggregate accumulator.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// COUNT: non-null (or any, for `COUNT(*)`) rows seen.
    Count(i64),
    /// SUM over integers.
    SumInt(Option<i64>),
    /// SUM over floats.
    SumFloat(Option<f64>),
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// AVG: (sum, count).
    Avg(f64, i64),
}

impl Accumulator {
    /// A fresh accumulator for `spec` with input type taken from the
    /// argument column (integer sums stay exact).
    pub fn new(spec: &AggSpec, input_is_integer: bool) -> Accumulator {
        match spec.func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum if input_is_integer => Accumulator::SumInt(None),
            AggFunc::Sum => Accumulator::SumFloat(None),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg(0.0, 0),
        }
    }

    /// Folds one value in. `None` argument means `COUNT(*)` (count
    /// the row unconditionally).
    pub fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Accumulator::Count(n) => match v {
                None => *n += 1,
                Some(x) if !x.is_null() => *n += 1,
                Some(_) => {}
            },
            Accumulator::SumInt(acc) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    let i = x
                        .as_i64()?
                        .ok_or_else(|| GisError::Execution("sum over non-integer".into()))?;
                    *acc = Some(acc.unwrap_or(0).wrapping_add(i));
                }
            }
            Accumulator::SumFloat(acc) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    let f = x
                        .as_f64()?
                        .ok_or_else(|| GisError::Execution("sum over non-numeric".into()))?;
                    *acc = Some(acc.unwrap_or(0.0) + f);
                }
            }
            Accumulator::Min(acc) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    match acc {
                        Some(m) if m.total_cmp(x).is_le() => {}
                        _ => *acc = Some(x.clone()),
                    }
                }
            }
            Accumulator::Max(acc) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    match acc {
                        Some(m) if m.total_cmp(x).is_ge() => {}
                        _ => *acc = Some(x.clone()),
                    }
                }
            }
            Accumulator::Avg(sum, n) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    let f = x
                        .as_f64()?
                        .ok_or_else(|| GisError::Execution("avg over non-numeric".into()))?;
                    *sum += f;
                    *n += 1;
                }
            }
        }
        Ok(())
    }

    /// Final value (SQL semantics: empty SUM/MIN/MAX/AVG are NULL,
    /// empty COUNT is 0).
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int64(*n),
            Accumulator::SumInt(v) => v.map_or(Value::Null, Value::Int64),
            Accumulator::SumFloat(v) => v.map_or(Value::Null, Value::Float64),
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Avg(sum, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *n as f64)
                }
            }
        }
    }
}

/// Source-side inner equi-join: builds a hash table on the right,
/// probes with the left, NULL keys never match. Output layout is
/// `left columns ++ right columns` (pre-projection).
pub fn inner_hash_join(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Batch> {
    if left_keys.is_empty() || left_keys.len() != right_keys.len() {
        return Err(GisError::Internal(
            "local join requires matching non-empty key lists".into(),
        ));
    }
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for r in 0..right.num_rows() {
        let key = Row::new(right, r).key(right_keys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(r);
    }
    let mut li = Vec::new();
    let mut ri = Vec::new();
    for l in 0..left.num_rows() {
        let key = Row::new(left, l).key(left_keys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &r in matches {
                li.push(l);
                ri.push(r);
            }
        }
    }
    left.take(&li).hstack(&right.take(&ri))
}

/// Evaluates grouped aggregation over batches (the source-side hash
/// aggregate). `output_schema` must come from
/// [`crate::request::SourceRequest::output_schema`].
pub fn hash_aggregate(
    batches: &[Batch],
    group_by: &[usize],
    aggregates: &[AggSpec],
    output_schema: SchemaRef,
) -> Result<Batch> {
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for batch in batches {
        for r in 0..batch.num_rows() {
            let row = Row::new(batch, r);
            let key = row.key(group_by);
            let accs = match groups.get_mut(&key) {
                Some(a) => a,
                None => {
                    let fresh: Vec<Accumulator> = aggregates
                        .iter()
                        .map(|spec| {
                            let is_int = spec
                                .column
                                .map(|c| batch.schema().field(c).data_type.is_integer())
                                .unwrap_or(false);
                            Accumulator::new(spec, is_int)
                        })
                        .collect();
                    order.push(key.clone());
                    groups.entry(key.clone()).or_insert(fresh)
                }
            };
            for (acc, spec) in accs.iter_mut().zip(aggregates) {
                let arg = spec.column.map(|c| row.value(c));
                acc.update(arg.as_ref())?;
            }
        }
    }
    // A global aggregate (no GROUP BY) over zero rows still yields
    // one output row.
    if group_by.is_empty() && order.is_empty() {
        let accs: Vec<Accumulator> = aggregates
            .iter()
            .map(|s| Accumulator::new(s, false))
            .collect();
        order.push(vec![]);
        groups.insert(vec![], accs);
    }
    let rows: Vec<Vec<Value>> = order
        .iter()
        .map(|key| {
            let mut row = key.clone();
            row.extend(groups[key].iter().map(Accumulator::finish));
            row
        })
        .collect();
    Batch::from_rows(output_schema, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SourceRequest;
    use gis_types::{DataType, Field, Schema};

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Utf8),
                Field::new("v", DataType::Int64),
                Field::new("f", DataType::Float64),
            ])
            .into_ref(),
            &[
                vec![
                    Value::Utf8("a".into()),
                    Value::Int64(1),
                    Value::Float64(1.0),
                ],
                vec![
                    Value::Utf8("b".into()),
                    Value::Int64(2),
                    Value::Float64(2.0),
                ],
                vec![Value::Utf8("a".into()), Value::Int64(3), Value::Null],
                vec![Value::Utf8("a".into()), Value::Null, Value::Float64(5.0)],
            ],
        )
        .unwrap()
    }

    fn agg_schema(group_by: Vec<usize>, aggregates: Vec<AggSpec>) -> SchemaRef {
        let req = SourceRequest::Aggregate {
            table: "t".into(),
            predicates: vec![],
            group_by: group_by.clone(),
            aggregates,
        };
        let export = Schema::new(vec![
            Field::new("g", DataType::Utf8),
            Field::new("v", DataType::Int64),
            Field::new("f", DataType::Float64),
        ]);
        req.output_schema(&export).unwrap()
    }

    #[test]
    fn grouped_aggregates() {
        let aggs = vec![
            AggSpec {
                func: AggFunc::Count,
                column: None,
            },
            AggSpec {
                func: AggFunc::Count,
                column: Some(1),
            },
            AggSpec {
                func: AggFunc::Sum,
                column: Some(1),
            },
            AggSpec {
                func: AggFunc::Avg,
                column: Some(2),
            },
        ];
        let schema = agg_schema(vec![0], aggs.clone());
        let out = hash_aggregate(&[batch()], &[0], &aggs, schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        // group "a": count(*)=3, count(v)=2, sum(v)=4, avg(f)=(1+5)/2
        let a = out.row_values(0);
        assert_eq!(a[0], Value::Utf8("a".into()));
        assert_eq!(a[1], Value::Int64(3));
        assert_eq!(a[2], Value::Int64(2));
        assert_eq!(a[3], Value::Int64(4));
        assert_eq!(a[4], Value::Float64(3.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let aggs = vec![
            AggSpec {
                func: AggFunc::Count,
                column: None,
            },
            AggSpec {
                func: AggFunc::Sum,
                column: Some(1),
            },
            AggSpec {
                func: AggFunc::Min,
                column: Some(1),
            },
        ];
        let schema = agg_schema(vec![], aggs.clone());
        let empty = batch().slice(0, 0);
        let out = hash_aggregate(&[empty], &[], &aggs, schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row_values(0)[0], Value::Int64(0));
        assert_eq!(out.row_values(0)[1], Value::Null);
        assert_eq!(out.row_values(0)[2], Value::Null);
    }

    #[test]
    fn min_max_respect_total_order() {
        let aggs = vec![
            AggSpec {
                func: AggFunc::Min,
                column: Some(1),
            },
            AggSpec {
                func: AggFunc::Max,
                column: Some(1),
            },
        ];
        let schema = agg_schema(vec![], aggs.clone());
        let out = hash_aggregate(&[batch()], &[], &aggs, schema).unwrap();
        assert_eq!(out.row_values(0)[0], Value::Int64(1));
        assert_eq!(out.row_values(0)[1], Value::Int64(3));
    }

    #[test]
    fn sort_and_limit() {
        let b = batch();
        let sorted = sort_batch(
            &b,
            &[SortSpec {
                column: 1,
                asc: false,
                nulls_first: false,
            }],
        );
        assert_eq!(sorted.row_values(0)[1], Value::Int64(3));
        assert_eq!(sorted.row_values(3)[1], Value::Null);
        let limited = limit_batch(sorted, Some(2));
        assert_eq!(limited.num_rows(), 2);
        let untouched = limit_batch(b.clone(), None);
        assert_eq!(untouched.num_rows(), 4);
    }
}
