//! A source behind a metered network link.
//!
//! `RemoteSource` is what the mediator actually holds: an adapter
//! plus the [`Link`] to it. Every `execute` call:
//!
//! 1. serializes the request (counted as request bytes + one message),
//! 2. runs the adapter *at the source*,
//! 3. chunks the result into batches of `chunk_rows` and ships each
//!    chunk as one message (counted as response bytes),
//! 4. retries transient network failures under a [`RetryPolicy`] —
//!    re-paying the request cost each time, as a real mediator would,
//!    charging exponential backoff to the virtual clock, and giving up
//!    early when the query deadline or the policy's virtual-time
//!    budget is exhausted.
//!
//! Decode-after-encode is performed on both directions so tests
//! exercise the full wire path, not a shortcut.

use crate::request::{SourceAdapter, SourceRequest};
use crate::wire_req::{decode_request, encode_request};
use bytes::BytesMut;
use gis_net::codec::{decode_frame, encode_frame_into, encode_legacy_into, FrameStats};
use gis_net::wire::{decode_span, encode_span};
use gis_net::{Link, RetryPolicy, WireStats};
use gis_observe::Span;
use gis_types::{Batch, GisError, Result, SchemaRef};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default rows per response message.
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

/// An adapter reachable only through a metered link.
#[derive(Clone)]
pub struct RemoteSource {
    adapter: Arc<dyn SourceAdapter>,
    link: Link,
    chunk_rows: usize,
    retry: RetryPolicy,
    compress: Arc<AtomicBool>,
    wire_stats: Arc<WireStats>,
}

impl RemoteSource {
    /// Wraps `adapter` behind `link`. Response frames ship compressed
    /// by default; see [`RemoteSource::with_compression_flag`].
    pub fn new(adapter: Arc<dyn SourceAdapter>, link: Link) -> Self {
        RemoteSource {
            adapter,
            link,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            retry: RetryPolicy::default(),
            compress: Arc::new(AtomicBool::new(true)),
            wire_stats: WireStats::shared(),
        }
    }

    /// Sets the response chunk size (rows per message).
    pub fn with_chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Sets how many times transient failures are retried (keeps the
    /// rest of the retry policy). `retries` excludes the first
    /// attempt.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.retry.max_attempts = retries.saturating_add(1);
        self
    }

    /// Replaces the whole retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Shares a compression toggle with the federation: when the flag
    /// is false, response frames take the legacy raw layout (and any
    /// peer that never learned the codecs still decodes them).
    pub fn with_compression_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.compress = flag;
        self
    }

    /// Shares a federation-wide [`WireStats`] accumulator, so
    /// `Runtime::render_text()` can report raw-vs-wire bytes and
    /// per-codec column counts across all sources.
    pub fn with_wire_stats(mut self, stats: Arc<WireStats>) -> Self {
        self.wire_stats = stats;
        self
    }

    /// The wire-compression statistics this source records into.
    pub fn wire_stats(&self) -> &Arc<WireStats> {
        &self.wire_stats
    }

    /// Whether response frames currently ship compressed.
    pub fn compression_enabled(&self) -> bool {
        self.compress.load(Ordering::Relaxed)
    }

    /// Replaces the retry policy in place.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The source name.
    pub fn name(&self) -> &str {
        self.adapter.name()
    }

    /// The wrapped adapter (metadata access does not cross the wire
    /// at query time; schemas were fetched at registration).
    pub fn adapter(&self) -> &Arc<dyn SourceAdapter> {
        &self.adapter
    }

    /// The link (for metrics and fault scripting).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Ships `request`, executes it at the source, and returns the
    /// response batches, accounting all traffic on the link.
    pub fn execute(&self, request: &SourceRequest) -> Result<Vec<Batch>> {
        Ok(self.execute_inner(request, false, None)?.0)
    }

    /// Like [`RemoteSource::execute`], but also returns a `recv` span
    /// for the exchange: bytes and messages on the wire, rows
    /// received, host-side wall time, and — as a child — the span the
    /// *source* reported for its own work. The source span travels
    /// back as one extra wire frame, so tracing's network cost is
    /// metered honestly rather than conjured for free.
    pub fn execute_traced(&self, request: &SourceRequest) -> Result<(Vec<Batch>, Span)> {
        let (batches, span) = self.execute_inner(request, true, None)?;
        // `execute_inner(_, true, _)` always produces a span.
        Ok((batches, span.unwrap_or_default()))
    }

    /// Full-control entry point used by the executor: `traced` asks
    /// for a `recv` span, `deadline` bounds retrying — once it passes,
    /// no further attempt is made and the last error is returned.
    pub fn execute_with_deadline(
        &self,
        request: &SourceRequest,
        traced: bool,
        deadline: Option<Instant>,
    ) -> Result<(Vec<Batch>, Option<Span>)> {
        self.execute_inner(request, traced, deadline)
    }

    fn execute_inner(
        &self,
        request: &SourceRequest,
        traced: bool,
        deadline: Option<Instant>,
    ) -> Result<(Vec<Batch>, Option<Span>)> {
        let clock = self.link.clock();
        let started_us = clock.now_us();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut retry_events: Vec<Span> = Vec::new();
        let mut attempt = 1u32;
        loop {
            match self.try_execute(request, traced) {
                Ok((batches, span)) => {
                    // Retry events ride on the recv span so EXPLAIN
                    // ANALYZE shows what the exchange survived.
                    let span = span.map(|mut s| {
                        s.children.append(&mut retry_events);
                        s
                    });
                    return Ok((batches, span));
                }
                Err(e) if e.is_retryable() => {
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    // A query past its deadline must not burn more
                    // round trips; the executor surfaces the deadline
                    // at its next check.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(e);
                    }
                    let backoff = self.retry.backoff_us(attempt);
                    let spent = clock.now_us().saturating_sub(started_us);
                    if spent.saturating_add(backoff) > self.retry.budget_us {
                        return Err(e);
                    }
                    clock.advance(backoff);
                    self.link.metrics().add_retry();
                    if traced {
                        retry_events.push(Span::leaf(format!(
                            "event:retry[{} attempt={} backoff={backoff}us]",
                            self.name(),
                            attempt + 1,
                        )));
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn try_execute(
        &self,
        request: &SourceRequest,
        traced: bool,
    ) -> Result<(Vec<Batch>, Option<Span>)> {
        let started = traced.then(Instant::now);
        let compress = self.compress.load(Ordering::Relaxed);
        let mut wire_bytes = 0u64;
        let mut exchange = FrameStats::default();
        // Ship the request.
        let frame = encode_request(request);
        wire_bytes += frame.len() as u64;
        self.link.transfer(frame.len())?;
        // The source decodes it (full wire path).
        let decoded = decode_request(frame)?;
        let (results, source_span) = if traced {
            let (results, span) = self.adapter.execute_traced(&decoded)?;
            (results, Some(span))
        } else {
            (self.adapter.execute(&decoded)?, None)
        };
        // Ship results back in chunks, one scratch buffer for the
        // whole stream (split().freeze() hands each frame off without
        // reallocating the encoder's working space). The link is
        // charged the frame as it actually crossed the wire, with the
        // raw (legacy-layout) size recorded alongside.
        let mut out = Vec::new();
        let mut scratch = BytesMut::new();
        for batch in results {
            let mut offset = 0;
            loop {
                // An empty result still ships one (small) message.
                let chunk = batch.slice(offset, self.chunk_rows);
                offset += chunk.num_rows();
                let stats = if compress {
                    encode_frame_into(&mut scratch, &chunk)
                } else {
                    encode_legacy_into(&mut scratch, &chunk)
                };
                let frame = scratch.split().freeze();
                wire_bytes += frame.len() as u64;
                exchange.absorb(&stats);
                self.link.transfer_sized(frame.len(), stats.raw)?;
                out.push(decode_frame(frame)?);
                if offset >= batch.num_rows() {
                    break;
                }
            }
        }
        self.wire_stats.record(&exchange);
        let span = match source_span {
            Some(source_span) => {
                // The source's own span rides back as one more frame.
                let frame = encode_span(&source_span);
                wire_bytes += frame.len() as u64;
                self.link.transfer(frame.len())?;
                let source_span = decode_span(frame)?;
                let rows: u64 = out.iter().map(|b| b.num_rows() as u64).sum();
                Some(
                    Span::leaf(format!("recv[{}]", self.name()))
                        .with_rows_out(rows)
                        .with_bytes(wire_bytes)
                        .with_wall_us(started.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0))
                        .with_child(source_span)
                        .with_child(Span::leaf(format!(
                            "wire[codec={} raw={} sent={}]",
                            exchange.codec_summary(),
                            exchange.raw,
                            exchange.wire,
                        ))),
                )
            }
            None => None,
        };
        Ok((out, span))
    }

    /// Convenience: execute and concatenate all chunks.
    pub fn execute_all(&self, request: &SourceRequest, schema: SchemaRef) -> Result<Batch> {
        let batches = self.execute(request)?;
        Batch::concat(schema, &batches)
    }

    /// Traced variant of [`RemoteSource::execute_all`].
    pub fn execute_all_traced(
        &self,
        request: &SourceRequest,
        schema: SchemaRef,
    ) -> Result<(Batch, Span)> {
        let (batches, span) = self.execute_traced(request)?;
        Ok((Batch::concat(schema, &batches)?, span))
    }

    /// Fetches a table's export schema *across the link* (used at
    /// registration; costs one small round trip).
    pub fn fetch_schema(&self, table: &str) -> Result<SchemaRef> {
        self.link.round_trip(2 + table.len(), 64)?;
        self.adapter.table_schema(table)
    }

    /// Runs `ANALYZE table` at the source under the given sampling
    /// instruction, shipping the request and the statistics frame
    /// across the metered link. Returns the collected stats and the
    /// total wire bytes the exchange cost.
    pub fn analyze(
        &self,
        table: &str,
        spec: &gis_stats::SampleSpec,
    ) -> Result<(gis_storage::TableStats, u64)> {
        let frame = crate::wire_stats::encode_analyze_request(table, spec);
        let mut wire_bytes = frame.len() as u64;
        self.link.transfer(frame.len())?;
        // The source decodes the request (full wire path), samples its
        // own storage, and ships the summary back as one frame.
        let (table, spec) = crate::wire_stats::decode_analyze_request(frame)?;
        let stats = self.adapter.collect_stats_sampled(&table, &spec)?;
        let frame = crate::wire_stats::encode_stats_frame(&stats);
        wire_bytes += frame.len() as u64;
        self.link.transfer(frame.len())?;
        let stats = crate::wire_stats::decode_stats_frame(frame)?;
        Ok((stats, wire_bytes))
    }
}

impl std::fmt::Debug for RemoteSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSource")
            .field("name", &self.adapter.name())
            .field("kind", &self.adapter.kind())
            .field("chunk_rows", &self.chunk_rows)
            .finish()
    }
}

/// Builds an error for a source that is unreachable after retries
/// (used by the executor's error paths; kept here so wording is
/// consistent).
pub fn unreachable_source(name: &str, cause: &GisError) -> GisError {
    GisError::Network(format!(
        "source '{name}' unreachable after retries: {cause}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalAdapter;
    use gis_net::{NetworkConditions, SimClock};
    use gis_storage::RowStore;
    use gis_types::{DataType, Field, Schema, Value};

    fn remote(conditions: NetworkConditions, clock: SimClock) -> RemoteSource {
        let a = RelationalAdapter::new("crm");
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref();
        a.add_table(RowStore::new("customers", schema, Some(0)).unwrap());
        a.load(
            "customers",
            (0..100i64).map(|i| vec![Value::Int64(i), Value::Utf8(format!("c{i}"))]),
        )
        .unwrap();
        RemoteSource::new(Arc::new(a), Link::new("crm", conditions, clock)).with_chunk_rows(30)
    }

    fn scan_all() -> SourceRequest {
        SourceRequest::Scan {
            table: "customers".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        }
    }

    #[test]
    fn execute_chunks_and_meters() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        let batches = r.execute(&scan_all()).unwrap();
        // 100 rows in chunks of 30 => 4 response messages
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 100);
        // 1 request + 4 responses
        assert_eq!(r.link().metrics().messages(), 5);
        // The pre-compression ledger still reflects the full payload;
        // what crossed the wire is smaller.
        assert!(r.link().metrics().raw_bytes() > 100 * 8);
        assert!(r.link().metrics().bytes() < r.link().metrics().raw_bytes());
    }

    #[test]
    fn latency_accumulates_per_message() {
        let clock = SimClock::new();
        let conditions = NetworkConditions {
            latency_us: 1_000,
            bandwidth_bytes_per_sec: 0,
        };
        let r = remote(conditions, clock.clone());
        r.execute(&scan_all()).unwrap();
        // 5 messages x 1ms
        assert_eq!(clock.now_us(), 5_000);
    }

    #[test]
    fn transient_failures_retried() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        r.link().faults().fail_next(2);
        let batches = r.execute(&scan_all()).unwrap();
        assert_eq!(batches.iter().map(Batch::num_rows).sum::<usize>(), 100);
        assert_eq!(r.link().metrics().failures(), 2);
    }

    #[test]
    fn retries_exhaust_on_partition() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        r.link().faults().partition();
        let err = r.execute(&scan_all()).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(r.link().metrics().failures(), 3); // 1 + 2 retries
    }

    #[test]
    fn empty_results_still_ship_a_frame() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        let req = SourceRequest::Scan {
            table: "customers".into(),
            predicates: vec![gis_storage::ScanPredicate::new(
                0,
                gis_storage::CmpOp::Eq,
                Value::Int64(-1),
            )],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        let batches = r.execute(&req).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].num_rows(), 0);
        assert_eq!(r.link().metrics().messages(), 2);
    }

    #[test]
    fn traced_execute_meters_the_span_frame_and_reports_source_work() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        let (batches, span) = r.execute_traced(&scan_all()).unwrap();
        assert_eq!(batches.iter().map(Batch::num_rows).sum::<usize>(), 100);
        // 1 request + 4 responses + 1 span frame
        assert_eq!(r.link().metrics().messages(), 6);
        assert_eq!(span.label, "recv[crm]");
        assert_eq!(span.rows_out, 100);
        assert_eq!(span.bytes, r.link().metrics().bytes());
        // The source reported its own operator subtree, and the wire
        // span reports what compression did to the exchange.
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[0].label, "remote:scan[customers]");
        assert_eq!(span.children[0].rows_out, 100);
        let wire = &span.children[1].label;
        assert!(wire.starts_with("wire[codec="), "unexpected {wire}");
        assert!(wire.contains("raw=") && wire.contains("sent="));
    }

    #[test]
    fn compressed_shipping_cuts_bytes_and_keeps_rows_identical() {
        let off = Arc::new(AtomicBool::new(false));
        let clock = SimClock::new();
        let raw =
            remote(NetworkConditions::instant(), clock.clone()).with_compression_flag(off.clone());
        let raw_batches = raw.execute(&scan_all()).unwrap();
        let raw_bytes = raw.link().metrics().bytes();
        assert_eq!(
            raw.link().metrics().raw_bytes(),
            raw_bytes,
            "legacy mode ships raw == wire"
        );

        let compressed = remote(NetworkConditions::instant(), clock);
        assert!(
            compressed.compression_enabled(),
            "compression is the default"
        );
        let comp_batches = compressed.execute(&scan_all()).unwrap();
        let comp_bytes = compressed.link().metrics().bytes();

        // Bit-identical rows, strictly fewer wire bytes.
        let rows = |bs: &[Batch]| {
            bs.iter()
                .flat_map(|b| (0..b.num_rows()).map(move |r| format!("{:?}", b.row(r))))
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&raw_batches), rows(&comp_batches));
        assert!(
            comp_bytes < raw_bytes,
            "compressed {comp_bytes} >= raw {raw_bytes}"
        );
        // The honest ledger: raw_bytes preserves the uncompressed size.
        assert!(compressed.link().metrics().raw_bytes() > comp_bytes);
        let ws = compressed.wire_stats();
        assert_eq!(
            ws.wire_bytes(),
            comp_bytes - encode_request(&scan_all()).len() as u64
        );
        assert!(ws.raw_bytes() > ws.wire_bytes());

        // Flipping the shared flag switches an existing source to the
        // legacy layout mid-flight (the negotiation path).
        let toggled = remote(NetworkConditions::instant(), SimClock::new())
            .with_compression_flag(off.clone());
        off.store(true, Ordering::Relaxed);
        assert!(toggled.compression_enabled());
        off.store(false, Ordering::Relaxed);
        let legacy_batches = toggled.execute(&scan_all()).unwrap();
        assert_eq!(rows(&legacy_batches), rows(&raw_batches));
    }

    #[test]
    fn backoff_is_charged_to_the_virtual_clock() {
        let clock = SimClock::new();
        let r =
            remote(NetworkConditions::instant(), clock.clone()).with_retry_policy(RetryPolicy {
                jitter_permille: 0,
                ..RetryPolicy::default()
            });
        r.link().faults().fail_next(2);
        r.execute(&scan_all()).unwrap();
        // Two backoffs on an otherwise-free network: 1 ms + 2 ms.
        assert_eq!(clock.now_us(), 3_000);
        assert_eq!(r.link().metrics().retries(), 2);
    }

    #[test]
    fn expired_deadline_stops_retries_with_last_error() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        r.link().faults().partition();
        let deadline = Instant::now() - std::time::Duration::from_millis(1);
        let err = r
            .execute_with_deadline(&scan_all(), false, Some(deadline))
            .unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(
            r.link().metrics().failures(),
            1,
            "no retries once the deadline has passed"
        );
        assert_eq!(r.link().metrics().retries(), 0);
    }

    #[test]
    fn virtual_budget_bounds_retrying() {
        let clock = SimClock::new();
        let conditions = NetworkConditions {
            latency_us: 1_000,
            bandwidth_bytes_per_sec: 0,
        };
        let r = remote(conditions, clock).with_retry_policy(RetryPolicy {
            max_attempts: 10,
            jitter_permille: 0,
            budget_us: 2_500,
            ..RetryPolicy::default()
        });
        r.link().faults().partition();
        let err = r.execute(&scan_all()).unwrap_err();
        assert!(err.is_retryable());
        // Attempt 1 burns 1 ms latency, backs off 1 ms (2 ms spent);
        // attempt 2 burns another 1 ms, and the next 2 ms backoff
        // would blow the 2.5 ms budget — stop at two attempts, not 10.
        assert_eq!(r.link().metrics().failures(), 2);
        assert_eq!(r.link().metrics().retries(), 1);
    }

    #[test]
    fn traced_retries_annotate_the_recv_span() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        r.link().faults().fail_next(1);
        let (batches, span) = r.execute_traced(&scan_all()).unwrap();
        assert_eq!(batches.iter().map(Batch::num_rows).sum::<usize>(), 100);
        assert!(span.find("event:retry[crm attempt=2").is_some());
    }

    #[test]
    fn execute_all_concatenates() {
        let clock = SimClock::new();
        let r = remote(NetworkConditions::instant(), clock);
        let schema = r.adapter().table_schema("customers").unwrap();
        let batch = r.execute_all(&scan_all(), schema).unwrap();
        assert_eq!(batch.num_rows(), 100);
    }
}
