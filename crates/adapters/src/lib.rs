//! # gis-adapters — wrappers around autonomous component systems
//!
//! The mediator never touches component storage directly; it speaks a
//! small *fragment protocol* ([`request::SourceRequest`]) to an
//! adapter (wrapper) per source. Each adapter:
//!
//! * declares a [`gis_catalog::CapabilityProfile`] — the contract the
//!   optimizer plans against,
//! * translates protocol requests into its engine's native access
//!   paths (B-tree lookups, zone-mapped scans, key-prefix gets),
//! * rejects anything outside its profile with
//!   [`gis_types::GisError::Unsupported`] — a planner bug, loudly.
//!
//! [`remote::RemoteSource`] wraps any adapter behind a metered
//! [`gis_net::Link`]: requests and response batches are serialized
//! with the byte-exact wire format, so every experiment knows exactly
//! what a plan shipped. Retries for transient faults live here too.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columnar;
pub mod group;
pub mod kv;
pub mod local_exec;
pub mod register;
pub mod relational;
pub mod remote;
pub mod request;
pub mod wire_req;
pub mod wire_stats;

pub use columnar::ColumnarAdapter;
pub use group::{is_availability_error, SourceGroup};
pub use kv::KvAdapter;
pub use register::register_adapter;
pub use relational::RelationalAdapter;
pub use remote::RemoteSource;
pub use request::{AggFunc, AggSpec, SortSpec, SourceAdapter, SourceRequest};
