//! Registration: introducing a component system to the federation.
//!
//! Joining a GIS is a metadata operation: the source's export schemas,
//! statistics and capability profile flow into the catalog once; no
//! data moves. This module performs that handshake for any adapter.

use crate::request::SourceAdapter;
use gis_catalog::CatalogRef;
use gis_types::Result;
use std::sync::Arc;

/// Registers `adapter` (source + all exported tables + fresh
/// statistics) into `catalog`. Returns the number of tables
/// registered.
pub fn register_adapter(catalog: &CatalogRef, adapter: &Arc<dyn SourceAdapter>) -> Result<usize> {
    catalog.register_source(adapter.name(), adapter.kind(), adapter.capabilities());
    let tables = adapter.tables();
    for table in &tables {
        let schema = adapter.table_schema(table)?;
        let stats = adapter.collect_stats(table)?;
        catalog.register_table(adapter.name(), table, schema, Some(stats))?;
    }
    Ok(tables.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvAdapter;
    use crate::relational::RelationalAdapter;
    use gis_catalog::Catalog;
    use gis_storage::{KvStore, RowStore};
    use gis_types::{DataType, Field, Schema, Value};

    #[test]
    fn registers_source_tables_and_stats() {
        let catalog = Catalog::new();
        let a = RelationalAdapter::new("crm");
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref();
        a.add_table(RowStore::new("customers", schema, Some(0)).unwrap());
        a.load(
            "customers",
            (0..10i64).map(|i| vec![Value::Int64(i), Value::Utf8(format!("c{i}"))]),
        )
        .unwrap();
        let adapter: Arc<dyn SourceAdapter> = Arc::new(a);
        let n = register_adapter(&catalog, &adapter).unwrap();
        assert_eq!(n, 1);
        let resolved = catalog.resolve(Some("crm"), "customers").unwrap();
        assert_eq!(resolved.source.kind, "relational");
        assert_eq!(resolved.table.stats.as_ref().unwrap().row_count, 10);
        assert_eq!(resolved.source.capabilities.summary(), "FRPJASLB");
    }

    #[test]
    fn kv_registration_carries_weak_capabilities() {
        let catalog = Catalog::new();
        let a = KvAdapter::new("inventory");
        let schema = Schema::new(vec![
            Field::required("sku", DataType::Int64),
            Field::new("qty", DataType::Int64),
        ])
        .into_ref();
        a.add_table(KvStore::new("stock", schema, 1).unwrap());
        let adapter: Arc<dyn SourceAdapter> = Arc::new(a);
        register_adapter(&catalog, &adapter).unwrap();
        let resolved = catalog.resolve(Some("inventory"), "stock").unwrap();
        assert!(!resolved.source.capabilities.project);
        assert!(!resolved.source.capabilities.aggregate);
    }
}
