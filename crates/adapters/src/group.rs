//! Replica groups: one logical source, N physical replicas.
//!
//! Kameny's component systems are autonomous — the mediator cannot
//! keep a source alive, but it *can* hold connections to more than one
//! replica of it and route around the dead ones. A [`SourceGroup`]
//! owns every [`RemoteSource`] serving the same logical source (same
//! exported tables, same adapter capabilities), each behind its own
//! [`Link`] with its own conditions, fault script, and breaker.
//!
//! Routing policy:
//!
//! * requests go to the **cheapest healthy** replica first — healthy
//!   meaning its breaker is not open, cheapest by nominal
//!   [`NetworkConditions`] message cost (the same signal the
//!   optimizer's cost model uses);
//! * on an availability failure (retry-exhausted transient loss,
//!   partition, or breaker fail-fast) execution **fails over** to the
//!   next replica in preference order;
//! * logical errors (bad request, storage corruption, unsupported
//!   operation) do **not** fail over — every replica would answer the
//!   same, and masking them behind a replica switch would hide bugs.

use crate::remote::RemoteSource;
use crate::request::SourceAdapter;
use gis_net::{BreakerState, Link, NetworkConditions, RetryPolicy};
use gis_observe::Span;
use gis_types::{Batch, GisError, Result, SchemaRef};

use crate::request::SourceRequest;
use std::sync::Arc;
use std::time::Instant;

/// A logical source backed by one or more physical replicas.
#[derive(Debug, Clone)]
pub struct SourceGroup {
    replicas: Vec<RemoteSource>,
}

impl SourceGroup {
    /// A group with a single (primary) replica.
    pub fn new(primary: RemoteSource) -> Self {
        SourceGroup {
            replicas: vec![primary],
        }
    }

    /// Registers an additional replica.
    pub fn push_replica(&mut self, replica: RemoteSource) {
        self.replicas.push(replica);
    }

    /// The logical source name (the primary adapter's name).
    pub fn name(&self) -> &str {
        self.replicas[0].name()
    }

    /// The primary replica's adapter — capability and schema metadata
    /// is identical across replicas by construction.
    pub fn adapter(&self) -> &Arc<dyn SourceAdapter> {
        self.replicas[0].adapter()
    }

    /// The primary replica's link (fault scripting, metrics).
    pub fn link(&self) -> &Link {
        self.replicas[0].link()
    }

    /// The primary replica.
    pub fn primary(&self) -> &RemoteSource {
        &self.replicas[0]
    }

    /// All replicas, primary first.
    pub fn replicas(&self) -> &[RemoteSource] {
        &self.replicas
    }

    /// Number of replicas in the group.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current data version (replicas serve the same data).
    pub fn data_version(&self) -> u64 {
        self.adapter().data_version()
    }

    /// Applies one retry policy to every replica.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for replica in &mut self.replicas {
            replica.set_retry_policy(policy);
        }
    }

    /// Replica indices in routing order: healthy (breaker not open)
    /// before open-breaker ones, cheaper nominal message cost first,
    /// registration order as the deterministic tiebreak.
    fn preference_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| {
            let link = self.replicas[i].link();
            let open = link.breaker_state() == BreakerState::Open;
            (open, link.conditions().message_cost_us(1024), i)
        });
        order
    }

    /// The conditions of the replica a request would be routed to
    /// right now — what the optimizer's cost model should price
    /// shipping against.
    pub fn best_conditions(&self) -> NetworkConditions {
        let idx = self.preference_order()[0];
        self.replicas[idx].link().conditions()
    }

    /// Executes `request` with failover across replicas in preference
    /// order. Availability failures (`NETWORK`, `UNAVAILABLE`) move to
    /// the next replica; anything else returns immediately. When every
    /// replica fails, the last availability error is returned.
    pub fn execute_with_failover(
        &self,
        request: &SourceRequest,
        traced: bool,
        deadline: Option<Instant>,
    ) -> Result<(Vec<Batch>, Option<Span>)> {
        let mut failover_events: Vec<Span> = Vec::new();
        let mut last_err: Option<GisError> = None;
        for idx in self.preference_order() {
            let replica = &self.replicas[idx];
            match replica.execute_with_deadline(request, traced, deadline) {
                Ok((batches, span)) => {
                    // Failover events ride on the winning replica's
                    // recv span, so EXPLAIN ANALYZE names the replicas
                    // that were skipped over.
                    let span = span.map(|mut s| {
                        s.children.append(&mut failover_events);
                        s
                    });
                    return Ok((batches, span));
                }
                Err(e) if is_availability_error(&e) => {
                    if traced {
                        failover_events.push(Span::leaf(format!(
                            "event:failover[{} {}]",
                            replica.link().name(),
                            e.code()
                        )));
                    }
                    last_err = Some(e);
                    // A query past its deadline must not probe more
                    // replicas.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| GisError::Internal("source group has no replicas".into())))
    }

    /// Executes and concatenates all response chunks.
    pub fn execute_all(
        &self,
        request: &SourceRequest,
        schema: SchemaRef,
        deadline: Option<Instant>,
    ) -> Result<Batch> {
        let (batches, _) = self.execute_with_failover(request, false, deadline)?;
        Batch::concat(schema, &batches)
    }

    /// Traced variant of [`SourceGroup::execute_all`].
    pub fn execute_all_traced(
        &self,
        request: &SourceRequest,
        schema: SchemaRef,
        deadline: Option<Instant>,
    ) -> Result<(Batch, Span)> {
        let (batches, span) = self.execute_with_failover(request, true, deadline)?;
        Ok((Batch::concat(schema, &batches)?, span.unwrap_or_default()))
    }
}

/// True for failures that mean "this replica is unreachable right
/// now" rather than "this request is wrong".
pub fn is_availability_error(e: &GisError) -> bool {
    matches!(e, GisError::Network(_) | GisError::Unavailable(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalAdapter;
    use gis_net::{BreakerConfig, SimClock};
    use gis_storage::RowStore;
    use gis_types::{DataType, Field, Schema, Value};

    fn adapter() -> Arc<RelationalAdapter> {
        let a = RelationalAdapter::new("crm");
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref();
        a.add_table(RowStore::new("customers", schema, Some(0)).unwrap());
        a.load(
            "customers",
            (0..50i64).map(|i| vec![Value::Int64(i), Value::Utf8(format!("c{i}"))]),
        )
        .unwrap();
        Arc::new(a)
    }

    fn group(clock: &SimClock, conditions: &[NetworkConditions]) -> SourceGroup {
        let a = adapter();
        let mut replicas = conditions.iter().enumerate().map(|(i, c)| {
            let name = if i == 0 {
                "crm".to_string()
            } else {
                format!("crm@r{i}")
            };
            RemoteSource::new(a.clone(), Link::new(name, *c, clock.clone()))
        });
        let mut g = SourceGroup::new(replicas.next().unwrap());
        for r in replicas {
            g.push_replica(r);
        }
        g
    }

    fn scan_all() -> SourceRequest {
        SourceRequest::Scan {
            table: "customers".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        }
    }

    #[test]
    fn routes_to_cheapest_replica() {
        let clock = SimClock::new();
        let g = group(
            &clock,
            &[NetworkConditions::wan(), NetworkConditions::lan()],
        );
        assert_eq!(g.best_conditions(), NetworkConditions::lan());
        let schema = g.adapter().table_schema("customers").unwrap();
        let batch = g.execute_all(&scan_all(), schema, None).unwrap();
        assert_eq!(batch.num_rows(), 50);
        assert_eq!(g.replicas()[0].link().metrics().messages(), 0);
        assert!(g.replicas()[1].link().metrics().messages() > 0);
    }

    #[test]
    fn fails_over_when_preferred_replica_is_partitioned() {
        let clock = SimClock::new();
        let g = group(
            &clock,
            &[NetworkConditions::lan(), NetworkConditions::wan()],
        );
        g.replicas()[0].link().faults().partition();
        let schema = g.adapter().table_schema("customers").unwrap();
        let (batch, span) = g.execute_all_traced(&scan_all(), schema, None).unwrap();
        assert_eq!(batch.num_rows(), 50, "answered by the surviving replica");
        assert!(span.find("event:failover[crm NETWORK]").is_some());
        assert_eq!(g.replicas()[0].link().metrics().failures(), 3);
    }

    #[test]
    fn open_breaker_demotes_a_replica_in_routing_order() {
        let clock = SimClock::new();
        let g = group(
            &clock,
            &[NetworkConditions::lan(), NetworkConditions::wan()],
        );
        g.replicas()[0].link().breaker().set_config(BreakerConfig {
            failure_threshold: 1,
            cooldown_us: 1_000_000,
        });
        g.replicas()[0].link().faults().partition();
        // Trip the breaker on the fast replica.
        let schema = g.adapter().table_schema("customers").unwrap();
        g.execute_all(&scan_all(), schema.clone(), None).unwrap();
        assert_eq!(g.replicas()[0].link().breaker_state(), BreakerState::Open);
        // Now the wan replica is preferred — the partitioned lan one
        // is not even probed (zero additional failures).
        let before = g.replicas()[0].link().metrics().failures();
        assert_eq!(g.best_conditions(), NetworkConditions::wan());
        g.execute_all(&scan_all(), schema, None).unwrap();
        assert_eq!(g.replicas()[0].link().metrics().failures(), before);
    }

    #[test]
    fn all_replicas_down_returns_last_availability_error() {
        let clock = SimClock::new();
        let g = group(
            &clock,
            &[NetworkConditions::instant(), NetworkConditions::instant()],
        );
        for r in g.replicas() {
            r.link().faults().partition();
        }
        let schema = g.adapter().table_schema("customers").unwrap();
        let err = g.execute_all(&scan_all(), schema, None).unwrap_err();
        assert!(is_availability_error(&err));
        assert_eq!(g.replicas()[0].link().metrics().failures(), 3);
        assert_eq!(g.replicas()[1].link().metrics().failures(), 3);
    }

    #[test]
    fn logical_errors_do_not_fail_over() {
        let clock = SimClock::new();
        let g = group(
            &clock,
            &[NetworkConditions::instant(), NetworkConditions::instant()],
        );
        let bad = SourceRequest::Scan {
            table: "no_such_table".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        let schema = g.adapter().table_schema("customers").unwrap();
        let err = g.execute_all(&bad, schema, None).unwrap_err();
        assert!(!is_availability_error(&err));
        // The second replica never saw the request.
        assert_eq!(g.replicas()[1].link().metrics().messages(), 0);
        assert_eq!(g.replicas()[1].link().metrics().failures(), 0);
    }
}
