//! Wire serialization of [`SourceRequest`]s.
//!
//! The request is the *other half* of what a federated plan ships —
//! bind-joins in particular can send large key sets source-ward, and
//! the strategy crossover experiments (F1/F4) hinge on counting those
//! bytes as honestly as the response bytes.

use crate::request::{AggFunc, AggSpec, SortSpec, SourceRequest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_net::wire::{decode_value, encode_value, get_uvarint, put_uvarint};
use gis_storage::{CmpOp, ScanPredicate};
use gis_types::{GisError, Result};

fn put_string(buf: &mut BytesMut, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(GisError::Network("truncated request".into()));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| GisError::Network("invalid UTF-8 in request".into()))
}

fn put_ordinals(buf: &mut BytesMut, ords: &[usize]) {
    put_uvarint(buf, ords.len() as u64);
    for &o in ords {
        put_uvarint(buf, o as u64);
    }
}

fn get_ordinals(buf: &mut Bytes) -> Result<Vec<usize>> {
    let n = get_uvarint(buf)? as usize;
    (0..n).map(|_| Ok(get_uvarint(buf)? as usize)).collect()
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::NotEq => 1,
        CmpOp::Lt => 2,
        CmpOp::LtEq => 3,
        CmpOp::Gt => 4,
        CmpOp::GtEq => 5,
    }
}

fn tag_cmp(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::NotEq,
        2 => CmpOp::Lt,
        3 => CmpOp::LtEq,
        4 => CmpOp::Gt,
        5 => CmpOp::GtEq,
        other => return Err(GisError::Network(format!("unknown comparison tag {other}"))),
    })
}

fn agg_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn tag_agg(tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        other => return Err(GisError::Network(format!("unknown aggregate tag {other}"))),
    })
}

fn put_predicates(buf: &mut BytesMut, preds: &[ScanPredicate]) {
    put_uvarint(buf, preds.len() as u64);
    for p in preds {
        put_uvarint(buf, p.column as u64);
        buf.put_u8(cmp_tag(p.op));
        encode_value(buf, &p.value);
    }
}

fn get_predicates(buf: &mut Bytes) -> Result<Vec<ScanPredicate>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let column = get_uvarint(buf)? as usize;
        if !buf.has_remaining() {
            return Err(GisError::Network("truncated request".into()));
        }
        let op = tag_cmp(buf.get_u8())?;
        let value = decode_value(buf)?;
        out.push(ScanPredicate { column, op, value });
    }
    Ok(out)
}

/// Encodes a request to its wire frame.
pub fn encode_request(req: &SourceRequest) -> Bytes {
    let mut buf = BytesMut::new();
    match req {
        SourceRequest::Scan {
            table,
            predicates,
            projection,
            sort,
            limit,
        } => {
            buf.put_u8(0);
            put_string(&mut buf, table);
            put_predicates(&mut buf, predicates);
            put_ordinals(&mut buf, projection);
            put_uvarint(&mut buf, sort.len() as u64);
            for s in sort {
                put_uvarint(&mut buf, s.column as u64);
                buf.put_u8(u8::from(s.asc) | (u8::from(s.nulls_first) << 1));
            }
            match limit {
                Some(l) => {
                    buf.put_u8(1);
                    put_uvarint(&mut buf, *l);
                }
                None => buf.put_u8(0),
            }
        }
        SourceRequest::Aggregate {
            table,
            predicates,
            group_by,
            aggregates,
        } => {
            buf.put_u8(1);
            put_string(&mut buf, table);
            put_predicates(&mut buf, predicates);
            put_ordinals(&mut buf, group_by);
            put_uvarint(&mut buf, aggregates.len() as u64);
            for a in aggregates {
                buf.put_u8(agg_tag(a.func));
                match a.column {
                    Some(c) => {
                        buf.put_u8(1);
                        put_uvarint(&mut buf, c as u64);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        SourceRequest::Join {
            left_table,
            right_table,
            left_keys,
            right_keys,
            left_predicates,
            right_predicates,
            left_projection,
            right_projection,
        } => {
            buf.put_u8(3);
            put_string(&mut buf, left_table);
            put_string(&mut buf, right_table);
            put_ordinals(&mut buf, left_keys);
            put_ordinals(&mut buf, right_keys);
            put_predicates(&mut buf, left_predicates);
            put_predicates(&mut buf, right_predicates);
            put_ordinals(&mut buf, left_projection);
            put_ordinals(&mut buf, right_projection);
        }
        SourceRequest::Lookup {
            table,
            key_columns,
            keys,
            projection,
        } => {
            buf.put_u8(2);
            put_string(&mut buf, table);
            put_ordinals(&mut buf, key_columns);
            put_uvarint(&mut buf, keys.len() as u64);
            for key in keys {
                put_uvarint(&mut buf, key.len() as u64);
                for v in key {
                    encode_value(&mut buf, v);
                }
            }
            put_ordinals(&mut buf, projection);
        }
    }
    buf.freeze()
}

/// Decodes a request frame.
pub fn decode_request(mut buf: Bytes) -> Result<SourceRequest> {
    if !buf.has_remaining() {
        return Err(GisError::Network("empty request".into()));
    }
    let kind = buf.get_u8();
    let req = match kind {
        0 => {
            let table = get_string(&mut buf)?;
            let predicates = get_predicates(&mut buf)?;
            let projection = get_ordinals(&mut buf)?;
            let n_sort = get_uvarint(&mut buf)? as usize;
            let mut sort = Vec::with_capacity(n_sort.min(64));
            for _ in 0..n_sort {
                let column = get_uvarint(&mut buf)? as usize;
                if !buf.has_remaining() {
                    return Err(GisError::Network("truncated request".into()));
                }
                let flags = buf.get_u8();
                sort.push(SortSpec {
                    column,
                    asc: flags & 1 != 0,
                    nulls_first: flags & 2 != 0,
                });
            }
            if !buf.has_remaining() {
                return Err(GisError::Network("truncated request".into()));
            }
            let limit = if buf.get_u8() != 0 {
                Some(get_uvarint(&mut buf)?)
            } else {
                None
            };
            SourceRequest::Scan {
                table,
                predicates,
                projection,
                sort,
                limit,
            }
        }
        1 => {
            let table = get_string(&mut buf)?;
            let predicates = get_predicates(&mut buf)?;
            let group_by = get_ordinals(&mut buf)?;
            let n = get_uvarint(&mut buf)? as usize;
            let mut aggregates = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                if buf.remaining() < 2 {
                    return Err(GisError::Network("truncated request".into()));
                }
                let func = tag_agg(buf.get_u8())?;
                let column = if buf.get_u8() != 0 {
                    Some(get_uvarint(&mut buf)? as usize)
                } else {
                    None
                };
                aggregates.push(AggSpec { func, column });
            }
            SourceRequest::Aggregate {
                table,
                predicates,
                group_by,
                aggregates,
            }
        }
        2 => {
            let table = get_string(&mut buf)?;
            let key_columns = get_ordinals(&mut buf)?;
            let n_keys = get_uvarint(&mut buf)? as usize;
            let mut keys = Vec::with_capacity(n_keys.min(1 << 16));
            for _ in 0..n_keys {
                let w = get_uvarint(&mut buf)? as usize;
                let mut key = Vec::with_capacity(w.min(16));
                for _ in 0..w {
                    key.push(decode_value(&mut buf)?);
                }
                keys.push(key);
            }
            let projection = get_ordinals(&mut buf)?;
            SourceRequest::Lookup {
                table,
                key_columns,
                keys,
                projection,
            }
        }
        3 => {
            let left_table = get_string(&mut buf)?;
            let right_table = get_string(&mut buf)?;
            let left_keys = get_ordinals(&mut buf)?;
            let right_keys = get_ordinals(&mut buf)?;
            let left_predicates = get_predicates(&mut buf)?;
            let right_predicates = get_predicates(&mut buf)?;
            let left_projection = get_ordinals(&mut buf)?;
            let right_projection = get_ordinals(&mut buf)?;
            SourceRequest::Join {
                left_table,
                right_table,
                left_keys,
                right_keys,
                left_predicates,
                right_predicates,
                left_projection,
                right_projection,
            }
        }
        other => return Err(GisError::Network(format!("unknown request kind {other}"))),
    };
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes after request".into()));
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::Value;

    fn roundtrip(req: SourceRequest) {
        let bytes = encode_request(&req);
        let back = decode_request(bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn scan_roundtrip() {
        roundtrip(SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![
                ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(10)),
                ScanPredicate::new(2, CmpOp::Eq, Value::Utf8("x".into())),
            ],
            projection: vec![0, 3],
            sort: vec![
                SortSpec {
                    column: 1,
                    asc: false,
                    nulls_first: true,
                },
                SortSpec {
                    column: 0,
                    asc: true,
                    nulls_first: false,
                },
            ],
            limit: Some(100),
        });
        roundtrip(SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        });
    }

    #[test]
    fn aggregate_roundtrip() {
        roundtrip(SourceRequest::Aggregate {
            table: "orders".into(),
            predicates: vec![ScanPredicate::new(1, CmpOp::Lt, Value::Float64(5.0))],
            group_by: vec![2, 0],
            aggregates: vec![
                AggSpec {
                    func: AggFunc::Count,
                    column: None,
                },
                AggSpec {
                    func: AggFunc::Avg,
                    column: Some(3),
                },
            ],
        });
    }

    #[test]
    fn lookup_roundtrip() {
        roundtrip(SourceRequest::Lookup {
            table: "stock".into(),
            key_columns: vec![0, 1],
            keys: vec![
                vec![Value::Int64(1), Value::Utf8("e".into())],
                vec![Value::Int64(2), Value::Null],
            ],
            projection: vec![2],
        });
    }

    #[test]
    fn join_roundtrip() {
        roundtrip(SourceRequest::Join {
            left_table: "employees".into(),
            right_table: "departments".into(),
            left_keys: vec![1],
            right_keys: vec![0],
            left_predicates: vec![ScanPredicate::new(3, CmpOp::Gt, Value::Int64(60_000))],
            right_predicates: vec![],
            left_projection: vec![2, 1],
            right_projection: vec![1],
        });
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let bytes = encode_request(&SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Eq, Value::Int64(1))],
            projection: vec![],
            sort: vec![],
            limit: Some(5),
        });
        for cut in 0..bytes.len() {
            assert!(decode_request(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        let mut extended = BytesMut::from(&bytes[..]);
        extended.put_u8(7);
        assert!(decode_request(extended.freeze()).is_err());
        assert!(decode_request(Bytes::from_static(&[9])).is_err());
    }

    #[test]
    fn key_bytes_scale_with_key_count() {
        let small = encode_request(&SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![0],
            keys: (0..10i64).map(|i| vec![Value::Int64(i)]).collect(),
            projection: vec![],
        });
        let large = encode_request(&SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![0],
            keys: (0..1000i64).map(|i| vec![Value::Int64(i)]).collect(),
            projection: vec![],
        });
        assert!(large.len() > small.len() * 50);
    }
}
