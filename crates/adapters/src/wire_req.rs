//! Wire serialization of [`SourceRequest`]s.
//!
//! The request is the *other half* of what a federated plan ships —
//! bind-joins in particular can send large key sets source-ward, and
//! the strategy crossover experiments (F1/F4) hinge on counting those
//! bytes as honestly as the response bytes.

use crate::request::{AggFunc, AggSpec, SortSpec, SourceRequest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_net::wire::{
    decode_value, encode_value, get_ivarint, get_uvarint, put_ivarint, put_uvarint,
};
use gis_net::KeyBloom;
use gis_storage::{CmpOp, ScanPredicate};
use gis_types::{GisError, Result, Value};

fn put_string(buf: &mut BytesMut, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(GisError::Network("truncated request".into()));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| GisError::Network("invalid UTF-8 in request".into()))
}

fn put_ordinals(buf: &mut BytesMut, ords: &[usize]) {
    put_uvarint(buf, ords.len() as u64);
    for &o in ords {
        put_uvarint(buf, o as u64);
    }
}

fn get_ordinals(buf: &mut Bytes) -> Result<Vec<usize>> {
    let n = get_uvarint(buf)? as usize;
    (0..n).map(|_| Ok(get_uvarint(buf)? as usize)).collect()
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::NotEq => 1,
        CmpOp::Lt => 2,
        CmpOp::LtEq => 3,
        CmpOp::Gt => 4,
        CmpOp::GtEq => 5,
    }
}

fn tag_cmp(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::NotEq,
        2 => CmpOp::Lt,
        3 => CmpOp::LtEq,
        4 => CmpOp::Gt,
        5 => CmpOp::GtEq,
        other => return Err(GisError::Network(format!("unknown comparison tag {other}"))),
    })
}

fn agg_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn tag_agg(tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        other => return Err(GisError::Network(format!("unknown aggregate tag {other}"))),
    })
}

fn put_predicates(buf: &mut BytesMut, preds: &[ScanPredicate]) {
    put_uvarint(buf, preds.len() as u64);
    for p in preds {
        put_uvarint(buf, p.column as u64);
        buf.put_u8(cmp_tag(p.op));
        encode_value(buf, &p.value);
    }
}

fn get_predicates(buf: &mut Bytes) -> Result<Vec<ScanPredicate>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let column = get_uvarint(buf)? as usize;
        if !buf.has_remaining() {
            return Err(GisError::Network("truncated request".into()));
        }
        let op = tag_cmp(buf.get_u8())?;
        let value = decode_value(buf)?;
        out.push(ScanPredicate { column, op, value });
    }
    Ok(out)
}

/// Encodes a request to its wire frame.
pub fn encode_request(req: &SourceRequest) -> Bytes {
    let mut buf = BytesMut::new();
    match req {
        SourceRequest::Scan {
            table,
            predicates,
            projection,
            sort,
            limit,
        } => {
            buf.put_u8(0);
            put_string(&mut buf, table);
            put_predicates(&mut buf, predicates);
            put_ordinals(&mut buf, projection);
            put_uvarint(&mut buf, sort.len() as u64);
            for s in sort {
                put_uvarint(&mut buf, s.column as u64);
                buf.put_u8(u8::from(s.asc) | (u8::from(s.nulls_first) << 1));
            }
            match limit {
                Some(l) => {
                    buf.put_u8(1);
                    put_uvarint(&mut buf, *l);
                }
                None => buf.put_u8(0),
            }
        }
        SourceRequest::Aggregate {
            table,
            predicates,
            group_by,
            aggregates,
        } => {
            buf.put_u8(1);
            put_string(&mut buf, table);
            put_predicates(&mut buf, predicates);
            put_ordinals(&mut buf, group_by);
            put_uvarint(&mut buf, aggregates.len() as u64);
            for a in aggregates {
                buf.put_u8(agg_tag(a.func));
                match a.column {
                    Some(c) => {
                        buf.put_u8(1);
                        put_uvarint(&mut buf, c as u64);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        SourceRequest::Join {
            left_table,
            right_table,
            left_keys,
            right_keys,
            left_predicates,
            right_predicates,
            left_projection,
            right_projection,
        } => {
            buf.put_u8(3);
            put_string(&mut buf, left_table);
            put_string(&mut buf, right_table);
            put_ordinals(&mut buf, left_keys);
            put_ordinals(&mut buf, right_keys);
            put_predicates(&mut buf, left_predicates);
            put_predicates(&mut buf, right_predicates);
            put_ordinals(&mut buf, left_projection);
            put_ordinals(&mut buf, right_projection);
        }
        SourceRequest::Lookup {
            table,
            key_columns,
            keys,
            projection,
        } => {
            if let Some((tag, vals)) = sorted_int_keys(key_columns, keys) {
                // Sorted single-integer key lists (the semijoin path
                // sorts and dedups before shipping) get the compact
                // delta layout: first key absolute, then the gaps.
                buf.put_u8(5);
                put_string(&mut buf, table);
                put_uvarint(&mut buf, key_columns[0] as u64);
                buf.put_u8(tag);
                put_uvarint(&mut buf, vals.len() as u64);
                put_ivarint(&mut buf, vals[0]);
                for w in vals.windows(2) {
                    put_uvarint(&mut buf, w[1].wrapping_sub(w[0]) as u64);
                }
                put_ordinals(&mut buf, projection);
            } else {
                buf.put_u8(2);
                put_string(&mut buf, table);
                put_ordinals(&mut buf, key_columns);
                put_uvarint(&mut buf, keys.len() as u64);
                for key in keys {
                    put_uvarint(&mut buf, key.len() as u64);
                    for v in key {
                        encode_value(&mut buf, v);
                    }
                }
                put_ordinals(&mut buf, projection);
            }
        }
        SourceRequest::LookupFilter {
            table,
            key_columns,
            bloom,
            projection,
        } => {
            buf.put_u8(4);
            put_string(&mut buf, table);
            put_ordinals(&mut buf, key_columns);
            buf.put_slice(&bloom.encode());
            put_ordinals(&mut buf, projection);
        }
    }
    buf.freeze()
}

/// Recognizes key lists eligible for the tag-5 delta layout: one
/// integer key column, ≥2 keys, sorted ascending, no NULLs. Returns
/// the type tag and the widened values.
fn sorted_int_keys(key_columns: &[usize], keys: &[Vec<Value>]) -> Option<(u8, Vec<i64>)> {
    if key_columns.len() != 1 || keys.len() < 2 {
        return None;
    }
    let tag = match keys[0].first()? {
        Value::Int32(_) => 0u8,
        Value::Int64(_) => 1,
        Value::Date(_) => 2,
        Value::Timestamp(_) => 3,
        _ => return None,
    };
    let mut vals: Vec<i64> = Vec::with_capacity(keys.len());
    for key in keys {
        if key.len() != 1 {
            return None;
        }
        let v = match (tag, &key[0]) {
            (0, Value::Int32(v)) => i64::from(*v),
            (1, Value::Int64(v)) => *v,
            (2, Value::Date(v)) => i64::from(*v),
            (3, Value::Timestamp(v)) => *v,
            _ => return None,
        };
        if vals.last().is_some_and(|&prev| v < prev) {
            return None;
        }
        vals.push(v);
    }
    Some((tag, vals))
}

fn delta_key_value(tag: u8, v: i64) -> Result<Value> {
    Ok(match tag {
        0 => Value::Int32(
            i32::try_from(v).map_err(|_| GisError::Network("32-bit lookup key overflow".into()))?,
        ),
        1 => Value::Int64(v),
        2 => Value::Date(
            i32::try_from(v).map_err(|_| GisError::Network("32-bit lookup key overflow".into()))?,
        ),
        3 => Value::Timestamp(v),
        other => {
            return Err(GisError::Network(format!(
                "unknown lookup key type tag {other}"
            )))
        }
    })
}

/// Decodes a request frame.
pub fn decode_request(mut buf: Bytes) -> Result<SourceRequest> {
    if !buf.has_remaining() {
        return Err(GisError::Network("empty request".into()));
    }
    let kind = buf.get_u8();
    let req = match kind {
        0 => {
            let table = get_string(&mut buf)?;
            let predicates = get_predicates(&mut buf)?;
            let projection = get_ordinals(&mut buf)?;
            let n_sort = get_uvarint(&mut buf)? as usize;
            let mut sort = Vec::with_capacity(n_sort.min(64));
            for _ in 0..n_sort {
                let column = get_uvarint(&mut buf)? as usize;
                if !buf.has_remaining() {
                    return Err(GisError::Network("truncated request".into()));
                }
                let flags = buf.get_u8();
                sort.push(SortSpec {
                    column,
                    asc: flags & 1 != 0,
                    nulls_first: flags & 2 != 0,
                });
            }
            if !buf.has_remaining() {
                return Err(GisError::Network("truncated request".into()));
            }
            let limit = if buf.get_u8() != 0 {
                Some(get_uvarint(&mut buf)?)
            } else {
                None
            };
            SourceRequest::Scan {
                table,
                predicates,
                projection,
                sort,
                limit,
            }
        }
        1 => {
            let table = get_string(&mut buf)?;
            let predicates = get_predicates(&mut buf)?;
            let group_by = get_ordinals(&mut buf)?;
            let n = get_uvarint(&mut buf)? as usize;
            let mut aggregates = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                if buf.remaining() < 2 {
                    return Err(GisError::Network("truncated request".into()));
                }
                let func = tag_agg(buf.get_u8())?;
                let column = if buf.get_u8() != 0 {
                    Some(get_uvarint(&mut buf)? as usize)
                } else {
                    None
                };
                aggregates.push(AggSpec { func, column });
            }
            SourceRequest::Aggregate {
                table,
                predicates,
                group_by,
                aggregates,
            }
        }
        2 => {
            let table = get_string(&mut buf)?;
            let key_columns = get_ordinals(&mut buf)?;
            let n_keys = get_uvarint(&mut buf)? as usize;
            let mut keys = Vec::with_capacity(n_keys.min(1 << 16));
            for _ in 0..n_keys {
                let w = get_uvarint(&mut buf)? as usize;
                let mut key = Vec::with_capacity(w.min(16));
                for _ in 0..w {
                    key.push(decode_value(&mut buf)?);
                }
                keys.push(key);
            }
            let projection = get_ordinals(&mut buf)?;
            SourceRequest::Lookup {
                table,
                key_columns,
                keys,
                projection,
            }
        }
        4 => {
            let table = get_string(&mut buf)?;
            let key_columns = get_ordinals(&mut buf)?;
            let bloom = KeyBloom::decode(&mut buf)?;
            let projection = get_ordinals(&mut buf)?;
            SourceRequest::LookupFilter {
                table,
                key_columns,
                bloom,
                projection,
            }
        }
        5 => {
            let table = get_string(&mut buf)?;
            let key_column = get_uvarint(&mut buf)? as usize;
            if !buf.has_remaining() {
                return Err(GisError::Network("truncated request".into()));
            }
            let tag = buf.get_u8();
            let n_keys = get_uvarint(&mut buf)? as usize;
            if n_keys < 2 {
                return Err(GisError::Network(
                    "delta key list needs at least two keys".into(),
                ));
            }
            // Each delta costs ≥1 byte on the wire, so the claimed
            // count is bounded by what's actually in the frame.
            if n_keys > buf.remaining().saturating_add(1) {
                return Err(GisError::Network("truncated request".into()));
            }
            let mut prev = get_ivarint(&mut buf)?;
            let mut keys = Vec::with_capacity(n_keys);
            keys.push(vec![delta_key_value(tag, prev)?]);
            for _ in 1..n_keys {
                prev = prev.wrapping_add(get_uvarint(&mut buf)? as i64);
                keys.push(vec![delta_key_value(tag, prev)?]);
            }
            let projection = get_ordinals(&mut buf)?;
            SourceRequest::Lookup {
                table,
                key_columns: vec![key_column],
                keys,
                projection,
            }
        }
        3 => {
            let left_table = get_string(&mut buf)?;
            let right_table = get_string(&mut buf)?;
            let left_keys = get_ordinals(&mut buf)?;
            let right_keys = get_ordinals(&mut buf)?;
            let left_predicates = get_predicates(&mut buf)?;
            let right_predicates = get_predicates(&mut buf)?;
            let left_projection = get_ordinals(&mut buf)?;
            let right_projection = get_ordinals(&mut buf)?;
            SourceRequest::Join {
                left_table,
                right_table,
                left_keys,
                right_keys,
                left_predicates,
                right_predicates,
                left_projection,
                right_projection,
            }
        }
        other => return Err(GisError::Network(format!("unknown request kind {other}"))),
    };
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes after request".into()));
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::Value;

    fn roundtrip(req: SourceRequest) {
        let bytes = encode_request(&req);
        let back = decode_request(bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn scan_roundtrip() {
        roundtrip(SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![
                ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(10)),
                ScanPredicate::new(2, CmpOp::Eq, Value::Utf8("x".into())),
            ],
            projection: vec![0, 3],
            sort: vec![
                SortSpec {
                    column: 1,
                    asc: false,
                    nulls_first: true,
                },
                SortSpec {
                    column: 0,
                    asc: true,
                    nulls_first: false,
                },
            ],
            limit: Some(100),
        });
        roundtrip(SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: None,
        });
    }

    #[test]
    fn aggregate_roundtrip() {
        roundtrip(SourceRequest::Aggregate {
            table: "orders".into(),
            predicates: vec![ScanPredicate::new(1, CmpOp::Lt, Value::Float64(5.0))],
            group_by: vec![2, 0],
            aggregates: vec![
                AggSpec {
                    func: AggFunc::Count,
                    column: None,
                },
                AggSpec {
                    func: AggFunc::Avg,
                    column: Some(3),
                },
            ],
        });
    }

    #[test]
    fn lookup_roundtrip() {
        roundtrip(SourceRequest::Lookup {
            table: "stock".into(),
            key_columns: vec![0, 1],
            keys: vec![
                vec![Value::Int64(1), Value::Utf8("e".into())],
                vec![Value::Int64(2), Value::Null],
            ],
            projection: vec![2],
        });
    }

    #[test]
    fn join_roundtrip() {
        roundtrip(SourceRequest::Join {
            left_table: "employees".into(),
            right_table: "departments".into(),
            left_keys: vec![1],
            right_keys: vec![0],
            left_predicates: vec![ScanPredicate::new(3, CmpOp::Gt, Value::Int64(60_000))],
            right_predicates: vec![],
            left_projection: vec![2, 1],
            right_projection: vec![1],
        });
    }

    #[test]
    fn lookup_filter_roundtrip() {
        let mut bloom = KeyBloom::sized_for(100, 0.01);
        for i in 0..100i64 {
            bloom.insert(KeyBloom::hash_key(&[Value::Int64(i)]));
        }
        let req = SourceRequest::LookupFilter {
            table: "stock".into(),
            key_columns: vec![0],
            bloom,
            projection: vec![1, 2],
        };
        roundtrip(req.clone());
        // Hostile: every truncation errors, never panics.
        let bytes = encode_request(&req);
        for cut in 0..bytes.len() {
            assert!(decode_request(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn sorted_int_keys_ship_as_deltas() {
        // Sorted single-int keys round-trip through the delta layout.
        let sorted = SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![3],
            keys: (0..1000i64)
                .map(|i| vec![Value::Int64(i * 7 + 1_000_000)])
                .collect(),
            projection: vec![0, 2],
        };
        let frame = encode_request(&sorted);
        assert_eq!(frame[0], 5, "sorted int keys take the delta layout");
        assert_eq!(decode_request(frame.clone()).unwrap(), sorted);

        // And cost far fewer bytes than the generic layout the same
        // keys take when shipped unsorted.
        let mut shuffled_keys: Vec<Vec<Value>> = (0..1000i64)
            .map(|i| vec![Value::Int64(i * 7 + 1_000_000)])
            .collect();
        shuffled_keys.reverse();
        let unsorted = SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![3],
            keys: shuffled_keys,
            projection: vec![0, 2],
        };
        let generic = encode_request(&unsorted);
        assert_eq!(
            generic[0], 2,
            "unsorted keys fall back to the generic layout"
        );
        assert!(
            frame.len() * 2 < generic.len(),
            "delta layout {} vs generic {}",
            frame.len(),
            generic.len()
        );

        // Truncations of the delta layout error, never panic.
        for cut in 0..frame.len().min(64) {
            assert!(decode_request(frame.slice(0..cut)).is_err(), "cut {cut}");
        }

        // Other key shapes keep the generic layout.
        for keys in [
            vec![vec![Value::Utf8("a".into())], vec![Value::Utf8("b".into())]],
            vec![vec![Value::Int64(1), Value::Int64(2)]],
            vec![vec![Value::Null], vec![Value::Int64(1)]],
        ] {
            let req = SourceRequest::Lookup {
                table: "t".into(),
                key_columns: vec![0; keys[0].len()],
                keys,
                projection: vec![],
            };
            assert_eq!(encode_request(&req)[0], 2);
            roundtrip(req);
        }

        // Extremes survive the wrapping delta arithmetic.
        let extreme = SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![0],
            keys: vec![
                vec![Value::Int64(i64::MIN)],
                vec![Value::Int64(0)],
                vec![Value::Int64(i64::MAX)],
            ],
            projection: vec![],
        };
        roundtrip(extreme);
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let bytes = encode_request(&SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Eq, Value::Int64(1))],
            projection: vec![],
            sort: vec![],
            limit: Some(5),
        });
        for cut in 0..bytes.len() {
            assert!(decode_request(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        let mut extended = BytesMut::from(&bytes[..]);
        extended.put_u8(7);
        assert!(decode_request(extended.freeze()).is_err());
        assert!(decode_request(Bytes::from_static(&[9])).is_err());
    }

    #[test]
    fn key_bytes_scale_with_key_count() {
        let small = encode_request(&SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![0],
            keys: (0..10i64).map(|i| vec![Value::Int64(i)]).collect(),
            projection: vec![],
        });
        let large = encode_request(&SourceRequest::Lookup {
            table: "t".into(),
            key_columns: vec![0],
            keys: (0..1000i64).map(|i| vec![Value::Int64(i)]).collect(),
            projection: vec![],
        });
        assert!(large.len() > small.len() * 50);
    }
}
