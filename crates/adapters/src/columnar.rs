//! The columnar adapter: wraps a set of [`ColumnStore`] tables.
//!
//! Models a scan-oriented analytics engine: filters (accelerated by
//! zone maps), projections and limits execute at the source, but
//! joins, aggregates and sorts do not — the mediator must do those.
//! Parameterized lookups are served as repeated equality scans, which
//! zone maps keep cheap when the key column is clustered.

use crate::request::{SourceAdapter, SourceRequest};
use gis_catalog::CapabilityProfile;
use gis_storage::{CmpOp, ColumnStore, ScanPredicate, TableStats};
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A scan-only analytics component system backed by column stores.
pub struct ColumnarAdapter {
    name: String,
    tables: RwLock<BTreeMap<String, ColumnStore>>,
    data_version: std::sync::atomic::AtomicU64,
}

impl ColumnarAdapter {
    /// An empty source named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnarAdapter {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            data_version: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&self, store: ColumnStore) {
        let key = store.name().to_ascii_lowercase();
        self.tables.write().insert(key, store);
        self.bump_data_version();
    }

    /// Appends rows to a table.
    pub fn load(&self, table: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut tables = self.tables.write();
        let store = tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| self.no_table(table))?;
        let n = store.append_many(rows)?;
        drop(tables);
        self.bump_data_version();
        Ok(n)
    }

    fn bump_data_version(&self) {
        self.data_version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn no_table(&self, table: &str) -> GisError {
        GisError::Storage(format!("source '{}' has no table '{table}'", self.name))
    }
}

impl SourceAdapter for ColumnarAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn data_version(&self) -> u64 {
        self.data_version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn kind(&self) -> &'static str {
        "columnar"
    }

    fn capabilities(&self) -> CapabilityProfile {
        CapabilityProfile::scan_only()
    }

    fn tables(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(|t| t.schema().clone())
            .ok_or_else(|| self.no_table(table))
    }

    fn collect_stats(&self, table: &str) -> Result<TableStats> {
        let mut tables = self.tables.write();
        tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| self.no_table(table))?
            .collect_stats()
    }

    fn collect_stats_sampled(
        &self,
        table: &str,
        spec: &gis_stats::SampleSpec,
    ) -> Result<TableStats> {
        let mut tables = self.tables.write();
        tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| self.no_table(table))?
            .collect_stats_sampled(spec)
    }

    fn execute(&self, request: &SourceRequest) -> Result<Vec<Batch>> {
        request.check_capabilities(&self.capabilities())?;
        let key = request.table().to_ascii_lowercase();
        // Seal any append buffer under a short exclusive lock, then
        // scan under shared access — concurrent queries against one
        // column store must not serialize on a write lock.
        {
            let tables = self.tables.read();
            let store = tables
                .get(&key)
                .ok_or_else(|| self.no_table(request.table()))?;
            if store.unsealed_rows() > 0 {
                drop(tables);
                let mut tables = self.tables.write();
                if let Some(store) = tables.get_mut(&key) {
                    store.seal()?;
                }
            }
        }
        let tables = self.tables.read();
        let store = tables
            .get(&key)
            .ok_or_else(|| self.no_table(request.table()))?;
        match request {
            SourceRequest::Scan {
                predicates,
                projection,
                limit,
                ..
            } => {
                let (batch, _metrics) =
                    store.scan_sealed(predicates, projection, limit.map(|l| l as usize))?;
                Ok(vec![batch])
            }
            SourceRequest::Aggregate { .. } => Err(GisError::Unsupported(format!(
                "columnar source '{}' cannot aggregate",
                self.name
            ))),
            SourceRequest::Join { .. } => Err(GisError::Unsupported(format!(
                "columnar source '{}' cannot join",
                self.name
            ))),
            SourceRequest::Lookup {
                key_columns,
                keys,
                projection,
                ..
            } => {
                let mut parts = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for key in keys {
                    if key.len() != key_columns.len() {
                        return Err(GisError::Internal("lookup key width mismatch".into()));
                    }
                    if !seen.insert(key.clone()) || key.iter().any(Value::is_null) {
                        continue;
                    }
                    let preds: Vec<ScanPredicate> = key_columns
                        .iter()
                        .zip(key)
                        .map(|(&c, v)| ScanPredicate::new(c, CmpOp::Eq, v.clone()))
                        .collect();
                    let (batch, _) = store.scan_sealed(&preds, projection, None)?;
                    if batch.num_rows() > 0 {
                        parts.push(batch);
                    }
                }
                let out_schema = request.output_schema(store.schema())?;
                Ok(vec![Batch::concat(out_schema, &parts)?])
            }
            SourceRequest::LookupFilter {
                key_columns,
                bloom,
                projection,
                ..
            } => {
                let (all, _) = store.scan_sealed(&[], &[], None)?;
                crate::relational::filter_by_bloom(&all, key_columns, bloom, projection, || {
                    request.output_schema(store.schema())
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};

    fn adapter() -> ColumnarAdapter {
        let a = ColumnarAdapter::new("sales");
        let schema = Schema::new(vec![
            Field::required("order_id", DataType::Int64),
            Field::new("day", DataType::Int64),
            Field::new("amount", DataType::Float64),
        ])
        .into_ref();
        a.add_table(ColumnStore::with_segment_rows("orders", schema, 64));
        a.load(
            "orders",
            (0..512i64).map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i / 8),
                    Value::Float64((i % 100) as f64),
                ]
            }),
        )
        .unwrap();
        a
    }

    #[test]
    fn scan_filters_and_projects() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![
                ScanPredicate::new(1, CmpOp::GtEq, Value::Int64(10)),
                ScanPredicate::new(1, CmpOp::Lt, Value::Int64(12)),
            ],
            projection: vec![0],
            sort: vec![],
            limit: None,
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 16);
        assert_eq!(b.num_columns(), 1);
    }

    #[test]
    fn aggregates_rejected() {
        let a = adapter();
        let req = SourceRequest::Aggregate {
            table: "orders".into(),
            predicates: vec![],
            group_by: vec![],
            aggregates: vec![],
        };
        let err = a.execute(&req).unwrap_err();
        assert_eq!(err.code(), "UNSUPPORTED");
    }

    #[test]
    fn sorts_rejected_by_capability_check() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "orders".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![crate::request::SortSpec {
                column: 0,
                asc: true,
                nulls_first: true,
            }],
            limit: None,
        };
        assert!(a.execute(&req).is_err());
    }

    #[test]
    fn lookup_as_repeated_scans() {
        let a = adapter();
        let req = SourceRequest::Lookup {
            table: "orders".into(),
            key_columns: vec![0],
            keys: vec![vec![Value::Int64(5)], vec![Value::Int64(400)]],
            projection: vec![],
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 2);
    }

    #[test]
    fn stats_and_schema() {
        let a = adapter();
        let s = a.collect_stats("orders").unwrap();
        assert_eq!(s.row_count, 512);
        assert_eq!(a.table_schema("orders").unwrap().len(), 3);
    }
}
