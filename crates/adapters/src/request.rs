//! The fragment protocol: what the mediator may ask a source.
//!
//! Requests reference the source's **export schema** by column
//! ordinal — the mediator translates global names source-ward before
//! shipping (see `gis-core`'s decomposer). A request that exceeds the
//! adapter's capability profile is answered with
//! [`GisError::Unsupported`]; the optimizer is responsible for never
//! generating one.

use gis_catalog::CapabilityProfile;
use gis_net::KeyBloom;
use gis_storage::{ScanPredicate, TableStats};
use gis_types::{Batch, DataType, Field, GisError, Result, Schema, SchemaRef, Value};

/// Aggregate functions a capable source can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// Result type given the input column type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int64,
            AggFunc::Sum => {
                if input.is_integer() {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            AggFunc::Min | AggFunc::Max => input,
            AggFunc::Avg => DataType::Float64,
        }
    }

    /// Lowercase SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate in a pushed-down aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column ordinal in the export schema; `None` means
    /// `COUNT(*)`.
    pub column: Option<usize>,
}

/// One sort key in a pushed-down sort. The ordinal refers to the
/// request's **output schema** (i.e. after projection), since the
/// source sorts what it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Output-schema column ordinal.
    pub column: usize,
    /// Ascending when true.
    pub asc: bool,
    /// NULLs before values when true.
    pub nulls_first: bool,
}

/// A request the mediator ships to a source adapter.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceRequest {
    /// Scan a table with optional native filtering, projection,
    /// ordering and row limit.
    Scan {
        /// Table name within the source.
        table: String,
        /// Conjunctive predicates over export ordinals.
        predicates: Vec<ScanPredicate>,
        /// Export ordinals to return (empty = all).
        projection: Vec<usize>,
        /// Pushed sort keys (empty = unordered).
        sort: Vec<SortSpec>,
        /// Row limit.
        limit: Option<u64>,
    },
    /// Grouped aggregation, fully evaluated at the source.
    Aggregate {
        /// Table name within the source.
        table: String,
        /// Pre-aggregation filter.
        predicates: Vec<ScanPredicate>,
        /// Group-by export ordinals.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggregates: Vec<AggSpec>,
    },
    /// Batched parameterized lookup (the bind-join protocol): return
    /// rows whose `key_columns` tuple equals any of `keys`.
    Lookup {
        /// Table name within the source.
        table: String,
        /// Export ordinals forming the lookup key.
        key_columns: Vec<usize>,
        /// Key tuples to match.
        keys: Vec<Vec<Value>>,
        /// Export ordinals to return (empty = all).
        projection: Vec<usize>,
    },
    /// Bloom-filtered semijoin lookup: return rows whose
    /// `key_columns` tuple *may* be in the shipped filter. The source
    /// probes the filter instead of receiving explicit keys, so the
    /// request stays small no matter how many distinct keys the
    /// mediator holds; false positives ship extra rows that the
    /// mediator's residual join discards.
    LookupFilter {
        /// Table name within the source.
        table: String,
        /// Export ordinals forming the lookup key.
        key_columns: Vec<usize>,
        /// Bloom filter over key-tuple hashes
        /// ([`KeyBloom::hash_key`]).
        bloom: KeyBloom,
        /// Export ordinals to return (empty = all).
        projection: Vec<usize>,
    },
    /// An inner equi-join of two **co-located** tables, evaluated
    /// entirely at the source; only the joined result ships.
    Join {
        /// Left table name.
        left_table: String,
        /// Right table name.
        right_table: String,
        /// Join keys: export ordinals into the left table.
        left_keys: Vec<usize>,
        /// Join keys: export ordinals into the right table.
        right_keys: Vec<usize>,
        /// Pre-join filter on the left table.
        left_predicates: Vec<ScanPredicate>,
        /// Pre-join filter on the right table.
        right_predicates: Vec<ScanPredicate>,
        /// Left export ordinals to return (empty = all).
        left_projection: Vec<usize>,
        /// Right export ordinals to return (empty = all).
        right_projection: Vec<usize>,
    },
}

impl SourceRequest {
    /// Short operator label for spans and plan trees, e.g.
    /// `scan[customers]` or `join[orders+items]`.
    pub fn label(&self) -> String {
        match self {
            SourceRequest::Scan { table, .. } => format!("scan[{table}]"),
            SourceRequest::Aggregate { table, .. } => format!("agg[{table}]"),
            SourceRequest::Lookup { table, keys, .. } => {
                format!("lookup[{table} keys={}]", keys.len())
            }
            SourceRequest::LookupFilter { table, bloom, .. } => {
                format!("filter[{table} bloom={}B]", bloom.size_bytes())
            }
            SourceRequest::Join {
                left_table,
                right_table,
                ..
            } => format!("join[{left_table}+{right_table}]"),
        }
    }

    /// The (primary) table this request targets; the left table for
    /// co-located joins.
    pub fn table(&self) -> &str {
        match self {
            SourceRequest::Scan { table, .. }
            | SourceRequest::Aggregate { table, .. }
            | SourceRequest::Lookup { table, .. }
            | SourceRequest::LookupFilter { table, .. } => table,
            SourceRequest::Join { left_table, .. } => left_table,
        }
    }

    /// The schema of the batches this request returns, given the
    /// table's export schema. Both mediator and adapter derive it
    /// from this single function so they can never disagree.
    pub fn output_schema(&self, export: &Schema) -> Result<SchemaRef> {
        match self {
            SourceRequest::Scan { projection, .. }
            | SourceRequest::Lookup { projection, .. }
            | SourceRequest::LookupFilter { projection, .. } => {
                if projection.is_empty() {
                    Ok(Schema::new(export.fields().to_vec()).into_ref())
                } else {
                    check_ordinals(projection, export.len())?;
                    Ok(export.project(projection).into_ref())
                }
            }
            SourceRequest::Join { .. } => Err(GisError::Internal(
                "join requests derive their schema via join_output_schema".into(),
            )),
            SourceRequest::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                check_ordinals(group_by, export.len())?;
                let mut fields: Vec<Field> =
                    group_by.iter().map(|&g| export.field(g).clone()).collect();
                for (i, a) in aggregates.iter().enumerate() {
                    let in_type = match a.column {
                        Some(c) => {
                            check_ordinals(&[c], export.len())?;
                            export.field(c).data_type
                        }
                        None => DataType::Int64,
                    };
                    fields.push(Field::new(
                        format!("{}_{i}", a.func.name()),
                        a.func.output_type(in_type),
                    ));
                }
                Ok(Schema::new(fields).into_ref())
            }
        }
    }

    /// Validates this request against a capability profile,
    /// returning `Unsupported` on the first violation.
    pub fn check_capabilities(&self, caps: &CapabilityProfile) -> Result<()> {
        let unsupported = |what: &str| Err(GisError::Unsupported(format!("source cannot {what}")));
        match self {
            SourceRequest::Scan {
                predicates,
                projection,
                sort,
                limit,
                ..
            } => {
                if !predicates.is_empty() && !caps.filter {
                    return unsupported("filter");
                }
                if !caps.range_filter && predicates.iter().any(|p| p.op != gis_storage::CmpOp::Eq) {
                    return unsupported("evaluate non-equality filters");
                }
                if !projection.is_empty() && !caps.project {
                    return unsupported("project");
                }
                if !sort.is_empty() && !caps.sort {
                    return unsupported("sort");
                }
                if limit.is_some() && !caps.limit {
                    return unsupported("limit");
                }
                Ok(())
            }
            SourceRequest::Aggregate { .. } => {
                if caps.aggregate {
                    Ok(())
                } else {
                    unsupported("aggregate")
                }
            }
            SourceRequest::Lookup { projection, .. } => {
                if !caps.bind_lookup {
                    return unsupported("serve parameterized lookups");
                }
                if !projection.is_empty() && !caps.project {
                    return unsupported("project");
                }
                Ok(())
            }
            SourceRequest::LookupFilter { projection, .. } => {
                if !caps.filter_lookup {
                    return unsupported("probe semijoin filters");
                }
                if !projection.is_empty() && !caps.project {
                    return unsupported("project");
                }
                Ok(())
            }
            SourceRequest::Join {
                left_keys,
                right_keys,
                ..
            } => {
                if !caps.join {
                    return unsupported("join co-located tables");
                }
                if left_keys.is_empty() || left_keys.len() != right_keys.len() {
                    return Err(GisError::Internal(
                        "co-located join needs matching non-empty key lists".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Output schema of a co-located [`SourceRequest::Join`]: the
    /// projected left fields followed by the projected right fields
    /// (right-side fields re-qualified by table name to keep lookups
    /// unambiguous).
    pub fn join_output_schema(
        &self,
        left_export: &Schema,
        right_export: &Schema,
    ) -> Result<SchemaRef> {
        let SourceRequest::Join {
            left_table,
            right_table,
            left_projection,
            right_projection,
            ..
        } = self
        else {
            return Err(GisError::Internal(
                "join_output_schema on a non-join request".into(),
            ));
        };
        let side = |export: &Schema, proj: &[usize], table: &str| -> Result<Vec<Field>> {
            let ords: Vec<usize> = if proj.is_empty() {
                (0..export.len()).collect()
            } else {
                check_ordinals(proj, export.len())?;
                proj.to_vec()
            };
            Ok(ords
                .iter()
                .map(|&o| export.field(o).clone().with_qualifier(table))
                .collect())
        };
        let mut fields = side(left_export, left_projection, left_table)?;
        fields.extend(side(right_export, right_projection, right_table)?);
        Ok(Schema::new(fields).into_ref())
    }
}

fn check_ordinals(ordinals: &[usize], width: usize) -> Result<()> {
    for &o in ordinals {
        if o >= width {
            return Err(GisError::Internal(format!(
                "request ordinal {o} out of range for {width}-column export schema"
            )));
        }
    }
    Ok(())
}

/// The wrapper interface every component system implements.
///
/// `execute` runs entirely inside the source (no network); byte and
/// latency accounting happens in [`crate::remote::RemoteSource`],
/// which serializes requests and responses across a metered link.
pub trait SourceAdapter: Send + Sync {
    /// Source name (unique within a federation).
    fn name(&self) -> &str;

    /// Human-readable engine kind (`"relational"`, `"columnar"`,
    /// `"kv"`).
    fn kind(&self) -> &'static str;

    /// What this source can execute natively.
    fn capabilities(&self) -> CapabilityProfile;

    /// Tables this source exports.
    fn tables(&self) -> Vec<String>;

    /// Export schema of a table.
    fn table_schema(&self, table: &str) -> Result<SchemaRef>;

    /// Collects fresh statistics for a table (run at registration).
    fn collect_stats(&self, table: &str) -> Result<TableStats>;

    /// Collects statistics under a sampling instruction (ANALYZE).
    /// The default ignores the spec and scans everything — correct for
    /// relational sources, whose pushdown machinery touches every row
    /// anyway; engines with a cheaper native sampling unit (columnar
    /// segments, ordered KV ranges) override this.
    fn collect_stats_sampled(
        &self,
        table: &str,
        spec: &gis_stats::SampleSpec,
    ) -> Result<TableStats> {
        let _ = spec;
        self.collect_stats(table)
    }

    /// Executes a fragment request, returning result batches in
    /// [`SourceRequest::output_schema`] layout.
    fn execute(&self, request: &SourceRequest) -> Result<Vec<Batch>>;

    /// Executes a request *and* reports the source-side operator span
    /// (rows produced, time spent at the source). The default wraps
    /// [`SourceAdapter::execute`] with a single `remote:` span;
    /// adapters with internal operator structure may override to
    /// report a richer subtree. The span ships back to the mediator
    /// over the wire, so component systems describe their own work —
    /// the mediator never guesses.
    fn execute_traced(&self, request: &SourceRequest) -> Result<(Vec<Batch>, gis_observe::Span)> {
        let started = std::time::Instant::now();
        let batches = self.execute(request)?;
        let rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
        let span = gis_observe::Span::leaf(format!("remote:{}", request.label()))
            .with_rows_out(rows)
            .with_wall_us(started.elapsed().as_micros() as u64);
        Ok((batches, span))
    }

    /// A monotonically increasing counter the adapter bumps on every
    /// data mutation (loads, table replacement, in-place edits).
    /// Result caches pin the versions they read; a bumped version
    /// invalidates the cached rows. Sources that cannot detect their
    /// own mutations may keep the default `0`, which marks their data
    /// uncacheable-but-consistent (version never changes, so stale
    /// reads are indistinguishable from autonomy).
    fn data_version(&self) -> u64 {
        0
    }

    /// Which of `predicates` this source would evaluate natively in a
    /// scan of `table`. The default derives from the capability
    /// profile alone; adapters with *structural* limits (e.g. a KV
    /// store that only filters on key-prefix columns) override it.
    /// The mediator keeps unpushable predicates on its side.
    fn pushable_predicates(&self, table: &str, predicates: &[ScanPredicate]) -> Vec<bool> {
        let _ = table;
        let caps = self.capabilities();
        predicates
            .iter()
            .map(|p| caps.filter && (caps.range_filter || p.op == gis_storage::CmpOp::Eq))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_storage::CmpOp;

    fn export() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ])
    }

    #[test]
    fn scan_output_schema_projects() {
        let req = SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![],
            projection: vec![2, 0],
            sort: vec![],
            limit: None,
        };
        let s = req.output_schema(&export()).unwrap();
        assert_eq!(s.field(0).name, "amount");
        assert_eq!(s.field(1).name, "id");
        let bad = SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![],
            projection: vec![9],
            sort: vec![],
            limit: None,
        };
        assert!(bad.output_schema(&export()).is_err());
    }

    #[test]
    fn aggregate_output_schema_types() {
        let req = SourceRequest::Aggregate {
            table: "t".into(),
            predicates: vec![],
            group_by: vec![1],
            aggregates: vec![
                AggSpec {
                    func: AggFunc::Count,
                    column: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    column: Some(0),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    column: Some(2),
                },
                AggSpec {
                    func: AggFunc::Min,
                    column: Some(2),
                },
            ],
        };
        let s = req.output_schema(&export()).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.field(0).name, "region");
        assert_eq!(s.field(1).data_type, DataType::Int64); // count
        assert_eq!(s.field(2).data_type, DataType::Int64); // sum of int
        assert_eq!(s.field(3).data_type, DataType::Float64); // avg
        assert_eq!(s.field(4).data_type, DataType::Float64); // min of float
    }

    #[test]
    fn capability_checks() {
        let scan = SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Lt, Value::Int64(5))],
            projection: vec![0],
            sort: vec![],
            limit: Some(1),
        };
        assert!(scan
            .check_capabilities(&CapabilityProfile::full_sql())
            .is_ok());
        assert!(scan
            .check_capabilities(&CapabilityProfile::dump_only())
            .is_err());
        // kv: no projection
        let e = scan
            .check_capabilities(&CapabilityProfile::key_value())
            .unwrap_err();
        assert!(e.to_string().contains("project"));
        let agg = SourceRequest::Aggregate {
            table: "t".into(),
            predicates: vec![],
            group_by: vec![],
            aggregates: vec![],
        };
        assert!(agg
            .check_capabilities(&CapabilityProfile::scan_only())
            .is_err());
    }

    #[test]
    fn equality_only_sources_reject_ranges() {
        let mut caps = CapabilityProfile::key_value();
        caps.range_filter = false;
        let range_scan = SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Lt, Value::Int64(5))],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        assert!(range_scan.check_capabilities(&caps).is_err());
        let eq_scan = SourceRequest::Scan {
            table: "t".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Eq, Value::Int64(5))],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        assert!(eq_scan.check_capabilities(&caps).is_ok());
    }
}
