//! Wire serialization of ANALYZE requests and statistics frames.
//!
//! Statistics collection crosses the same metered links as query
//! traffic, so both halves of the exchange are real frames: the
//! request carries the table name and a [`SampleSpec`], the response
//! carries the full [`TableStats`] — sketched NDV, histogram bounds,
//! and MCV lists included — and the link prices every byte. The
//! request kind byte (6) shares the namespace of
//! [`crate::wire_req::encode_request`] so a source can dispatch on the
//! first byte of any frame.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gis_net::wire::{decode_value, encode_value, get_uvarint, put_uvarint};
use gis_stats::{Histogram, McvList, SampleMode, SampleSpec};
use gis_storage::{ColumnStats, TableStats};
use gis_types::{GisError, Result, Value};

/// Request kind byte, after [`crate::wire_req`]'s tags 0–5.
pub const ANALYZE_KIND: u8 = 6;

fn truncated() -> GisError {
    GisError::Network("truncated stats frame".into())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(truncated());
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| GisError::Network("invalid UTF-8 in stats frame".into()))
}

fn put_opt_value(buf: &mut BytesMut, v: &Option<Value>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            encode_value(buf, v);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_value(buf: &mut Bytes) -> Result<Option<Value>> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(decode_value(buf)?)),
        other => Err(GisError::Network(format!(
            "bad option tag {other} in stats frame"
        ))),
    }
}

fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(truncated());
    }
    Ok(buf.get_f64_le())
}

/// Encodes an `ANALYZE table` request frame.
pub fn encode_analyze_request(table: &str, spec: &SampleSpec) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(ANALYZE_KIND);
    put_string(&mut buf, table);
    buf.put_u8(spec.mode.tag());
    put_uvarint(&mut buf, spec.target_rows);
    put_uvarint(&mut buf, spec.seed);
    buf.freeze()
}

/// Decodes an ANALYZE request frame.
pub fn decode_analyze_request(mut buf: Bytes) -> Result<(String, SampleSpec)> {
    if !buf.has_remaining() {
        return Err(GisError::Network("empty request".into()));
    }
    let kind = buf.get_u8();
    if kind != ANALYZE_KIND {
        return Err(GisError::Network(format!(
            "unknown analyze request kind {kind}"
        )));
    }
    let table = get_string(&mut buf)?;
    if !buf.has_remaining() {
        return Err(truncated());
    }
    let mode = SampleMode::from_tag(buf.get_u8())?;
    let target_rows = get_uvarint(&mut buf)?;
    let seed = get_uvarint(&mut buf)?;
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes in request".into()));
    }
    Ok((
        table,
        SampleSpec {
            mode,
            target_rows,
            seed,
        },
    ))
}

/// Encodes a [`TableStats`] response frame.
pub fn encode_stats_frame(stats: &TableStats) -> Bytes {
    let mut buf = BytesMut::new();
    put_uvarint(&mut buf, stats.row_count);
    put_uvarint(&mut buf, stats.columns.len() as u64);
    for c in &stats.columns {
        put_opt_value(&mut buf, &c.min);
        put_opt_value(&mut buf, &c.max);
        put_uvarint(&mut buf, c.null_count);
        put_uvarint(&mut buf, c.ndv);
        buf.put_f64_le(c.avg_width);
        match &c.histogram {
            Some(h) => {
                buf.put_u8(1);
                put_uvarint(&mut buf, h.bounds.len() as u64);
                for b in &h.bounds {
                    encode_value(&mut buf, b);
                }
            }
            None => buf.put_u8(0),
        }
        match &c.mcv {
            Some(m) => {
                buf.put_u8(1);
                put_uvarint(&mut buf, m.entries.len() as u64);
                for (v, f) in &m.entries {
                    encode_value(&mut buf, v);
                    buf.put_f64_le(*f);
                }
            }
            None => buf.put_u8(0),
        }
    }
    buf.freeze()
}

/// Decodes a [`TableStats`] response frame.
pub fn decode_stats_frame(mut buf: Bytes) -> Result<TableStats> {
    let row_count = get_uvarint(&mut buf)?;
    let ncols = get_uvarint(&mut buf)? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let min = get_opt_value(&mut buf)?;
        let max = get_opt_value(&mut buf)?;
        let null_count = get_uvarint(&mut buf)?;
        let ndv = get_uvarint(&mut buf)?;
        let avg_width = get_f64(&mut buf)?;
        if !buf.has_remaining() {
            return Err(truncated());
        }
        let histogram = match buf.get_u8() {
            0 => None,
            1 => {
                let n = get_uvarint(&mut buf)? as usize;
                let mut bounds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    bounds.push(decode_value(&mut buf)?);
                }
                if bounds.len() < 2 {
                    return Err(GisError::Network("histogram with <2 bounds".into()));
                }
                Some(Histogram { bounds })
            }
            other => {
                return Err(GisError::Network(format!(
                    "bad histogram tag {other} in stats frame"
                )))
            }
        };
        if !buf.has_remaining() {
            return Err(truncated());
        }
        let mcv = match buf.get_u8() {
            0 => None,
            1 => {
                let n = get_uvarint(&mut buf)? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let v = decode_value(&mut buf)?;
                    let f = get_f64(&mut buf)?;
                    entries.push((v, f));
                }
                Some(McvList { entries })
            }
            other => {
                return Err(GisError::Network(format!(
                    "bad mcv tag {other} in stats frame"
                )))
            }
        };
        columns.push(ColumnStats {
            min,
            max,
            null_count,
            ndv,
            avg_width,
            histogram,
            mcv,
        });
    }
    if buf.has_remaining() {
        return Err(GisError::Network("trailing bytes in stats frame".into()));
    }
    Ok(TableStats { row_count, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_stats::SampleMode;
    use gis_storage::StatsCollector;

    fn rich_stats() -> TableStats {
        let mut c = StatsCollector::new(3);
        for i in 0..500i64 {
            let skew = if i % 3 == 0 { 1 } else { i };
            let s = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Utf8(format!("name-{i:03}"))
            };
            c.observe_row(&[Value::Int64(i), Value::Int64(skew), s]);
        }
        c.finish()
    }

    #[test]
    fn analyze_request_roundtrips() {
        for mode in [SampleMode::Full, SampleMode::Page, SampleMode::Range] {
            let spec = SampleSpec {
                mode,
                target_rows: 5000,
                seed: 42,
            };
            let frame = encode_analyze_request("orders", &spec);
            let (table, got) = decode_analyze_request(frame).unwrap();
            assert_eq!(table, "orders");
            assert_eq!(got, spec);
        }
    }

    #[test]
    fn stats_frame_roundtrips_rich_stats() {
        let stats = rich_stats();
        assert!(stats.columns[0].histogram.is_some());
        assert!(stats.columns[1].mcv.is_some());
        let frame = encode_stats_frame(&stats);
        let got = decode_stats_frame(frame).unwrap();
        assert_eq!(got, stats);
    }

    #[test]
    fn stats_frame_roundtrips_empty() {
        let stats = TableStats::empty(4);
        let got = decode_stats_frame(encode_stats_frame(&stats)).unwrap();
        assert_eq!(got, stats);
    }

    #[test]
    fn hostile_truncation_never_panics() {
        let req = encode_analyze_request("orders", &SampleSpec::full());
        for cut in 0..req.len() {
            assert!(
                decode_analyze_request(req.slice(0..cut)).is_err(),
                "request prefix of {cut} bytes decoded"
            );
        }
        let frame = encode_stats_frame(&rich_stats());
        for cut in 0..frame.len() {
            // Any strict prefix must error, never panic (a prefix can
            // never be valid: the trailing-bytes check catches short
            // reads that still parse).
            assert!(
                decode_stats_frame(frame.slice(0..cut)).is_err(),
                "stats prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_foreign_kind_and_trailing_bytes() {
        let mut bad = BytesMut::new();
        bad.put_u8(0); // Scan kind, not ANALYZE
        assert!(decode_analyze_request(bad.freeze()).is_err());

        let mut frame = BytesMut::from(&encode_stats_frame(&rich_stats())[..]);
        frame.put_u8(0xFF);
        assert!(decode_stats_frame(frame.freeze()).is_err());
    }
}
