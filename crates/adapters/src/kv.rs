//! The key-value adapter: wraps a set of [`KvStore`] tables.
//!
//! The least capable wrapper, standing in for the hierarchical /
//! flat-file systems a 1989 federation had to absorb. Structurally it
//! can only:
//!
//! * match an **equality prefix** of the key columns (`k1 = a AND
//!   k2 = b` when `(k1, k2, ...)` is the key), or
//! * apply a **range on the first key column** when no equality on
//!   it is present,
//! * serve parameterized lookups on a key prefix.
//!
//! Everything else — non-key predicates, projections, aggregates —
//! is declined via [`SourceAdapter::pushable_predicates`] and
//! capability checks, leaving the work to the mediator. Experiment
//! T4 measures exactly this asymmetry.

use crate::request::{SourceAdapter, SourceRequest};
use gis_catalog::CapabilityProfile;
use gis_storage::{CmpOp, KvStore, ScanPredicate, TableStats};
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A key-value component system.
pub struct KvAdapter {
    name: String,
    tables: RwLock<BTreeMap<String, KvStore>>,
    data_version: std::sync::atomic::AtomicU64,
}

impl KvAdapter {
    /// An empty source named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KvAdapter {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            data_version: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&self, store: KvStore) {
        let key = store.name().to_ascii_lowercase();
        self.tables.write().insert(key, store);
        self.bump_data_version();
    }

    /// Puts rows into a table.
    pub fn load(&self, table: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut tables = self.tables.write();
        let store = tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| self.no_table(table))?;
        let mut n = 0;
        for row in rows {
            store.put(row)?;
            n += 1;
        }
        drop(tables);
        self.bump_data_version();
        Ok(n)
    }

    fn bump_data_version(&self) {
        self.data_version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn no_table(&self, table: &str) -> GisError {
        GisError::Storage(format!("source '{}' has no table '{table}'", self.name))
    }

    /// True when `v` can be an order-preserving encoded key component.
    /// Float64 (e.g. a folded `x < 831 / 7` bound) is not: the byte
    /// encoding has no float form, and a fractional bound on an
    /// integer key would not be order-exact — such predicates stay
    /// mediator-side residuals over a wider scan.
    fn key_encodable(v: &Value) -> bool {
        matches!(
            v,
            Value::Int32(_)
                | Value::Int64(_)
                | Value::Date(_)
                | Value::Timestamp(_)
                | Value::Utf8(_)
        )
    }

    /// Classifies predicates into the natively servable plan:
    /// `(eq_prefix_len, range_low, range_high, accepted_mask)`.
    fn classify(
        key_width: usize,
        predicates: &[ScanPredicate],
    ) -> (Vec<Value>, Option<Value>, Option<Value>, Vec<bool>) {
        let mut accepted = vec![false; predicates.len()];
        // Longest all-equality key prefix.
        let mut prefix: Vec<Value> = Vec::new();
        for key_col in 0..key_width {
            let found = predicates.iter().position(|p| {
                p.column == key_col && p.op == CmpOp::Eq && Self::key_encodable(&p.value)
            });
            match found {
                Some(i) => {
                    accepted[i] = true;
                    prefix.push(predicates[i].value.clone());
                }
                None => break,
            }
        }
        // Range on the first key column, only when it has no equality.
        let mut lo = None;
        let mut hi = None;
        if prefix.is_empty() {
            for (i, p) in predicates.iter().enumerate() {
                if p.column != 0 || !Self::key_encodable(&p.value) {
                    continue;
                }
                match p.op {
                    // Half-open range scan: inclusive bounds only are
                    // exact; Gt/LtEq conservatively widen and the
                    // residual predicate (kept mediator-side because
                    // `accepted` stays false) re-filters.
                    CmpOp::GtEq if lo.is_none() => {
                        lo = Some(p.value.clone());
                        accepted[i] = true;
                    }
                    CmpOp::Lt if hi.is_none() => {
                        hi = Some(p.value.clone());
                        accepted[i] = true;
                    }
                    _ => {}
                }
            }
        }
        (prefix, lo, hi, accepted)
    }
}

impl SourceAdapter for KvAdapter {
    fn name(&self) -> &str {
        &self.name
    }

    fn data_version(&self) -> u64 {
        self.data_version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn kind(&self) -> &'static str {
        "kv"
    }

    fn capabilities(&self) -> CapabilityProfile {
        CapabilityProfile::key_value()
    }

    fn tables(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(|t| t.schema().clone())
            .ok_or_else(|| self.no_table(table))
    }

    fn collect_stats(&self, table: &str) -> Result<TableStats> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(KvStore::collect_stats)
            .ok_or_else(|| self.no_table(table))
    }

    fn collect_stats_sampled(
        &self,
        table: &str,
        spec: &gis_stats::SampleSpec,
    ) -> Result<TableStats> {
        let tables = self.tables.read();
        tables
            .get(&table.to_ascii_lowercase())
            .map(|s| s.collect_stats_sampled(spec))
            .ok_or_else(|| self.no_table(table))
    }

    fn pushable_predicates(&self, table: &str, predicates: &[ScanPredicate]) -> Vec<bool> {
        let tables = self.tables.read();
        match tables.get(&table.to_ascii_lowercase()) {
            Some(store) => Self::classify(store.key_width(), predicates).3,
            None => vec![false; predicates.len()],
        }
    }

    fn execute(&self, request: &SourceRequest) -> Result<Vec<Batch>> {
        request.check_capabilities(&self.capabilities())?;
        let tables = self.tables.read();
        let store = tables
            .get(&request.table().to_ascii_lowercase())
            .ok_or_else(|| self.no_table(request.table()))?;
        match request {
            SourceRequest::Scan {
                predicates, limit, ..
            } => {
                let (prefix, lo, hi, accepted) = Self::classify(store.key_width(), predicates);
                if accepted.iter().any(|a| !a) {
                    return Err(GisError::Unsupported(format!(
                        "kv source '{}' cannot evaluate non-key predicates",
                        self.name
                    )));
                }
                let limit = limit.map(|l| l as usize);
                let batch = if !prefix.is_empty() {
                    store.scan_prefix(&prefix, limit)?
                } else if lo.is_some() || hi.is_some() {
                    store.scan_range(lo.as_ref(), hi.as_ref(), limit)?
                } else {
                    store.scan_all(limit)?
                };
                Ok(vec![batch])
            }
            SourceRequest::Aggregate { .. } => Err(GisError::Unsupported(format!(
                "kv source '{}' cannot aggregate",
                self.name
            ))),
            SourceRequest::Join { .. } => Err(GisError::Unsupported(format!(
                "kv source '{}' cannot join",
                self.name
            ))),
            SourceRequest::Lookup {
                key_columns, keys, ..
            } => {
                // Keys must address a key prefix, in order.
                let is_prefix = key_columns.iter().enumerate().all(|(i, &c)| c == i)
                    && key_columns.len() <= store.key_width();
                if !is_prefix || key_columns.is_empty() {
                    return Err(GisError::Unsupported(format!(
                        "kv source '{}' only serves lookups on a key prefix",
                        self.name
                    )));
                }
                let mut parts = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for key in keys {
                    if !seen.insert(key.clone()) || key.iter().any(Value::is_null) {
                        continue;
                    }
                    let batch = if key.len() == store.key_width() {
                        // Full-key point get.
                        match store.get(key)? {
                            Some(row) => Batch::from_rows(store.schema().clone(), &[row.to_vec()])?,
                            None => continue,
                        }
                    } else {
                        store.scan_prefix(key, None)?
                    };
                    if batch.num_rows() > 0 {
                        parts.push(batch);
                    }
                }
                Ok(vec![Batch::concat(store.schema().clone(), &parts)?])
            }
            // check_capabilities rejects these first (key_value
            // profiles never advertise filter_lookup).
            SourceRequest::LookupFilter { .. } => Err(GisError::Unsupported(format!(
                "kv source '{}' cannot probe semijoin filters",
                self.name
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};

    fn adapter() -> KvAdapter {
        let a = KvAdapter::new("inventory");
        let schema = Schema::new(vec![
            Field::required("sku", DataType::Int64),
            Field::required("warehouse", DataType::Utf8),
            Field::new("qty", DataType::Int64),
        ])
        .into_ref();
        a.add_table(KvStore::new("stock", schema, 2).unwrap());
        let rows = (0..20i64).flat_map(|sku| {
            ["e", "w"].into_iter().map(move |w| {
                vec![
                    Value::Int64(sku),
                    Value::Utf8(w.into()),
                    Value::Int64(sku * 10),
                ]
            })
        });
        a.load("stock", rows).unwrap();
        a
    }

    #[test]
    fn eq_prefix_scan() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: vec![ScanPredicate::new(0, CmpOp::Eq, Value::Int64(7))],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 2);
    }

    #[test]
    fn full_key_equality() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: vec![
                ScanPredicate::new(0, CmpOp::Eq, Value::Int64(7)),
                ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("w".into())),
            ],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.row_values(0)[2], Value::Int64(70));
    }

    #[test]
    fn range_on_first_key_column() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: vec![
                ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(18)),
                ScanPredicate::new(0, CmpOp::Lt, Value::Int64(20)),
            ],
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 4);
    }

    #[test]
    fn non_key_predicates_rejected() {
        let a = adapter();
        let preds = vec![
            ScanPredicate::new(0, CmpOp::Eq, Value::Int64(7)),
            ScanPredicate::new(2, CmpOp::Gt, Value::Int64(0)), // qty: not key
        ];
        assert_eq!(a.pushable_predicates("stock", &preds), vec![true, false]);
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: preds,
            projection: vec![],
            sort: vec![],
            limit: None,
        };
        assert!(a.execute(&req).is_err());
    }

    #[test]
    fn eq_on_second_key_without_first_not_pushable() {
        let a = adapter();
        let preds = vec![ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("w".into()))];
        assert_eq!(a.pushable_predicates("stock", &preds), vec![false]);
    }

    #[test]
    fn projection_rejected() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: vec![],
            projection: vec![0],
            sort: vec![],
            limit: None,
        };
        let err = a.execute(&req).unwrap_err();
        assert_eq!(err.code(), "UNSUPPORTED");
    }

    #[test]
    fn lookup_on_key_prefix_and_full_key() {
        let a = adapter();
        // prefix lookup (sku only)
        let req = SourceRequest::Lookup {
            table: "stock".into(),
            key_columns: vec![0],
            keys: vec![vec![Value::Int64(3)], vec![Value::Int64(3)]],
            projection: vec![],
        };
        let b = &a.execute(&req).unwrap()[0];
        assert_eq!(b.num_rows(), 2);
        // full key
        let req2 = SourceRequest::Lookup {
            table: "stock".into(),
            key_columns: vec![0, 1],
            keys: vec![
                vec![Value::Int64(3), Value::Utf8("e".into())],
                vec![Value::Int64(99), Value::Utf8("e".into())],
            ],
            projection: vec![],
        };
        let b2 = &a.execute(&req2).unwrap()[0];
        assert_eq!(b2.num_rows(), 1);
        // non-prefix lookup rejected
        let req3 = SourceRequest::Lookup {
            table: "stock".into(),
            key_columns: vec![1],
            keys: vec![vec![Value::Utf8("e".into())]],
            projection: vec![],
        };
        assert!(a.execute(&req3).is_err());
    }

    #[test]
    fn scan_all_with_limit() {
        let a = adapter();
        let req = SourceRequest::Scan {
            table: "stock".into(),
            predicates: vec![],
            projection: vec![],
            sort: vec![],
            limit: Some(5),
        };
        assert_eq!(a.execute(&req).unwrap()[0].num_rows(), 5);
    }
}
