//! # gis-views — mediator-side materialized views
//!
//! A federated mediator sits between a global schema and slow,
//! autonomous sources; the single biggest lever against WAN cost is
//! keeping query results *at the mediator* and answering later queries
//! from them. This crate provides that layer: named materialized
//! views, each defined by a global SQL query, holding a columnar
//! [`Batch`] plus the per-source `data_version`s that were current
//! when it was built.
//!
//! Staleness is tracked against **exactly the sources the view's plan
//! reads** — a write to an unrelated source never invalidates a view.
//! A stale view is not discarded: its definition (SQL + optimized
//! plan) stays registered and a refresh simply re-runs the plan, so
//! the cost of surviving a source write is proportional to the view's
//! own fragment, not to the whole workload.
//!
//! The crate is deliberately plan-agnostic: [`ViewRegistry<P>`] is
//! generic over the engine's plan type so it can live below `gis-core`
//! in the dependency graph. `gis-core` instantiates it with its
//! `LogicalPlan` and implements matching/rewriting; `gis-runtime`
//! drives interval refreshes and exports the gauges.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gis_types::{Batch, GisError, MemPool, Result, SchemaRef};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When a view's materialized rows are brought up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Only an explicit `REFRESH MATERIALIZED VIEW` re-materializes.
    /// A stale view is skipped by the matcher until then.
    Manual,
    /// A query that would be answered from this view refreshes it
    /// first if it is stale, then uses it.
    OnQueryIfStale,
    /// The runtime re-materializes the view every `every_us`
    /// microseconds of *virtual* (simulated-WAN clock) time, but only
    /// when the pinned source versions actually moved.
    Interval {
        /// Refresh period in virtual microseconds.
        every_us: u64,
    },
}

impl RefreshPolicy {
    /// Short label used in gauges and status rows.
    pub fn label(&self) -> String {
        match self {
            RefreshPolicy::Manual => "manual".into(),
            RefreshPolicy::OnQueryIfStale => "on-query".into(),
            RefreshPolicy::Interval { every_us } => format!("interval({every_us}us)"),
        }
    }
}

/// Freshness of a view's materialized rows relative to the current
/// per-source `data_version`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Staleness {
    /// Every source the view reads is still at the pinned version.
    Fresh,
    /// At least one source moved past the pinned version.
    Stale {
        /// Sources whose `data_version` no longer matches the pin.
        lagging: Vec<String>,
    },
    /// The view has never been materialized (or was explicitly
    /// invalidated) — there are no rows to serve.
    Empty,
}

impl Staleness {
    /// True only for [`Staleness::Fresh`].
    pub fn is_fresh(&self) -> bool {
        matches!(self, Staleness::Fresh)
    }
}

/// The materialized rows plus the provenance needed to judge them.
#[derive(Debug, Clone)]
pub struct MaterializedData {
    /// The view's rows, in the schema of its defining query.
    pub batch: Batch,
    /// `data_version` of each source the plan read, captured *before*
    /// the refresh executed — a write racing the refresh therefore
    /// leaves the view stale rather than falsely fresh.
    pub versions: BTreeMap<String, u64>,
    /// Virtual-clock timestamp when the refresh completed.
    pub built_at_us: u64,
    /// Monotonic refresh counter (1 = initial materialization).
    pub refresh_seq: u64,
}

/// The compiled side of a view: its optimized plan and what the plan
/// reads. Replaced wholesale when the catalog version moves and the
/// definition is re-bound.
#[derive(Debug)]
pub struct CompiledView<P> {
    /// The engine's optimized plan for the defining query.
    pub plan: Arc<P>,
    /// Output schema of the defining query.
    pub schema: SchemaRef,
    /// Sorted, deduplicated lowercase names of the sources the plan
    /// scans — the staleness domain.
    pub sources: Vec<String>,
    /// Catalog version the plan was bound against; a mismatch means
    /// the plan (not just the rows) is out of date.
    pub catalog_version: u64,
}

// Manual impl: the plan is behind an `Arc`, so cloning never needs
// `P: Clone` (derive would demand it anyway).
impl<P> Clone for CompiledView<P> {
    fn clone(&self) -> Self {
        CompiledView {
            plan: self.plan.clone(),
            schema: self.schema.clone(),
            sources: self.sources.clone(),
            catalog_version: self.catalog_version,
        }
    }
}

/// One named materialized view.
///
/// Generic over the engine's plan type `P`; this crate never inspects
/// the plan, it only stores it alongside the rows and the staleness
/// bookkeeping.
#[derive(Debug)]
pub struct MaterializedView<P> {
    name: String,
    sql: String,
    policy: RefreshPolicy,
    compiled: RwLock<CompiledView<P>>,
    data: RwLock<Option<MaterializedData>>,
    hits: AtomicU64,
    stale_skips: AtomicU64,
    refreshes: AtomicU64,
    refresh_rows: AtomicU64,
    /// The process memory pool resident rows are charged against
    /// (set by the registry when one is configured).
    pool: RwLock<Option<Arc<MemPool>>>,
    /// Bytes currently charged to the pool for this view's rows.
    pool_charged: AtomicU64,
}

impl<P> MaterializedView<P> {
    /// A new, not-yet-materialized view.
    pub fn new(
        name: impl Into<String>,
        sql: impl Into<String>,
        policy: RefreshPolicy,
        compiled: CompiledView<P>,
    ) -> Self {
        MaterializedView {
            name: name.into(),
            sql: sql.into(),
            policy,
            compiled: RwLock::new(compiled),
            data: RwLock::new(None),
            hits: AtomicU64::new(0),
            stale_skips: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            refresh_rows: AtomicU64::new(0),
            pool: RwLock::new(None),
            pool_charged: AtomicU64::new(0),
        }
    }

    /// Points the view at the process memory pool. Already-resident
    /// rows are charged immediately; later installs re-charge.
    fn attach_pool(&self, pool: Arc<MemPool>) {
        *self.pool.write() = Some(pool);
        let bytes = self
            .data
            .read()
            .as_ref()
            .map(|d| d.batch.wire_size() as u64)
            .unwrap_or(0);
        self.recharge(bytes);
    }

    /// Swaps the pool charge to `bytes` (releasing the old charge).
    /// Resident view rows cannot be refused or evicted at charge
    /// time, so the reservation is forced: under pressure the pool
    /// shows the overcommit and admission control squeezes new
    /// queries instead.
    fn recharge(&self, bytes: u64) {
        let guard = self.pool.read();
        let Some(pool) = guard.as_ref() else {
            return;
        };
        let old = self.pool_charged.swap(bytes, Ordering::Relaxed);
        pool.release(old);
        pool.reserve_forced(bytes);
    }

    /// The view's name (lowercase, mediator-scoped).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The refresh policy.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// Snapshot of the compiled plan side.
    pub fn compiled(&self) -> CompiledView<P> {
        self.compiled.read().clone()
    }

    /// Replaces the compiled plan (after a catalog change re-bind).
    pub fn recompile(&self, compiled: CompiledView<P>) {
        *self.compiled.write() = compiled;
    }

    /// Snapshot of the materialized rows, if any.
    pub fn data(&self) -> Option<MaterializedData> {
        self.data.read().clone()
    }

    /// Judges the materialized rows against the sources' *current*
    /// `data_version`s. A source missing from `current` (dropped from
    /// the federation) counts as lagging.
    pub fn staleness(&self, current: &BTreeMap<String, u64>) -> Staleness {
        let guard = self.data.read();
        let Some(data) = guard.as_ref() else {
            return Staleness::Empty;
        };
        let lagging: Vec<String> = data
            .versions
            .iter()
            .filter(|(src, pinned)| current.get(*src) != Some(pinned))
            .map(|(src, _)| src.clone())
            .collect();
        if lagging.is_empty() {
            Staleness::Fresh
        } else {
            Staleness::Stale { lagging }
        }
    }

    /// Installs freshly materialized rows. `versions` must have been
    /// captured before the refresh ran (see [`MaterializedData`]).
    pub fn install(&self, batch: Batch, versions: BTreeMap<String, u64>, built_at_us: u64) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.refresh_rows
            .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
        self.recharge(batch.wire_size() as u64);
        let mut guard = self.data.write();
        let seq = guard.as_ref().map(|d| d.refresh_seq).unwrap_or(0) + 1;
        *guard = Some(MaterializedData {
            batch,
            versions,
            built_at_us,
            refresh_seq: seq,
        });
    }

    /// Re-arms the interval timer without re-materializing — used when
    /// an interval fires but no pinned source version moved.
    pub fn touch(&self, now_us: u64) {
        if let Some(data) = self.data.write().as_mut() {
            data.built_at_us = now_us;
        }
    }

    /// True when an [`RefreshPolicy::Interval`] view's period has
    /// elapsed (or it was never materialized).
    pub fn interval_due(&self, now_us: u64) -> bool {
        let RefreshPolicy::Interval { every_us } = self.policy else {
            return false;
        };
        match self.data.read().as_ref() {
            None => true,
            Some(d) => now_us >= d.built_at_us.saturating_add(every_us),
        }
    }

    /// Records that the matcher answered a query from this view.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that the matcher would have used this view but skipped
    /// it because it was stale (and the policy forbade refreshing).
    pub fn record_stale_skip(&self) {
        self.stale_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot: (hits, stale skips, refreshes, rows refreshed).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.stale_skips.load(Ordering::Relaxed),
            self.refreshes.load(Ordering::Relaxed),
            self.refresh_rows.load(Ordering::Relaxed),
        )
    }
}

impl<P> Drop for MaterializedView<P> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.read().as_ref() {
            pool.release(self.pool_charged.load(Ordering::Relaxed));
        }
    }
}

/// One row of the registry's observability export, rendered by the
/// runtime as `gis_view_*` gauges.
#[derive(Debug, Clone)]
pub struct ViewGauges {
    /// View name.
    pub name: String,
    /// Refresh policy label.
    pub policy: String,
    /// 1 when fresh, 0 when stale or empty.
    pub fresh: u64,
    /// Number of sources whose `data_version` moved past the pin.
    pub lagging_sources: u64,
    /// Materialized row count (0 when empty).
    pub rows: u64,
    /// Materialized wire size in bytes (0 when empty).
    pub bytes: u64,
    /// Queries answered from this view.
    pub hits: u64,
    /// Times the matcher skipped this view because it was stale.
    pub stale_skips: u64,
    /// Completed (re-)materializations.
    pub refreshes: u64,
    /// Cumulative rows shipped by refreshes — the refresh cost.
    pub refresh_rows: u64,
}

/// The named-view registry a `Federation` owns.
#[derive(Debug, Default)]
pub struct ViewRegistry<P> {
    views: RwLock<BTreeMap<String, Arc<MaterializedView<P>>>>,
    mem_pool: RwLock<Option<Arc<MemPool>>>,
}

impl<P> ViewRegistry<P> {
    /// An empty registry.
    pub fn new() -> Self {
        ViewRegistry {
            views: RwLock::new(BTreeMap::new()),
            mem_pool: RwLock::new(None),
        }
    }

    /// Charges every view's resident rows against `pool` from now on
    /// (the runtime calls this once at startup). Views registered or
    /// refreshed later are charged on install.
    pub fn set_mem_pool(&self, pool: Arc<MemPool>) {
        *self.mem_pool.write() = Some(pool.clone());
        for view in self.all() {
            view.attach_pool(pool.clone());
        }
    }

    /// Registers `view` under its (lowercased) name. Errors if the
    /// name is taken.
    pub fn insert(&self, view: MaterializedView<P>) -> Result<Arc<MaterializedView<P>>> {
        let key = view.name().to_ascii_lowercase();
        let mut guard = self.views.write();
        if guard.contains_key(&key) {
            return Err(GisError::Catalog(format!(
                "materialized view '{key}' already exists"
            )));
        }
        let arc = Arc::new(view);
        if let Some(pool) = self.mem_pool.read().as_ref() {
            arc.attach_pool(pool.clone());
        }
        guard.insert(key, arc.clone());
        Ok(arc)
    }

    /// Looks up a view by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<Arc<MaterializedView<P>>> {
        self.views.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Drops a view. Errors if it does not exist.
    pub fn remove(&self, name: &str) -> Result<Arc<MaterializedView<P>>> {
        self.views
            .write()
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown materialized view '{name}'")))
    }

    /// All views, in name order.
    pub fn all(&self) -> Vec<Arc<MaterializedView<P>>> {
        self.views.read().values().cloned().collect()
    }

    /// Registered view names, in order.
    pub fn names(&self) -> Vec<String> {
        self.views.read().keys().cloned().collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.read().len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.read().is_empty()
    }

    /// Observability snapshot judged against `current` source
    /// versions.
    pub fn gauges(&self, current: &BTreeMap<String, u64>) -> Vec<ViewGauges> {
        self.all()
            .iter()
            .map(|v| {
                let (hits, stale_skips, refreshes, refresh_rows) = v.counters();
                let staleness = v.staleness(current);
                let (rows, bytes) = v
                    .data()
                    .map(|d| (d.batch.num_rows() as u64, d.batch.wire_size() as u64))
                    .unwrap_or((0, 0));
                ViewGauges {
                    name: v.name().to_string(),
                    policy: v.policy().label(),
                    fresh: u64::from(staleness.is_fresh()),
                    lagging_sources: match &staleness {
                        Staleness::Stale { lagging } => lagging.len() as u64,
                        _ => 0,
                    },
                    rows,
                    bytes,
                    hits,
                    stale_skips,
                    refreshes,
                    refresh_rows,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{Array, DataType, Field, Schema, Value};

    fn batch(n: usize) -> Batch {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let values: Vec<Value> = (0..n as i64).map(Value::Int64).collect();
        let col = Array::from_values(DataType::Int64, &values).unwrap();
        Batch::try_new(schema, vec![col]).unwrap()
    }

    fn compiled(sources: &[&str]) -> CompiledView<()> {
        CompiledView {
            plan: Arc::new(()),
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)])),
            sources: sources.iter().map(|s| s.to_string()).collect(),
            catalog_version: 1,
        }
    }

    fn versions(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(s, v)| (s.to_string(), *v)).collect()
    }

    #[test]
    fn staleness_tracks_only_pinned_sources() {
        let v = MaterializedView::new("v", "SELECT x", RefreshPolicy::Manual, compiled(&["crm"]));
        assert_eq!(v.staleness(&versions(&[("crm", 1)])), Staleness::Empty);
        v.install(batch(3), versions(&[("crm", 1)]), 10);
        // Fresh while crm stays put — even if an unrelated source moves.
        assert!(v
            .staleness(&versions(&[("crm", 1), ("sales", 99)]))
            .is_fresh());
        // A crm write makes it stale and names the lagging source.
        assert_eq!(
            v.staleness(&versions(&[("crm", 2), ("sales", 99)])),
            Staleness::Stale {
                lagging: vec!["crm".into()]
            }
        );
        // A dropped source also counts as lagging.
        assert_eq!(
            v.staleness(&versions(&[("sales", 99)])),
            Staleness::Stale {
                lagging: vec!["crm".into()]
            }
        );
    }

    #[test]
    fn install_bumps_refresh_seq_and_counters() {
        let v = MaterializedView::new("v", "SELECT x", RefreshPolicy::Manual, compiled(&["crm"]));
        v.install(batch(3), versions(&[("crm", 1)]), 10);
        v.install(batch(5), versions(&[("crm", 2)]), 20);
        let d = v.data().unwrap();
        assert_eq!(d.refresh_seq, 2);
        assert_eq!(d.batch.num_rows(), 5);
        let (hits, skips, refreshes, rows) = v.counters();
        assert_eq!((hits, skips, refreshes, rows), (0, 0, 2, 8));
    }

    #[test]
    fn interval_due_respects_virtual_clock() {
        let v = MaterializedView::new(
            "v",
            "SELECT x",
            RefreshPolicy::Interval { every_us: 100 },
            compiled(&["crm"]),
        );
        assert!(v.interval_due(0), "never materialized => due");
        v.install(batch(1), versions(&[("crm", 1)]), 50);
        assert!(!v.interval_due(149));
        assert!(v.interval_due(150));
        // touch() re-arms without a refresh.
        v.touch(200);
        assert!(!v.interval_due(299));
        assert!(v.interval_due(300));
        // Non-interval policies are never "due".
        let m = MaterializedView::new("m", "SELECT x", RefreshPolicy::Manual, compiled(&["crm"]));
        assert!(!m.interval_due(1_000_000));
    }

    #[test]
    fn registry_lifecycle() {
        let reg: ViewRegistry<()> = ViewRegistry::new();
        assert!(reg.is_empty());
        reg.insert(MaterializedView::new(
            "Sales_By_Region",
            "SELECT x",
            RefreshPolicy::Manual,
            compiled(&["sales"]),
        ))
        .unwrap();
        // Case-insensitive: duplicate under any casing is rejected.
        let dup = reg.insert(MaterializedView::new(
            "sales_by_region",
            "SELECT x",
            RefreshPolicy::Manual,
            compiled(&["sales"]),
        ));
        assert!(dup.is_err());
        assert_eq!(reg.names(), vec!["sales_by_region".to_string()]);
        assert!(reg.get("SALES_BY_REGION").is_some());
        reg.remove("sales_by_region").unwrap();
        assert!(reg.remove("sales_by_region").is_err());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn gauges_reflect_state() {
        let reg: ViewRegistry<()> = ViewRegistry::new();
        let v = reg
            .insert(MaterializedView::new(
                "v",
                "SELECT x",
                RefreshPolicy::OnQueryIfStale,
                compiled(&["crm"]),
            ))
            .unwrap();
        v.install(batch(4), versions(&[("crm", 1)]), 10);
        v.record_hit();
        v.record_hit();
        v.record_stale_skip();
        let g = &reg.gauges(&versions(&[("crm", 2)]))[0];
        assert_eq!(g.name, "v");
        assert_eq!(g.fresh, 0);
        assert_eq!(g.lagging_sources, 1);
        assert_eq!(g.rows, 4);
        assert!(g.bytes > 0);
        assert_eq!((g.hits, g.stale_skips, g.refreshes), (2, 1, 1));
        assert_eq!(g.policy, "on-query");
    }
}
