//! Hand-written SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets so parse errors can
//! point at the offending position. Keywords are recognized
//! case-insensitively but identifiers preserve their original casing
//! (matching against the catalog is case-insensitive anyway).

use gis_types::{GisError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased), e.g. `SELECT`.
    Keyword(String),
    /// Identifier, original casing; double-quoted identifiers unescaped.
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    StringLit(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `?` positional parameter
    Question,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Integer(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Concat => f.write_str("||"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
            Token::Question => f.write_str("?"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// Reserved words recognized as keywords. Anything else lexes as an
/// identifier; the parser decides contextually.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "AS",
    "ON",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "OUTER",
    "CROSS",
    "UNION",
    "ALL",
    "DISTINCT",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "CAST",
    "BETWEEN",
    "IN",
    "LIKE",
    "IS",
    "ASC",
    "DESC",
    "NULLS",
    "FIRST",
    "LAST",
    "EXPLAIN",
    "ANALYZE",
    "EXISTS",
    "SEMI",
    "ANTI",
    "USING",
    "DATE",
    "TIMESTAMP",
    "INTERVAL",
    "CREATE",
    "MATERIALIZED",
    "VIEW",
    "REFRESH",
    "DROP",
];

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes `sql` into a vector ending with [`Token::Eof`].
pub fn tokenize(sql: &str) -> Result<Vec<Spanned>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(err(start, "unterminated block comment"));
                }
            }
            '\'' => {
                let (s, next) = lex_quoted(sql, i, '\'')?;
                out.push(Spanned {
                    token: Token::StringLit(s),
                    offset: start,
                });
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted(sql, i, '"')?;
                out.push(Spanned {
                    token: Token::Ident(s),
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(sql, i)?;
                out.push(Spanned {
                    token: tok,
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &sql[i..j];
                let upper = word.to_ascii_uppercase();
                let token = if KEYWORDS.contains(&upper.as_str()) {
                    Token::Keyword(upper)
                } else {
                    Token::Ident(word.to_string())
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            _ => {
                let (token, width) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    ('<', Some('=')) => (Token::LtEq, 2),
                    ('<', Some('>')) => (Token::NotEq, 2),
                    ('>', Some('=')) => (Token::GtEq, 2),
                    ('!', Some('=')) => (Token::NotEq, 2),
                    ('|', Some('|')) => (Token::Concat, 2),
                    ('=', _) => (Token::Eq, 1),
                    ('<', _) => (Token::Lt, 1),
                    ('>', _) => (Token::Gt, 1),
                    ('+', _) => (Token::Plus, 1),
                    ('-', _) => (Token::Minus, 1),
                    ('*', _) => (Token::Star, 1),
                    ('/', _) => (Token::Slash, 1),
                    ('%', _) => (Token::Percent, 1),
                    ('(', _) => (Token::LParen, 1),
                    (')', _) => (Token::RParen, 1),
                    (',', _) => (Token::Comma, 1),
                    ('.', _) => (Token::Dot, 1),
                    (';', _) => (Token::Semicolon, 1),
                    ('?', _) => (Token::Question, 1),
                    _ => return Err(err(i, &format!("unexpected character '{c}'"))),
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i += width;
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: sql.len(),
    });
    Ok(out)
}

fn lex_quoted(sql: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let q = quote as u8;
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                s.push(quote); // doubled quote escapes itself
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Preserve multi-byte UTF-8 sequences intact.
            let ch_len = utf8_len(bytes[i]);
            s.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(err(start, "unterminated quoted literal"))
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    let token = if is_float {
        Token::Float(
            text.parse()
                .map_err(|_| err(start, &format!("invalid float literal '{text}'")))?,
        )
    } else {
        Token::Integer(
            text.parse()
                .map_err(|_| err(start, &format!("integer literal '{text}' out of range")))?,
        )
    };
    Ok((token, i))
}

fn err(offset: usize, msg: &str) -> GisError {
    GisError::Parse(format!("{msg} (at byte {offset})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("SELECT foo FROM Bar"),
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("foo".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("Bar".into()),
                Token::Eof,
            ]
        );
        // case-insensitive keywords
        assert_eq!(toks("select")[0], Token::Keyword("SELECT".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Token::Integer(42));
        assert_eq!(toks("3.5")[0], Token::Float(3.5));
        assert_eq!(toks("1e3")[0], Token::Float(1000.0));
        assert_eq!(toks("2.5e-1")[0], Token::Float(0.25));
        // trailing dot is member access, not a float
        assert_eq!(
            toks("a.b"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'")[0], Token::StringLit("it's".into()));
        assert_eq!(toks("\"Weird Col\"")[0], Token::Ident("Weird Col".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b <> c != d || e"),
            vec![
                Token::Ident("a".into()),
                Token::LtEq,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Ident("c".into()),
                Token::NotEq,
                Token::Ident("d".into()),
                Token::Concat,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- comment\n 1 /* block /* nested */ */ + 2"),
            vec![
                Token::Keyword("SELECT".into()),
                Token::Integer(1),
                Token::Plus,
                Token::Integer(2),
                Token::Eof
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn offsets_track_positions() {
        let spanned = tokenize("SELECT x").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 7);
    }

    #[test]
    fn unexpected_character_errors() {
        let e = tokenize("SELECT #").unwrap_err();
        assert!(e.to_string().contains("unexpected character"));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'héllo→'")[0], Token::StringLit("héllo→".into()));
    }
}
