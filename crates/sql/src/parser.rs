//! Recursive-descent statement parser with Pratt expression parsing.
//!
//! Grammar (informal):
//!
//! ```text
//! statement   := EXPLAIN [ANALYZE] statement | query
//! query       := set_expr [ORDER BY ...] [LIMIT n] [OFFSET n]
//! set_expr    := select (UNION [ALL] select)*
//! select      := SELECT [DISTINCT] items [FROM table_ref]
//!                [WHERE expr] [GROUP BY exprs] [HAVING expr]
//! table_ref   := table_factor (join_clause)*
//! table_factor:= name [. name] [AS alias] | ( query ) AS alias | ( table_ref )
//! ```
//!
//! Expressions use precedence climbing; the precedence table mirrors
//! PostgreSQL's ordering of the supported operators.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use gis_types::{DataType, GisError, Result, Value};

/// Parses exactly one statement (a trailing semicolon is allowed).
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.consume_if(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a standalone scalar expression (used by tests, mapping
/// definitions, and check constraints).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The statement parser. Construct via [`Parser::new`], then call
/// [`Parser::parse_statement`].
pub struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    next_param: usize,
}

impl Parser {
    /// Tokenizes `sql` and positions at the first token.
    pub fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            next_param: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].token
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn error(&self, msg: impl Into<String>) -> GisError {
        GisError::Parse(format!(
            "{} (near byte {}, found {})",
            msg.into(),
            self.offset(),
            self.peek()
        ))
    }

    fn consume_if(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.consume_if(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            // Non-reserved-in-context keywords usable as identifiers.
            Token::Keyword(k) if matches!(k.as_str(), "DATE" | "TIMESTAMP" | "FIRST" | "LAST") => {
                Ok(k.to_ascii_lowercase())
            }
            other => Err(GisError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    /// Parses one statement.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        if self.consume_keyword("EXPLAIN") {
            // Both the bare form and the parenthesized option list:
            // `EXPLAIN ANALYZE q` and `EXPLAIN (ANALYZE) q`.
            let analyze = if self.consume_if(&Token::LParen) {
                if !self.consume_keyword("ANALYZE") {
                    return Err(self.error("expected ANALYZE in EXPLAIN option list"));
                }
                self.expect(&Token::RParen)?;
                true
            } else {
                self.consume_keyword("ANALYZE")
            };
            let inner = self.parse_statement()?;
            return Ok(Statement::Explain {
                analyze,
                statement: Box::new(inner),
            });
        }
        if self.peek_keyword("CREATE") {
            return self.parse_create_materialized_view();
        }
        if self.peek_keyword("REFRESH") {
            return self.parse_refresh_materialized_view();
        }
        if self.peek_keyword("DROP") {
            return self.parse_drop_materialized_view();
        }
        if self.peek_keyword("ANALYZE") {
            return self.parse_analyze();
        }
        Ok(Statement::Query(self.parse_query()?))
    }

    /// Parses `ANALYZE [source[.table]]`.
    fn parse_analyze(&mut self) -> Result<Statement> {
        self.expect_keyword("ANALYZE")?;
        if !matches!(self.peek(), Token::Ident(_)) {
            return Ok(Statement::Analyze {
                source: None,
                table: None,
            });
        }
        let source = self.expect_ident()?;
        let table = if self.consume_if(&Token::Dot) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(Statement::Analyze {
            source: Some(source),
            table,
        })
    }

    /// Parses `CREATE MATERIALIZED VIEW name AS query`.
    fn parse_create_materialized_view(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        if !self.consume_keyword("MATERIALIZED") {
            return Err(self.error("expected MATERIALIZED after CREATE"));
        }
        self.expect_keyword("VIEW")?;
        let name = self
            .expect_ident()
            .map_err(|_| self.error("expected view name after CREATE MATERIALIZED VIEW"))?;
        if !self.consume_keyword("AS") {
            return Err(self.error("expected AS after view name"));
        }
        let query = self.parse_query()?;
        Ok(Statement::CreateMaterializedView {
            name,
            query: Box::new(query),
        })
    }

    /// Parses `REFRESH MATERIALIZED VIEW name`.
    fn parse_refresh_materialized_view(&mut self) -> Result<Statement> {
        self.expect_keyword("REFRESH")?;
        if !self.consume_keyword("MATERIALIZED") {
            return Err(self.error("expected MATERIALIZED after REFRESH"));
        }
        self.expect_keyword("VIEW")?;
        let name = self
            .expect_ident()
            .map_err(|_| self.error("expected view name after REFRESH MATERIALIZED VIEW"))?;
        Ok(Statement::RefreshMaterializedView { name })
    }

    /// Parses `DROP MATERIALIZED VIEW name`.
    fn parse_drop_materialized_view(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        if !self.consume_keyword("MATERIALIZED") {
            return Err(self.error("expected MATERIALIZED after DROP"));
        }
        self.expect_keyword("VIEW")?;
        let name = self
            .expect_ident()
            .map_err(|_| self.error("expected view name after DROP MATERIALIZED VIEW"))?;
        Ok(Statement::DropMaterializedView { name })
    }

    /// Parses a query expression.
    pub fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                order_by.push(self.parse_order_by_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if limit.is_none() && self.consume_keyword("LIMIT") {
                limit = Some(self.parse_u64()?);
            } else if offset.is_none() && self.consume_keyword("OFFSET") {
                offset = Some(self.parse_u64()?);
            } else {
                break;
            }
        }
        Ok(Query {
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.advance() {
            Token::Integer(v) if v >= 0 => Ok(v as u64),
            other => Err(GisError::Parse(format!(
                "expected non-negative integer, found {other}"
            ))),
        }
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        while self.consume_keyword("UNION") {
            let all = self.consume_keyword("ALL");
            let right = self.parse_set_term()?;
            left = SetExpr::Union {
                left: Box::new(left),
                right: Box::new(right),
                all,
            };
        }
        Ok(left)
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        if self.peek_keyword("SELECT") {
            return Ok(SetExpr::Select(Box::new(self.parse_select()?)));
        }
        if self.consume_if(&Token::LParen) {
            let inner = self.parse_set_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        Err(self.error("expected SELECT"))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.consume_keyword("DISTINCT");
        if !distinct {
            self.consume_keyword("ALL");
        }
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let from = if self.consume_keyword("FROM") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };
        let selection = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.consume_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    #[allow(clippy::if_same_then_else)] // AS-alias vs bare-alias arms read clearer apart
    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.consume_if(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form
        if let (Token::Ident(q), Token::Dot, Token::Star) =
            (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let q = q.clone();
            self.advance();
            self.advance();
            self.advance();
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_ident()?)
        } else if matches!(self.peek(), Token::Ident(_)) {
            // bare alias: `SELECT a b FROM ...`
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.consume_keyword("CROSS") {
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else if self.consume_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.consume_keyword("LEFT") {
                self.consume_keyword("OUTER");
                if self.consume_keyword("SEMI") {
                    self.expect_keyword("JOIN")?;
                    JoinKind::Semi
                } else if self.consume_keyword("ANTI") {
                    self.expect_keyword("JOIN")?;
                    JoinKind::Anti
                } else {
                    self.expect_keyword("JOIN")?;
                    JoinKind::Left
                }
            } else if self.consume_keyword("RIGHT") {
                self.consume_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Right
            } else if self.consume_keyword("FULL") {
                self.consume_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Full
            } else if self.consume_keyword("SEMI") {
                self.expect_keyword("JOIN")?;
                JoinKind::Semi
            } else if self.consume_keyword("ANTI") {
                self.expect_keyword("JOIN")?;
                JoinKind::Anti
            } else if self.consume_keyword("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let constraint = if kind == JoinKind::Cross {
                JoinConstraint::None
            } else if self.consume_keyword("ON") {
                JoinConstraint::On(self.parse_expr()?)
            } else if self.consume_keyword("USING") {
                self.expect(&Token::LParen)?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.expect_ident()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                JoinConstraint::Using(cols)
            } else {
                return Err(self.error("expected ON or USING after join"));
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(left)
    }

    #[allow(clippy::if_same_then_else)] // AS-alias vs bare-alias arms read clearer apart
    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if self.consume_if(&Token::LParen) {
            // Either a subquery or a parenthesized join tree.
            if self.peek_keyword("SELECT") || self.peek_keyword("EXPLAIN") {
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                self.consume_keyword("AS");
                let alias = self
                    .expect_ident()
                    .map_err(|_| GisError::Parse("subquery in FROM requires an alias".into()))?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            let inner = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let first = self.expect_ident()?;
        let (source, name) = if self.consume_if(&Token::Dot) {
            (Some(first), self.expect_ident()?)
        } else {
            (None, first)
        };
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_ident()?)
        } else if matches!(self.peek(), Token::Ident(_)) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef::Table {
            source,
            name,
            alias,
        })
    }

    fn parse_order_by_expr(&mut self) -> Result<OrderByExpr> {
        let expr = self.parse_expr()?;
        let asc = if self.consume_keyword("DESC") {
            false
        } else {
            self.consume_keyword("ASC");
            true
        };
        let nulls_first = if self.consume_keyword("NULLS") {
            if self.consume_keyword("FIRST") {
                Some(true)
            } else {
                self.expect_keyword("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderByExpr {
            expr,
            asc,
            nulls_first,
        })
    }

    // ---- expressions -------------------------------------------------

    /// Parses a scalar expression.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_subexpr(0)
    }

    fn parse_subexpr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_prefix()?;
        while let Some(prec) = self.next_infix_precedence() {
            if prec <= min_prec {
                break;
            }
            lhs = self.parse_infix(lhs, prec)?;
        }
        Ok(lhs)
    }

    /// Precedence of the *next* infix operator, or None.
    fn next_infix_precedence(&self) -> Option<u8> {
        Some(match self.peek() {
            Token::Keyword(k) if k == "OR" => 5,
            Token::Keyword(k) if k == "AND" => 10,
            Token::Keyword(k) if k == "NOT" => match self.peek_ahead(1) {
                Token::Keyword(k2) if matches!(k2.as_str(), "BETWEEN" | "IN" | "LIKE") => 20,
                _ => return None,
            },
            Token::Keyword(k) if matches!(k.as_str(), "BETWEEN" | "IN" | "LIKE" | "IS") => 20,
            Token::Eq | Token::NotEq | Token::Lt | Token::LtEq | Token::Gt | Token::GtEq => 30,
            Token::Concat => 40,
            Token::Plus | Token::Minus => 50,
            Token::Star | Token::Slash | Token::Percent => 60,
            _ => return None,
        })
    }

    fn parse_infix(&mut self, lhs: Expr, prec: u8) -> Result<Expr> {
        // IS [NOT] NULL
        if self.peek_keyword("IS") {
            self.advance();
            let negated = self.consume_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.consume_keyword("NOT");
        if self.consume_keyword("BETWEEN") {
            // bind tighter than AND: parse bounds at comparison level
            let low = self.parse_subexpr(25)?;
            self.expect_keyword("AND")?;
            let high = self.parse_subexpr(25)?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.consume_keyword("IN") {
            self.expect(&Token::LParen)?;
            // Subquery form: `expr IN (SELECT ...)`.
            if self.peek_keyword("SELECT") {
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    negated,
                    query: Box::new(query),
                });
            }
            let mut list = Vec::new();
            if !matches!(self.peek(), Token::RParen) {
                loop {
                    list.push(self.parse_expr()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                negated,
                list,
            });
        }
        if self.consume_keyword("LIKE") {
            let pattern = self.parse_subexpr(25)?;
            return Ok(Expr::Like {
                negated,
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
            });
        }
        if negated {
            return Err(self.error("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.advance() {
            Token::Keyword(k) if k == "AND" => BinaryOp::And,
            Token::Keyword(k) if k == "OR" => BinaryOp::Or,
            Token::Eq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::NotEq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            Token::Plus => BinaryOp::Plus,
            Token::Minus => BinaryOp::Minus,
            Token::Star => BinaryOp::Multiply,
            Token::Slash => BinaryOp::Divide,
            Token::Percent => BinaryOp::Modulo,
            Token::Concat => BinaryOp::Concat,
            other => return Err(GisError::Parse(format!("unexpected operator {other}"))),
        };
        let rhs = self.parse_subexpr(prec)?;
        Ok(Expr::BinaryOp {
            left: Box::new(lhs),
            op,
            right: Box::new(rhs),
        })
    }

    fn parse_prefix(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Keyword(k) => match k.as_str() {
                "NOT" => {
                    self.advance();
                    let inner = self.parse_subexpr(15)?;
                    Ok(Expr::UnaryOp {
                        op: UnaryOp::Not,
                        expr: Box::new(inner),
                    })
                }
                "TRUE" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Boolean(true)))
                }
                "FALSE" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Boolean(false)))
                }
                "NULL" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Null))
                }
                "CASE" => self.parse_case(),
                "CAST" => self.parse_cast(),
                "DATE" => {
                    self.advance();
                    // DATE 'YYYY-MM-DD' literal
                    if let Token::StringLit(s) = self.peek().clone() {
                        self.advance();
                        let days = gis_types::value::parse_date(&s).ok_or_else(|| {
                            GisError::Parse(format!("invalid date literal '{s}'"))
                        })?;
                        Ok(Expr::Literal(Value::Date(days)))
                    } else {
                        // treat as identifier `date` (column named date)
                        self.parse_ident_expr("date".to_string())
                    }
                }
                "TIMESTAMP" => {
                    self.advance();
                    if let Token::StringLit(s) = self.peek().clone() {
                        self.advance();
                        let v = Value::Utf8(s).cast_to(DataType::Timestamp).map_err(|e| {
                            GisError::Parse(format!("invalid timestamp literal: {e}"))
                        })?;
                        Ok(Expr::Literal(v))
                    } else {
                        self.parse_ident_expr("timestamp".to_string())
                    }
                }
                "EXISTS" => Err(self.error("EXISTS subqueries are not supported")),
                _ => Err(self.error("unexpected keyword in expression")),
            },
            Token::Minus => {
                self.advance();
                let inner = self.parse_subexpr(70)?;
                Ok(Expr::UnaryOp {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                })
            }
            Token::Plus => {
                self.advance();
                let inner = self.parse_subexpr(70)?;
                Ok(Expr::UnaryOp {
                    op: UnaryOp::Pos,
                    expr: Box::new(inner),
                })
            }
            Token::Integer(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int64(v)))
            }
            Token::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float64(v)))
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Utf8(s)))
            }
            Token::Question => {
                self.advance();
                self.next_param += 1;
                Ok(Expr::Parameter(self.next_param))
            }
            Token::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Star => {
                self.advance();
                Ok(Expr::Wildcard)
            }
            Token::Ident(name) => {
                self.advance();
                self.parse_ident_expr(name)
            }
            other => Err(GisError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    /// Continues parsing after an identifier: function call, qualified
    /// column, or bare column.
    fn parse_ident_expr(&mut self, name: String) -> Result<Expr> {
        if self.consume_if(&Token::LParen) {
            // function call
            let distinct = self.consume_keyword("DISTINCT");
            let mut args = Vec::new();
            if !matches!(self.peek(), Token::RParen) {
                loop {
                    if self.consume_if(&Token::Star) {
                        args.push(Expr::Wildcard);
                    } else {
                        args.push(self.parse_expr()?);
                    }
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: name.to_ascii_lowercase(),
                args,
                distinct,
            });
        }
        if self.consume_if(&Token::Dot) {
            let col = self.expect_ident()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if !self.peek_keyword("WHEN") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.consume_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr> {
        self.expect_keyword("CAST")?;
        self.expect(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword("AS")?;
        let ty_name = match self.advance() {
            Token::Ident(s) => s,
            Token::Keyword(k) => k.to_ascii_lowercase(),
            other => {
                return Err(GisError::Parse(format!(
                    "expected type name, found {other}"
                )))
            }
        };
        let to = DataType::parse(&ty_name).map_err(|e| GisError::Parse(e.to_string()))?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            to,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn sel(sql: &str) -> Select {
        match q(sql).body {
            SetExpr::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 5");
        assert_eq!(s.projection.len(), 2);
        assert!(matches!(
            &s.projection[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert!(s.selection.is_some());
    }

    #[test]
    fn qualified_table_and_columns() {
        let s = sel("SELECT c.name FROM crm.customers AS c");
        match s.from.unwrap() {
            TableRef::Table {
                source,
                name,
                alias,
            } => {
                assert_eq!(source.as_deref(), Some("crm"));
                assert_eq!(name, "customers");
                assert_eq!(alias.as_deref(), Some("c"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parentheses() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        // must parse as 1 + (2*3)
        match e {
            Expr::BinaryOp { op, right, .. } => {
                assert_eq!(op, BinaryOp::Plus);
                assert!(matches!(
                    *right,
                    Expr::BinaryOp {
                        op: BinaryOp::Multiply,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        let e2 = parse_expression("(1 + 2) * 3").unwrap();
        assert!(matches!(
            e2,
            Expr::BinaryOp {
                op: BinaryOp::Multiply,
                ..
            }
        ));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse_expression("a OR b AND c").unwrap();
        match e {
            Expr::BinaryOp { op, .. } => assert_eq!(op, BinaryOp::Or),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_in_like_isnull() {
        let e =
            parse_expression("x BETWEEN 1 AND 10 AND y IN (1,2) AND z LIKE 'a%' AND w IS NOT NULL")
                .unwrap();
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 4);
        assert!(matches!(parts[0], Expr::Between { negated: false, .. }));
        assert!(matches!(parts[1], Expr::InList { .. }));
        assert!(matches!(parts[2], Expr::Like { .. }));
        assert!(matches!(parts[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn not_variants() {
        assert!(matches!(
            parse_expression("x NOT IN (1)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT BETWEEN 1 AND 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("NOT x").unwrap(),
            Expr::UnaryOp {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn joins() {
        let s = sel("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c USING (id) CROSS JOIN d");
        let mut join_count = 0;
        fn count(t: &TableRef, n: &mut usize) {
            if let TableRef::Join { left, right, .. } = t {
                *n += 1;
                count(left, n);
                count(right, n);
            }
        }
        count(&s.from.unwrap(), &mut join_count);
        assert_eq!(join_count, 3);
    }

    #[test]
    fn group_by_having_order_limit() {
        let query = q("SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 2 ORDER BY 2 DESC NULLS LAST LIMIT 10 OFFSET 5");
        assert_eq!(query.limit, Some(10));
        assert_eq!(query.offset, Some(5));
        assert_eq!(query.order_by.len(), 1);
        assert!(!query.order_by[0].asc);
        assert_eq!(query.order_by[0].nulls_first, Some(false));
        let SetExpr::Select(s) = query.body else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn union_all_chain() {
        let query = q("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3");
        // left-associative: (1 UNION ALL 2) UNION 3
        match query.body {
            SetExpr::Union { all, left, .. } => {
                assert!(!all);
                assert!(matches!(*left, SetExpr::Union { all: true, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subquery_in_from_requires_alias() {
        assert!(parse_sql("SELECT * FROM (SELECT 1)").is_err());
        let s = sel("SELECT * FROM (SELECT a FROM t) sub");
        assert!(matches!(
            s.from.unwrap(),
            TableRef::Subquery { alias, .. } if alias == "sub"
        ));
    }

    #[test]
    fn case_expressions() {
        let e =
            parse_expression("CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' ELSE 'neg' END")
                .unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let e2 = parse_expression("CASE x WHEN 1 THEN 'one' END").unwrap();
        assert!(matches!(
            e2,
            Expr::Case {
                operand: Some(_),
                ..
            }
        ));
        assert!(parse_expression("CASE END").is_err());
    }

    #[test]
    fn cast_and_functions() {
        let e = parse_expression("CAST(a AS bigint)").unwrap();
        assert!(matches!(
            e,
            Expr::Cast {
                to: DataType::Int64,
                ..
            }
        ));
        let e2 = parse_expression("count(DISTINCT x)").unwrap();
        assert!(matches!(e2, Expr::Function { distinct: true, .. }));
        let e3 = parse_expression("count(*)").unwrap();
        match e3 {
            Expr::Function { name, args, .. } => {
                assert_eq!(name, "count");
                assert!(matches!(args[0], Expr::Wildcard));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn date_literals() {
        let e = parse_expression("DATE '2024-01-15'").unwrap();
        assert!(matches!(e, Expr::Literal(Value::Date(_))));
        assert!(parse_expression("DATE '2024-13-15'").is_err());
    }

    #[test]
    fn parameters_are_numbered_in_order() {
        let e = parse_expression("a = ? AND b = ?").unwrap();
        let mut params = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Parameter(n) = x {
                params.push(*n);
            }
        });
        assert_eq!(params, vec![1, 2]);
    }

    #[test]
    fn explain_wraps_statement() {
        let s = parse_sql("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn explain_accepts_parenthesized_options() {
        let s = parse_sql("EXPLAIN (ANALYZE) SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        let err = parse_sql("EXPLAIN (VERBOSE) SELECT 1").unwrap_err();
        assert!(err.to_string().contains("ANALYZE"), "{err}");
    }

    #[test]
    fn analyze_statement_forms() {
        assert_eq!(
            parse_sql("ANALYZE").unwrap(),
            Statement::Analyze {
                source: None,
                table: None
            }
        );
        assert_eq!(
            parse_sql("analyze crm").unwrap(),
            Statement::Analyze {
                source: Some("crm".into()),
                table: None
            }
        );
        assert_eq!(
            parse_sql("ANALYZE crm.customers;").unwrap(),
            Statement::Analyze {
                source: Some("crm".into()),
                table: Some("customers".into())
            }
        );
        assert!(parse_sql("ANALYZE crm.").is_err());
        // EXPLAIN of an ANALYZE statement still parses.
        let s = parse_sql("EXPLAIN ANALYZE ANALYZE crm").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn analyze_unparse_roundtrips() {
        for sql in ["ANALYZE", "ANALYZE crm", "ANALYZE crm.customers"] {
            let stmt = parse_sql(sql).unwrap();
            let text = crate::unparse::statement_to_sql(&stmt);
            assert_eq!(text, sql);
            assert_eq!(parse_sql(&text).unwrap(), stmt);
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_sql("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("PARSE"));
        assert!(parse_sql("SELECT 1 extra garbage, ,").is_err());
        assert!(parse_sql("SELECT * FROM t WHERE").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_sql("SELECT 1;").is_ok());
    }

    #[test]
    fn select_without_from() {
        let s = sel("SELECT 1 + 1");
        assert!(s.from.is_none());
    }
}
