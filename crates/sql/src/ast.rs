//! Abstract syntax tree for the GIS SQL dialect.
//!
//! The AST is deliberately *unresolved*: column references are plain
//! (possibly qualified) names, table references are `source.table`
//! paths or bare global names. Binding against the catalog happens in
//! `gis-core`'s analyzer, keeping the frontend reusable by adapters
//! that accept SQL text.

use gis_types::{DataType, Value};
use std::fmt;

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query (`SELECT ...`).
    Query(Query),
    /// `EXPLAIN [ANALYZE] <query>` — show the plan (and, with
    /// ANALYZE, execute and annotate with runtime metrics).
    Explain {
        /// Execute and collect metrics when true.
        analyze: bool,
        /// The statement being explained.
        statement: Box<Statement>,
    },
    /// `CREATE MATERIALIZED VIEW <name> AS <query>` — materialize the
    /// query result at the mediator under a reusable name.
    CreateMaterializedView {
        /// View name (unqualified; views live at the mediator).
        name: String,
        /// The defining query.
        query: Box<Query>,
    },
    /// `REFRESH MATERIALIZED VIEW <name>` — re-run the view's plan and
    /// replace its materialized rows.
    RefreshMaterializedView {
        /// View name.
        name: String,
    },
    /// `DROP MATERIALIZED VIEW <name>` — forget the view.
    DropMaterializedView {
        /// View name.
        name: String,
    },
    /// `ANALYZE [source[.table]]` — collect statistics over the wire.
    /// With no target, every registered table is analyzed; with only a
    /// source, every table of that source; with both, just that table.
    Analyze {
        /// Source name, when given.
        source: Option<String>,
        /// Table name within the source, when given.
        table: Option<String>,
    },
}

/// A query expression: set-op body plus ordering and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body (`SELECT` or `UNION` tree).
    pub body: SetExpr,
    /// `ORDER BY` keys applied to the final result.
    pub order_by: Vec<OrderByExpr>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `OFFSET n`.
    pub offset: Option<u64>,
}

/// A set-operation tree over SELECTs.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain SELECT block.
    Select(Box<Select>),
    /// `left UNION [ALL] right`.
    Union {
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
        /// Keep duplicates when true (`UNION ALL`).
        all: bool,
    },
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` clause; `None` for table-less selects (`SELECT 1`).
    pub from: Option<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// An item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `*` — all columns.
    Wildcard,
    /// `alias.*` — all columns of one relation.
    QualifiedWildcard(String),
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table: `[source.]table [AS alias]`. When `source` is
    /// absent the name resolves through the global schema.
    Table {
        /// Component source name, if explicitly qualified.
        source: Option<String>,
        /// Table name.
        name: String,
        /// Alias, if any.
        alias: Option<String>,
    },
    /// A parenthesized subquery with an alias.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// A join of two table references.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// Join constraint.
        constraint: JoinConstraint,
    },
}

impl TableRef {
    /// The alias or base name this relation is known by, when it has
    /// a single name (joins do not).
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { alias, name, .. } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join kinds supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Full,
    /// Cross product.
    Cross,
    /// Left semi join (`SEMI JOIN`, also produced by `IN` rewrites).
    Semi,
    /// Left anti join (`ANTI JOIN`, also produced by `NOT IN` rewrites).
    Anti,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
            JoinKind::Semi => "SEMI JOIN",
            JoinKind::Anti => "ANTI JOIN",
        };
        f.write_str(s)
    }
}

/// Join constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    /// `ON <expr>`.
    On(Expr),
    /// `USING (col, ...)`.
    Using(Vec<String>),
    /// No constraint (cross join).
    None,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    /// The key expression (often a column or output ordinal).
    pub expr: Expr,
    /// Ascending when true.
    pub asc: bool,
    /// `NULLS FIRST` when true; default follows direction
    /// (ASC → nulls first, DESC → nulls last).
    pub nulls_first: Option<bool>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
    /// `%`
    Modulo,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||` string concatenation
    Concat,
}

impl BinaryOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for `AND`/`OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Plus
                | BinaryOp::Minus
                | BinaryOp::Multiply
                | BinaryOp::Divide
                | BinaryOp::Modulo
        )
    }

    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        }
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`),
    /// used when normalizing join predicates.
    pub fn swap(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::NotEq => BinaryOp::NotEq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `NOT`
    Not,
    /// Unary `-`
    Neg,
    /// Unary `+` (no-op, kept for fidelity)
    Pos,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified by relation.
    Column {
        /// Relation qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// A positional parameter `?` (1-based ordinal assigned in parse
    /// order); bound at execution by bind-join and prepared queries.
    Parameter(usize),
    /// `left op right`.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op expr`.
    UnaryOp {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call (scalar or aggregate; resolved later).
    Function {
        /// Function name, lowercased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `DISTINCT` inside an aggregate call.
        distinct: bool,
    },
    /// `COUNT(*)`-style wildcard argument, or bare `*` in projections
    /// (handled by [`SelectItem::Wildcard`]; this form only appears as
    /// a function argument).
    Wildcard,
    /// `CAST(expr AS type)`.
    Cast {
        /// Input expression.
        expr: Box<Expr>,
        /// Target type.
        to: DataType,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional comparand (`CASE x WHEN 1 ...`).
        operand: Option<Box<Expr>>,
        /// `(when, then)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// List members.
        list: Vec<Expr>,
    },
    /// `expr [NOT] IN (SELECT ...)` — an uncorrelated subquery
    /// membership test, rewritten by the binder into a semi/anti
    /// join.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// The subquery (must produce exactly one column).
        query: Box<Query>,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Negated form.
        negated: bool,
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` form.
        negated: bool,
    },
}

impl Expr {
    /// Convenience: a bare column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience: a qualified column.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Convenience: a literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Convenience: `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Convenience: `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op: BinaryOp::Eq,
            right: Box::new(other),
        }
    }

    /// Walks the expression tree pre-order, calling `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::BinaryOp { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::UnaryOp { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.walk(f)
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            // The subquery body is a separate name scope; only the
            // tested expression belongs to this one.
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Column { .. } | Expr::Literal(_) | Expr::Parameter(_) | Expr::Wildcard => {}
        }
    }

    /// Collects all column references mentioned anywhere in the tree.
    pub fn referenced_columns(&self) -> Vec<(Option<String>, String)> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                cols.push((qualifier.clone(), name.clone()));
            }
        });
        cols
    }

    /// True when no column references or parameters appear (the
    /// expression is evaluable at plan time).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::Column { .. } | Expr::Parameter(_) | Expr::Wildcard | Expr::InSubquery { .. }
            ) {
                constant = false;
            }
        });
        constant
    }

    /// Splits a conjunction into its AND-ed parts (`a AND b AND c` →
    /// `[a, b, c]`) — the unit the predicate-pushdown rule moves.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::BinaryOp {
                    left,
                    op: BinaryOp::And,
                    right,
                } => {
                    go(left, out);
                    go(right, out);
                }
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }

    /// Re-joins parts with AND; `None` when the slice is empty.
    pub fn conjunction(parts: Vec<Expr>) -> Option<Expr> {
        parts.into_iter().reduce(|acc, e| acc.and(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_rejoin_conjunction() {
        let e = Expr::col("a")
            .eq(Expr::lit(Value::Int64(1)))
            .and(Expr::col("b").eq(Expr::lit(Value::Int64(2))))
            .and(Expr::col("c").eq(Expr::lit(Value::Int64(3))));
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjunction(parts.into_iter().cloned().collect()).unwrap();
        assert_eq!(rejoined.split_conjunction().len(), 3);
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn referenced_columns_walks_nested() {
        let e = Expr::Case {
            operand: Some(Box::new(Expr::col("x"))),
            branches: vec![(Expr::lit(Value::Int64(1)), Expr::qcol("t", "y"))],
            else_expr: Some(Box::new(Expr::col("z"))),
        };
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&(Some("t".into()), "y".into())));
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::lit(Value::Int64(1))
            .and(Expr::lit(Value::Boolean(true)))
            .is_constant());
        assert!(!Expr::col("a").is_constant());
        assert!(!Expr::Parameter(1).is_constant());
    }

    #[test]
    fn comparison_swap() {
        assert_eq!(BinaryOp::Lt.swap(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::Eq.swap(), Some(BinaryOp::Eq));
        assert_eq!(BinaryOp::Plus.swap(), None);
    }

    #[test]
    fn visible_names() {
        let t = TableRef::Table {
            source: Some("crm".into()),
            name: "customers".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t.visible_name(), Some("c"));
        let s = TableRef::Table {
            source: None,
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(s.visible_name(), Some("orders"));
    }
}
