//! Renders ASTs back to SQL text.
//!
//! Needed in three places: `EXPLAIN` output, error messages, and the
//! relational adapter, which accepts query fragments as SQL text the
//! way a real autonomous DBMS would. The output is fully parenthesized
//! where precedence could be ambiguous, so `parse(unparse(x)) == x`
//! structurally for everything the dialect supports.

use crate::ast::*;
use gis_types::Value;
use std::fmt::Write as _;

/// Renders a statement as SQL.
pub fn statement_to_sql(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => query_to_sql(q),
        Statement::Explain { analyze, statement } => {
            let a = if *analyze { "ANALYZE " } else { "" };
            format!("EXPLAIN {a}{}", statement_to_sql(statement))
        }
        Statement::CreateMaterializedView { name, query } => {
            format!("CREATE MATERIALIZED VIEW {name} AS {}", query_to_sql(query))
        }
        Statement::RefreshMaterializedView { name } => {
            format!("REFRESH MATERIALIZED VIEW {name}")
        }
        Statement::DropMaterializedView { name } => {
            format!("DROP MATERIALIZED VIEW {name}")
        }
        Statement::Analyze { source, table } => match (source, table) {
            (Some(s), Some(t)) => format!("ANALYZE {s}.{t}"),
            (Some(s), None) => format!("ANALYZE {s}"),
            _ => "ANALYZE".to_string(),
        },
    }
}

/// Renders a query as SQL.
pub fn query_to_sql(q: &Query) -> String {
    let mut s = set_expr_to_sql(&q.body);
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let keys: Vec<String> = q.order_by.iter().map(order_by_to_sql).collect();
        s.push_str(&keys.join(", "));
    }
    if let Some(n) = q.limit {
        let _ = write!(s, " LIMIT {n}");
    }
    if let Some(n) = q.offset {
        let _ = write!(s, " OFFSET {n}");
    }
    s
}

fn order_by_to_sql(o: &OrderByExpr) -> String {
    let mut s = expr_to_sql(&o.expr);
    s.push_str(if o.asc { " ASC" } else { " DESC" });
    match o.nulls_first {
        Some(true) => s.push_str(" NULLS FIRST"),
        Some(false) => s.push_str(" NULLS LAST"),
        None => {}
    }
    s
}

fn set_expr_to_sql(se: &SetExpr) -> String {
    match se {
        SetExpr::Select(s) => select_to_sql(s),
        SetExpr::Union { left, right, all } => {
            let kw = if *all { "UNION ALL" } else { "UNION" };
            format!("{} {kw} {}", set_expr_to_sql(left), set_expr_to_sql(right))
        }
    }
}

fn select_to_sql(s: &Select) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = s.projection.iter().map(select_item_to_sql).collect();
    out.push_str(&items.join(", "));
    if let Some(from) = &s.from {
        out.push_str(" FROM ");
        out.push_str(&table_ref_to_sql(from));
    }
    if let Some(w) = &s.selection {
        let _ = write!(out, " WHERE {}", expr_to_sql(w));
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(expr_to_sql).collect();
        let _ = write!(out, " GROUP BY {}", keys.join(", "));
    }
    if let Some(h) = &s.having {
        let _ = write!(out, " HAVING {}", expr_to_sql(h));
    }
    out
}

fn select_item_to_sql(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::QualifiedWildcard(q) => format!("{}.*", ident(q)),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {}", expr_to_sql(expr), ident(a)),
            None => expr_to_sql(expr),
        },
    }
}

/// Renders a table reference.
pub fn table_ref_to_sql(t: &TableRef) -> String {
    match t {
        TableRef::Table {
            source,
            name,
            alias,
        } => {
            let mut s = match source {
                Some(src) => format!("{}.{}", ident(src), ident(name)),
                None => ident(name),
            };
            if let Some(a) = alias {
                let _ = write!(s, " AS {}", ident(a));
            }
            s
        }
        TableRef::Subquery { query, alias } => {
            format!("({}) AS {}", query_to_sql(query), ident(alias))
        }
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            let mut s = format!(
                "{} {kind} {}",
                table_ref_to_sql(left),
                table_ref_to_sql(right)
            );
            match constraint {
                JoinConstraint::On(e) => {
                    let _ = write!(s, " ON {}", expr_to_sql(e));
                }
                JoinConstraint::Using(cols) => {
                    let cols: Vec<String> = cols.iter().map(|c| ident(c)).collect();
                    let _ = write!(s, " USING ({})", cols.join(", "));
                }
                JoinConstraint::None => {}
            }
            s
        }
    }
}

/// Renders an expression, parenthesizing compound operands.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{}.{}", ident(q), ident(name)),
            None => ident(name),
        },
        Expr::Literal(v) => literal_to_sql(v),
        Expr::Parameter(_) => "?".to_string(),
        Expr::BinaryOp { left, op, right } => {
            format!("{} {} {}", wrap(left), op.symbol(), wrap(right))
        }
        Expr::UnaryOp { op, expr } => match op {
            UnaryOp::Not => format!("NOT {}", wrap(expr)),
            UnaryOp::Neg => format!("-{}", wrap(expr)),
            UnaryOp::Pos => format!("+{}", wrap(expr)),
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let d = if *distinct { "DISTINCT " } else { "" };
            let args: Vec<String> = args.iter().map(expr_to_sql).collect();
            format!("{name}({d}{})", args.join(", "))
        }
        Expr::Wildcard => "*".to_string(),
        Expr::Cast { expr, to } => format!("CAST({} AS {to})", expr_to_sql(expr)),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                let _ = write!(s, " {}", wrap(o));
            }
            for (w, t) in branches {
                let _ = write!(s, " WHEN {} THEN {}", expr_to_sql(w), expr_to_sql(t));
            }
            if let Some(el) = else_expr {
                let _ = write!(s, " ELSE {}", expr_to_sql(el));
            }
            s.push_str(" END");
            s
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            wrap(expr),
            if *negated { "NOT " } else { "" },
            wrap(low),
            wrap(high)
        ),
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let items: Vec<String> = list.iter().map(expr_to_sql).collect();
            format!(
                "{} {}IN ({})",
                wrap(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery {
            expr,
            negated,
            query,
        } => format!(
            "{} {}IN ({})",
            wrap(expr),
            if *negated { "NOT " } else { "" },
            query_to_sql(query)
        ),
        Expr::Like {
            negated,
            expr,
            pattern,
        } => format!(
            "{} {}LIKE {}",
            wrap(expr),
            if *negated { "NOT " } else { "" },
            wrap(pattern)
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            wrap(expr),
            if *negated { "NOT " } else { "" }
        ),
    }
}

/// Parenthesizes compound sub-expressions; leaves atoms bare.
fn wrap(e: &Expr) -> String {
    match e {
        Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Parameter(_)
        | Expr::Function { .. }
        | Expr::Cast { .. }
        | Expr::Wildcard => expr_to_sql(e),
        _ => format!("({})", expr_to_sql(e)),
    }
}

fn literal_to_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Utf8(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", gis_types::value::format_date(*d)),
        Value::Timestamp(us) => format!("CAST({us} AS timestamp)"),
        other => other.to_string(),
    }
}

/// Quotes an identifier only when it needs quoting.
fn ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_sql};

    /// parse → unparse → parse must be a fixed point.
    fn roundtrip_stmt(sql: &str) {
        let ast1 = parse_sql(sql).unwrap();
        let rendered = statement_to_sql(&ast1);
        let ast2 =
            parse_sql(&rendered).unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
        assert_eq!(ast1, ast2, "roundtrip mismatch via '{rendered}'");
    }

    fn roundtrip_expr(sql: &str) {
        let ast1 = parse_expression(sql).unwrap();
        let rendered = expr_to_sql(&ast1);
        let ast2 = parse_expression(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
        assert_eq!(ast1, ast2, "roundtrip mismatch via '{rendered}'");
    }

    #[test]
    fn statement_roundtrips() {
        for sql in [
            "SELECT 1",
            "SELECT DISTINCT a, b AS bee FROM t WHERE a > 5 GROUP BY a, b HAVING count(*) > 1 ORDER BY a DESC NULLS LAST LIMIT 3 OFFSET 1",
            "SELECT * FROM crm.customers AS c JOIN sales.orders o ON c.id = o.cust_id",
            "SELECT a.* FROM a CROSS JOIN b",
            "SELECT x FROM (SELECT x FROM t WHERE x < 3) AS sub",
            "SELECT 1 UNION ALL SELECT 2 UNION SELECT 3",
            "EXPLAIN SELECT * FROM t",
            "SELECT * FROM a LEFT JOIN b USING (id, code)",
            "SELECT * FROM a SEMI JOIN b ON a.x = b.x",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn expr_roundtrips() {
        for sql in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a AND b OR NOT c",
            "x BETWEEN 1 AND 10",
            "x NOT IN (1, 2, 3)",
            "name LIKE 'a%'",
            "v IS NOT NULL",
            "CASE WHEN a > 1 THEN 'x' ELSE 'y' END",
            "CASE g WHEN 1 THEN 'one' WHEN 2 THEN 'two' END",
            "CAST(a AS float64)",
            "coalesce(a, b, 0)",
            "count(DISTINCT x)",
            "-x + 3",
            "'it''s'",
            "DATE '2020-05-05'",
            "a = ?",
        ] {
            roundtrip_expr(sql);
        }
    }

    #[test]
    fn quoting_weird_identifiers() {
        assert_eq!(ident("normal_name"), "normal_name");
        assert_eq!(ident("weird col"), "\"weird col\"");
        assert_eq!(ident("3starts_with_digit"), "\"3starts_with_digit\"");
        assert_eq!(ident("has\"quote"), "\"has\"\"quote\"");
    }

    #[test]
    fn string_literal_escaping() {
        assert_eq!(literal_to_sql(&Value::Utf8("a'b".into())), "'a''b'");
    }
}
