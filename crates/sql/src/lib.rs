//! # gis-sql — the global query language frontend
//!
//! Users of a Global Information System pose queries against the
//! *global schema* in SQL; this crate turns SQL text into an AST the
//! mediator binds against the catalog.
//!
//! * [`lexer`] — hand-written tokenizer with position tracking.
//! * [`ast`] — statements, queries, table references, expressions.
//! * [`parser`] — recursive-descent statement parser with a Pratt
//!   expression parser (precedence climbing).
//! * [`unparse`] — renders ASTs back to SQL; used by `EXPLAIN`, error
//!   messages, and when the mediator ships a query fragment to a
//!   SQL-capable component system as text.
//!
//! The dialect is a pragmatic subset: `SELECT` (joins, subqueries in
//! `FROM`, `GROUP BY`/`HAVING`, `ORDER BY`, `LIMIT`/`OFFSET`,
//! `UNION [ALL]`), `EXPLAIN`, and the usual scalar/aggregate
//! expression forms (`CASE`, `CAST`, `BETWEEN`, `IN`, `LIKE`,
//! `IS [NOT] NULL`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use ast::{
    BinaryOp, Expr, JoinConstraint, JoinKind, OrderByExpr, Query, Select, SelectItem, SetExpr,
    Statement, TableRef, UnaryOp,
};
pub use parser::{parse_expression, parse_sql, Parser};

/// Parses a single SQL statement (convenience re-export).
pub fn parse(sql: &str) -> gis_types::Result<Statement> {
    parse_sql(sql)
}
