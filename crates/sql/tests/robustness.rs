//! Parser robustness: arbitrary input must never panic — either a
//! parse tree or a clean `GisError::Parse` comes back. Valid queries
//! must round-trip through the unparser.

use gis_sql::unparse::statement_to_sql;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    /// Arbitrary bytes: no panics, ever.
    #[test]
    fn arbitrary_input_never_panics(input in ".*") {
        let _ = gis_sql::parse(&input);
        let _ = gis_sql::parse_expression(&input);
        let _ = gis_sql::lexer::tokenize(&input);
    }

    /// SQL-ish token soup: no panics and errors are Parse errors.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
            Just("BY"), Just("ORDER"), Just("JOIN"), Just("ON"),
            Just("UNION"), Just("ALL"), Just("AND"), Just("OR"),
            Just("NOT"), Just("NULL"), Just("("), Just(")"), Just(","),
            Just("*"), Just("="), Just("<"), Just("+"), Just("-"),
            Just("t"), Just("x"), Just("1"), Just("'s'"), Just("."),
            Just("CASE"), Just("WHEN"), Just("THEN"), Just("END"),
            Just("BETWEEN"), Just("IN"), Just("LIKE"), Just("AS"),
        ], 0..25)
    ) {
        let sql = tokens.join(" ");
        if let Err(e) = gis_sql::parse(&sql) {
            prop_assert_eq!(e.code(), "PARSE", "non-parse error for '{}': {}", sql, e);
        }
    }

    /// Generated well-formed queries round-trip through the unparser.
    #[test]
    fn generated_queries_roundtrip(
        cols in proptest::collection::vec("c_[a-z]{0,3}", 1..4),
        table in "t_[a-z]{1,5}",
        lim in proptest::option::of(0u64..100),
        desc in any::<bool>(),
        k in 0i64..100,
    ) {
        let projection = cols.join(", ");
        let mut sql = format!(
            "SELECT {projection} FROM {table} WHERE {} < {k}",
            cols[0]
        );
        sql.push_str(&format!(" ORDER BY {} {}", cols[0], if desc { "DESC" } else { "ASC" }));
        if let Some(l) = lim {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let ast1 = gis_sql::parse(&sql).expect("generated SQL must parse");
        let rendered = statement_to_sql(&ast1);
        let ast2 = gis_sql::parse(&rendered).expect("rendered SQL must re-parse");
        prop_assert_eq!(ast1, ast2, "via '{}'", rendered);
    }
}
