//! Source capability profiles.
//!
//! Autonomy is the hard constraint of a federation: every component
//! system exposes only what its native interface supports. The
//! mediator reads these profiles at plan time and decomposes queries
//! so each shipped fragment stays inside its source's profile; the
//! remainder executes mediator-side.

use std::fmt;

/// What a component source can execute natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityProfile {
    /// Accepts `column op constant` filters.
    pub filter: bool,
    /// Accepts range filters (`<`, `BETWEEN`); false means only
    /// equality filters are understood (typical for KV).
    pub range_filter: bool,
    /// Can return a subset of columns.
    pub project: bool,
    /// Can join tables that live on the same source.
    pub join: bool,
    /// Can evaluate grouped aggregates.
    pub aggregate: bool,
    /// Can sort its output.
    pub sort: bool,
    /// Honors row limits.
    pub limit: bool,
    /// Supports parameterized repeated lookups (the bind-join /
    /// fetch-matches protocol).
    pub bind_lookup: bool,
    /// Can evaluate a shipped Bloom filter against its rows (the
    /// semijoin filter-lookup protocol); false means the mediator
    /// must ship explicit key lists instead.
    pub filter_lookup: bool,
}

impl CapabilityProfile {
    /// A full SQL system: everything pushable.
    pub fn full_sql() -> Self {
        CapabilityProfile {
            filter: true,
            range_filter: true,
            project: true,
            join: true,
            aggregate: true,
            sort: true,
            limit: true,
            bind_lookup: true,
            filter_lookup: true,
        }
    }

    /// A scan-oriented analytics engine: filter/project/limit but no
    /// joins, aggregates or sorts.
    pub fn scan_only() -> Self {
        CapabilityProfile {
            filter: true,
            range_filter: true,
            project: true,
            join: false,
            aggregate: false,
            sort: false,
            limit: true,
            bind_lookup: true,
            filter_lookup: true,
        }
    }

    /// A key-value system: equality lookup on key columns only; the
    /// mediator does all filtering beyond that.
    pub fn key_value() -> Self {
        CapabilityProfile {
            filter: true,       // equality on key prefix only
            range_filter: true, // range on first key component
            project: false,
            join: false,
            aggregate: false,
            sort: false,
            limit: true,
            bind_lookup: true,
            filter_lookup: false,
        }
    }

    /// The weakest useful profile: full scans only (a flat file).
    pub fn dump_only() -> Self {
        CapabilityProfile {
            filter: false,
            range_filter: false,
            project: false,
            join: false,
            aggregate: false,
            sort: false,
            limit: false,
            bind_lookup: false,
            filter_lookup: false,
        }
    }

    /// A short human-readable summary, e.g. `FPJASLB` with dashes for
    /// missing capabilities (used in EXPLAIN output).
    pub fn summary(&self) -> String {
        let flag = |b: bool, c: char| if b { c } else { '-' };
        [
            flag(self.filter, 'F'),
            flag(self.range_filter, 'R'),
            flag(self.project, 'P'),
            flag(self.join, 'J'),
            flag(self.aggregate, 'A'),
            flag(self.sort, 'S'),
            flag(self.limit, 'L'),
            flag(self.bind_lookup, 'B'),
        ]
        .iter()
        .collect()
    }
}

impl fmt::Display for CapabilityProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_capability() {
        let full = CapabilityProfile::full_sql();
        let scan = CapabilityProfile::scan_only();
        let kv = CapabilityProfile::key_value();
        let dump = CapabilityProfile::dump_only();
        assert!(full.join && full.aggregate);
        assert!(scan.filter && !scan.join);
        assert!(kv.filter && !kv.project);
        assert!(!dump.filter && !dump.limit);
    }

    #[test]
    fn summary_renders_flags() {
        assert_eq!(CapabilityProfile::full_sql().summary(), "FRPJASLB");
        assert_eq!(CapabilityProfile::dump_only().summary(), "--------");
        assert_eq!(CapabilityProfile::scan_only().summary(), "FRP---LB");
    }
}
