//! # gis-catalog — the global schema and its mappings
//!
//! The defining feature of a Global Information System (Kameny, ICDE
//! 1989) is that users see **one global schema** while data stays in
//! **autonomous component systems** with their own export schemas.
//! This crate is that bridge:
//!
//! * [`catalog::Catalog`] — registry of sources, their exported
//!   tables (schema + statistics + capability profile), and the
//!   global tables mapped over them.
//! * [`mapping::TableMapping`] — declarative column mappings from an
//!   export schema to a global table: renames, type coercions, and
//!   linear unit conversions. Mappings are applied to data flowing
//!   mediator-ward and *inverted* to push predicates source-ward.
//! * [`capability::CapabilityProfile`] — what each source can do
//!   natively (filter? project? aggregate? parameterized lookup?);
//!   the optimizer never ships a fragment a source cannot run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capability;
pub mod catalog;
pub mod mapping;

pub use capability::CapabilityProfile;
pub use catalog::{Catalog, CatalogRef, ResolvedTable, SourceMeta, TableMeta};
pub use mapping::{ColumnMapping, TableMapping, Transform};
