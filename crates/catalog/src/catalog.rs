//! The catalog proper: sources, export tables, global tables.
//!
//! Thread-safe via an internal `RwLock`; the planner and the
//! registration path share one [`CatalogRef`]. The catalog stores
//! *metadata only* — executable adapter handles are registered with
//! the mediator's execution context (`gis-core`), keeping this crate
//! free of execution dependencies.

use crate::capability::CapabilityProfile;
use crate::mapping::TableMapping;
use gis_storage::TableStats;
use gis_types::{GisError, Result, SchemaRef};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared catalog handle.
pub type CatalogRef = Arc<Catalog>;

/// Metadata for one registered source.
#[derive(Debug, Clone)]
pub struct SourceMeta {
    /// Source name (unique).
    pub name: String,
    /// Human-readable kind, e.g. `"relational"`, `"column"`, `"kv"`.
    pub kind: String,
    /// What the source can execute natively.
    pub capabilities: CapabilityProfile,
}

/// Metadata for one exported table of a source.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Export schema (the source's own column names/types).
    pub export_schema: SchemaRef,
    /// Statistics collected at registration, if any.
    pub stats: Option<TableStats>,
}

/// A fully resolved global table: everything the planner needs.
#[derive(Debug, Clone)]
pub struct ResolvedTable {
    /// Source metadata.
    pub source: SourceMeta,
    /// Export-side table metadata.
    pub table: TableMeta,
    /// The mapping from export schema to global schema.
    pub mapping: TableMapping,
    /// The global schema produced by the mapping.
    pub global_schema: SchemaRef,
}

#[derive(Debug, Default)]
struct Inner {
    sources: BTreeMap<String, SourceMeta>,
    /// (source, table) -> meta
    tables: BTreeMap<(String, String), TableMeta>,
    /// global name -> mapping
    globals: BTreeMap<String, TableMapping>,
}

/// The federation catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<Inner>,
    /// Bumped on every metadata mutation (source/table registration,
    /// mapping changes, stats refresh). Plan caches key on this:
    /// a stale version means cached plans may bind against schemas or
    /// statistics that no longer exist.
    version: std::sync::atomic::AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> CatalogRef {
        Arc::new(Catalog::default())
    }

    /// The current metadata version (monotonically increasing).
    pub fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Registers (or replaces) a source.
    pub fn register_source(
        &self,
        name: impl Into<String>,
        kind: impl Into<String>,
        capabilities: CapabilityProfile,
    ) {
        let name = name.into();
        self.inner.write().sources.insert(
            name.to_ascii_lowercase(),
            SourceMeta {
                name,
                kind: kind.into(),
                capabilities,
            },
        );
        self.bump_version();
    }

    /// Registers a table exported by `source`.
    pub fn register_table(
        &self,
        source: &str,
        table: &str,
        export_schema: SchemaRef,
        stats: Option<TableStats>,
    ) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.sources.contains_key(&source.to_ascii_lowercase()) {
            return Err(GisError::Catalog(format!(
                "cannot register table '{table}': unknown source '{source}'"
            )));
        }
        inner.tables.insert(
            (source.to_ascii_lowercase(), table.to_ascii_lowercase()),
            TableMeta {
                export_schema,
                stats,
            },
        );
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Updates (or installs) statistics for an exported table.
    pub fn update_stats(&self, source: &str, table: &str, stats: TableStats) -> Result<()> {
        let mut inner = self.inner.write();
        let meta = inner
            .tables
            .get_mut(&(source.to_ascii_lowercase(), table.to_ascii_lowercase()))
            .ok_or_else(|| GisError::Catalog(format!("unknown table '{source}.{table}'")))?;
        meta.stats = Some(stats);
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Drops every table's statistics, leaving the optimizer on its
    /// magic-constant fallbacks (used by experiments that need an
    /// un-analyzed baseline, and useful after bulk loads that make old
    /// stats misleading). Bumps the catalog version.
    pub fn clear_stats(&self) {
        let mut inner = self.inner.write();
        for meta in inner.tables.values_mut() {
            meta.stats = None;
        }
        drop(inner);
        self.bump_version();
    }

    /// Registers a global table via an explicit mapping. The mapping
    /// is validated against the source's export schema.
    pub fn register_global(&self, mapping: TableMapping) -> Result<()> {
        let inner = self.inner.read();
        let key = (
            mapping.source.to_ascii_lowercase(),
            mapping.source_table.to_ascii_lowercase(),
        );
        let table = inner.tables.get(&key).ok_or_else(|| {
            GisError::Catalog(format!(
                "global '{}' maps to unknown table '{}.{}'",
                mapping.global_name, mapping.source, mapping.source_table
            ))
        })?;
        mapping.validate(&table.export_schema)?;
        drop(inner);
        let mut inner = self.inner.write();
        inner
            .globals
            .insert(mapping.global_name.to_ascii_lowercase(), mapping);
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Registers `source.table` under global name `global` with an
    /// identity mapping.
    pub fn register_global_identity(&self, global: &str, source: &str, table: &str) -> Result<()> {
        let export = {
            let inner = self.inner.read();
            inner
                .tables
                .get(&(source.to_ascii_lowercase(), table.to_ascii_lowercase()))
                .ok_or_else(|| GisError::Catalog(format!("unknown table '{source}.{table}'")))?
                .export_schema
                .clone()
        };
        self.register_global(TableMapping::identity(global, source, table, &export))
    }

    /// Resolves a table reference from a query: either a bare global
    /// name, or an explicit `source.table` (which gets an implicit
    /// identity mapping).
    pub fn resolve(&self, source: Option<&str>, name: &str) -> Result<ResolvedTable> {
        let inner = self.inner.read();
        let (mapping, src_key) = match source {
            None => {
                let mapping = inner
                    .globals
                    .get(&name.to_ascii_lowercase())
                    .cloned()
                    .ok_or_else(|| {
                        let known: Vec<&str> = inner.globals.keys().map(String::as_str).collect();
                        GisError::Catalog(format!(
                            "unknown global table '{name}' (known: {})",
                            known.join(", ")
                        ))
                    })?;
                let key = mapping.source.to_ascii_lowercase();
                (mapping, key)
            }
            Some(src) => {
                let key = (src.to_ascii_lowercase(), name.to_ascii_lowercase());
                let table = inner
                    .tables
                    .get(&key)
                    .ok_or_else(|| GisError::Catalog(format!("unknown table '{src}.{name}'")))?;
                (
                    TableMapping::identity(name, src, name, &table.export_schema),
                    key.0,
                )
            }
        };
        let source_meta = inner
            .sources
            .get(&src_key)
            .cloned()
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{src_key}'")))?;
        let table = inner
            .tables
            .get(&(src_key, mapping.source_table.to_ascii_lowercase()))
            .cloned()
            .ok_or_else(|| {
                GisError::Catalog(format!(
                    "mapping references unknown table '{}.{}'",
                    mapping.source, mapping.source_table
                ))
            })?;
        let global_schema = mapping.global_schema();
        Ok(ResolvedTable {
            source: source_meta,
            table,
            mapping,
            global_schema,
        })
    }

    /// All registered sources, ordered by name.
    pub fn sources(&self) -> Vec<SourceMeta> {
        self.inner.read().sources.values().cloned().collect()
    }

    /// All global table names, ordered.
    pub fn global_tables(&self) -> Vec<String> {
        self.inner
            .read()
            .globals
            .values()
            .map(|m| m.global_name.clone())
            .collect()
    }

    /// All tables exported by `source`.
    pub fn tables_of(&self, source: &str) -> Vec<String> {
        let key = source.to_ascii_lowercase();
        self.inner
            .read()
            .tables
            .keys()
            .filter(|(s, _)| *s == key)
            .map(|(_, t)| t.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ColumnMapping, Transform};
    use gis_types::{DataType, Field, Schema};

    fn catalog() -> CatalogRef {
        let c = Catalog::new();
        c.register_source("crm", "relational", CapabilityProfile::full_sql());
        let export = Schema::new(vec![
            Field::required("cust_no", DataType::Int32),
            Field::new("nm", DataType::Utf8),
        ])
        .into_ref();
        c.register_table("crm", "kunden", export, None).unwrap();
        c
    }

    #[test]
    fn register_and_resolve_explicit() {
        let c = catalog();
        let r = c.resolve(Some("crm"), "kunden").unwrap();
        assert_eq!(r.source.name, "crm");
        assert_eq!(r.global_schema.len(), 2);
        assert!(r.mapping.is_pure_identity(&r.table.export_schema));
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let c = catalog();
        assert!(c.resolve(Some("CRM"), "Kunden").is_ok());
    }

    #[test]
    fn global_mapping_resolution() {
        let c = catalog();
        c.register_global(TableMapping {
            global_name: "customers".into(),
            source: "crm".into(),
            source_table: "kunden".into(),
            columns: vec![
                ColumnMapping {
                    global: Field::required("id", DataType::Int64),
                    source_column: "cust_no".into(),
                    transform: Transform::Cast(DataType::Int64),
                },
                ColumnMapping {
                    global: Field::new("name", DataType::Utf8),
                    source_column: "nm".into(),
                    transform: Transform::Identity,
                },
            ],
        })
        .unwrap();
        let r = c.resolve(None, "customers").unwrap();
        assert_eq!(r.global_schema.field(0).name, "id");
        assert_eq!(r.global_schema.field(0).data_type, DataType::Int64);
        assert_eq!(r.mapping.source_table, "kunden");
    }

    #[test]
    fn stats_updates_bump_version() {
        let c = catalog();
        let v0 = c.version();
        c.update_stats("crm", "kunden", TableStats::empty(2))
            .unwrap();
        let v1 = c.version();
        assert!(v1 > v0, "update_stats must invalidate cached plans");
        assert!(c
            .resolve(Some("crm"), "kunden")
            .unwrap()
            .table
            .stats
            .is_some());
        c.clear_stats();
        assert!(c.version() > v1, "clear_stats must invalidate cached plans");
        assert!(c
            .resolve(Some("crm"), "kunden")
            .unwrap()
            .table
            .stats
            .is_none());
        assert!(c.update_stats("crm", "nope", TableStats::empty(2)).is_err());
    }

    #[test]
    fn unknown_names_error_helpfully() {
        let c = catalog();
        let err = c.resolve(None, "nope").unwrap_err();
        assert!(err.to_string().contains("unknown global table"));
        assert!(c.resolve(Some("crm"), "nope").is_err());
        assert!(c.resolve(Some("nosrc"), "kunden").is_err());
    }

    #[test]
    fn invalid_mapping_rejected_at_registration() {
        let c = catalog();
        let bad = TableMapping {
            global_name: "g".into(),
            source: "crm".into(),
            source_table: "kunden".into(),
            columns: vec![ColumnMapping {
                global: Field::new("x", DataType::Int64),
                source_column: "missing".into(),
                transform: Transform::Identity,
            }],
        };
        assert!(c.register_global(bad).is_err());
    }

    #[test]
    fn register_table_requires_source() {
        let c = Catalog::new();
        let export = Schema::new(vec![Field::new("a", DataType::Int64)]).into_ref();
        assert!(c.register_table("ghost", "t", export, None).is_err());
    }

    #[test]
    fn stats_update() {
        let c = catalog();
        let stats = TableStats::empty(2);
        c.update_stats("crm", "kunden", stats.clone()).unwrap();
        let r = c.resolve(Some("crm"), "kunden").unwrap();
        assert_eq!(r.table.stats, Some(stats));
        assert!(c.update_stats("crm", "nope", TableStats::empty(0)).is_err());
    }

    #[test]
    fn listings() {
        let c = catalog();
        c.register_global_identity("kunden_global", "crm", "kunden")
            .unwrap();
        assert_eq!(c.sources().len(), 1);
        assert_eq!(c.tables_of("crm"), vec!["kunden"]);
        assert_eq!(c.global_tables(), vec!["kunden_global"]);
    }
}
