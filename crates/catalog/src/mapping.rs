//! Schema mappings: how export schemas become global tables.
//!
//! Heterogeneity in a federation is not just different SQL dialects —
//! the *same concept* is stored under different names, types and
//! units across components (`cust_no: int32` vs `customer_id: int64`;
//! prices in cents vs dollars; temperatures in °F vs °C). A
//! [`TableMapping`] records, per global column, which source column
//! feeds it and which [`Transform`] reconciles representation.
//!
//! Two directions matter:
//!
//! * **forward** (source → global): applied to every batch a source
//!   returns; see [`TableMapping::apply`].
//! * **inverse** (global → source): applied to *predicates* so they
//!   can still be pushed down through the mapping; see
//!   [`Transform::invert_literal`]. Non-invertible transforms simply
//!   disable pushdown for that column — correctness first.

use gis_types::{Array, Batch, DataType, Field, GisError, Result, Schema, SchemaRef, Value};
use std::sync::Arc;

/// A value-level transform between source and global representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Values pass through unchanged.
    Identity,
    /// Cast to the global type (e.g. `int32` → `int64`).
    Cast(DataType),
    /// `global = source * factor + offset` computed in f64, then cast
    /// to the global type. Unit conversions (cents→dollars, °F→°C).
    Linear {
        /// Multiplier.
        factor: f64,
        /// Additive offset.
        offset: f64,
        /// Global type of the result.
        to: DataType,
    },
    /// Enumerated recode: pairs of (source value, global value);
    /// unmatched source values map to NULL. (Code-set reconciliation,
    /// e.g. `1/2/3` → `'gold'/'silver'/'bronze'`.)
    ValueMap(Vec<(Value, Value)>),
}

impl Transform {
    /// The global type produced from a source column of `input`.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            Transform::Identity => input,
            Transform::Cast(t) => *t,
            Transform::Linear { to, .. } => *to,
            Transform::ValueMap(pairs) => pairs
                .first()
                .map(|(_, g)| g.data_type())
                .unwrap_or(DataType::Null),
        }
    }

    /// Applies the transform to one value (source → global).
    pub fn apply_value(&self, v: &Value) -> Result<Value> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        match self {
            Transform::Identity => Ok(v.clone()),
            Transform::Cast(t) => v.cast_to(*t),
            Transform::Linear { factor, offset, to } => {
                let x = v
                    .as_f64()?
                    .ok_or_else(|| GisError::Execution("linear transform on non-numeric".into()))?;
                Value::Float64(x * factor + offset).cast_to(*to)
            }
            Transform::ValueMap(pairs) => Ok(pairs
                .iter()
                .find(|(s, _)| s == v)
                .map(|(_, g)| g.clone())
                .unwrap_or(Value::Null)),
        }
    }

    /// Applies the transform to a whole column.
    pub fn apply_array(&self, a: &Array) -> Result<Array> {
        match self {
            Transform::Identity => Ok(a.clone()),
            Transform::Cast(t) => a.cast_to(*t),
            _ => {
                let out_type = self.output_type(a.data_type());
                let mut b = gis_types::ArrayBuilder::with_capacity(out_type, a.len());
                for i in 0..a.len() {
                    b.push_value(&self.apply_value(&a.value_at(i))?.cast_to(out_type)?)?;
                }
                Ok(b.finish())
            }
        }
    }

    /// Inverts a *global-side* literal back to source representation,
    /// for predicate pushdown. Returns `None` when the transform is
    /// not invertible for this literal (pushdown is then skipped).
    pub fn invert_literal(&self, global: &Value, source_type: DataType) -> Option<Value> {
        if global.is_null() {
            return Some(Value::Null);
        }
        match self {
            Transform::Identity => Some(global.clone()),
            Transform::Cast(_) => {
                // Safe only when the roundtrip is exact.
                let back = global.cast_to(source_type).ok()?;
                let again = back.cast_to(global.data_type()).ok()?;
                (again == *global).then_some(back)
            }
            Transform::Linear {
                factor,
                offset,
                to: _,
            } => {
                if *factor == 0.0 {
                    return None;
                }
                let g = global.as_f64().ok()??;
                let s = (g - offset) / factor;
                let candidate = Value::Float64(s).cast_to(source_type).ok()?;
                // Verify exactness through the forward direction.
                let forward = self.apply_value(&candidate).ok()?;
                (forward == *global).then_some(candidate)
            }
            Transform::ValueMap(pairs) => {
                let mut matches = pairs.iter().filter(|(_, g)| g == global);
                let first = matches.next()?;
                // Ambiguous (many-to-one) recodes cannot be inverted.
                matches.next().is_none().then(|| first.0.clone())
            }
        }
    }

    /// True when order is preserved source→global (needed to push
    /// range predicates, not just equality).
    pub fn is_monotonic(&self) -> bool {
        match self {
            Transform::Identity => true,
            Transform::Cast(_) => true,
            Transform::Linear { factor, .. } => *factor > 0.0,
            Transform::ValueMap(_) => false,
        }
    }
}

/// One global column: its field definition, the source column that
/// feeds it, and the reconciling transform.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMapping {
    /// The global-side field (name/type/nullability).
    pub global: Field,
    /// Name of the column in the source's export schema.
    pub source_column: String,
    /// Representation transform.
    pub transform: Transform,
}

/// Maps one source table onto one global table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMapping {
    /// Global table name.
    pub global_name: String,
    /// Source (component system) name.
    pub source: String,
    /// Table name within the source.
    pub source_table: String,
    /// Column mappings, in global-schema order.
    pub columns: Vec<ColumnMapping>,
}

impl TableMapping {
    /// An identity mapping exposing `source.table` 1:1 as
    /// `global_name` (the common case for homogeneous columns).
    pub fn identity(
        global_name: impl Into<String>,
        source: impl Into<String>,
        source_table: impl Into<String>,
        export_schema: &Schema,
    ) -> Self {
        TableMapping {
            global_name: global_name.into(),
            source: source.into(),
            source_table: source_table.into(),
            columns: export_schema
                .fields()
                .iter()
                .map(|f| ColumnMapping {
                    global: Field {
                        qualifier: None,
                        ..f.clone()
                    },
                    source_column: f.name.clone(),
                    transform: Transform::Identity,
                })
                .collect(),
        }
    }

    /// The global schema this mapping produces.
    pub fn global_schema(&self) -> SchemaRef {
        Arc::new(Schema::new(
            self.columns.iter().map(|c| c.global.clone()).collect(),
        ))
    }

    /// Validates against the source's export schema: every referenced
    /// source column must exist and transforms must type-check.
    pub fn validate(&self, export_schema: &Schema) -> Result<()> {
        for cm in &self.columns {
            let idx = export_schema
                .index_of(None, &cm.source_column)
                .map_err(|_| {
                    GisError::Catalog(format!(
                        "mapping for global '{}' references missing source column '{}' of {}.{}",
                        self.global_name, cm.source_column, self.source, self.source_table
                    ))
                })?;
            let src_type = export_schema.field(idx).data_type;
            let out = cm.transform.output_type(src_type);
            if out != cm.global.data_type {
                return Err(GisError::Catalog(format!(
                    "mapping for '{}.{}': transform yields {} but global column '{}' is {}",
                    self.source, self.source_table, out, cm.global.name, cm.global.data_type
                )));
            }
            if let Transform::Linear { .. } = cm.transform {
                if !src_type.is_numeric() {
                    return Err(GisError::Catalog(format!(
                        "linear transform on non-numeric source column '{}'",
                        cm.source_column
                    )));
                }
            }
        }
        Ok(())
    }

    /// The source-column ordinals this mapping reads, given the
    /// export schema (in global-column order).
    pub fn source_ordinals(&self, export_schema: &Schema) -> Result<Vec<usize>> {
        self.columns
            .iter()
            .map(|cm| export_schema.index_of(None, &cm.source_column))
            .collect()
    }

    /// Applies the mapping to a batch *in export-schema layout*,
    /// producing a batch in global-schema layout.
    pub fn apply(&self, export_schema: &Schema, batch: &Batch) -> Result<Batch> {
        let ordinals = self.source_ordinals(export_schema)?;
        let mut columns = Vec::with_capacity(self.columns.len());
        for (cm, &ord) in self.columns.iter().zip(&ordinals) {
            // The incoming batch may itself be a projection of the
            // export schema; locate the column by name.
            let pos = batch
                .schema()
                .index_of(None, &cm.source_column)
                .unwrap_or(ord);
            let transformed = cm.transform.apply_array(batch.column(pos))?;
            columns.push(transformed.cast_to(cm.global.data_type)?);
        }
        Batch::try_new(self.global_schema(), columns)
    }

    /// True when every column is an identity transform over the same
    /// name (mapping application can be skipped entirely).
    pub fn is_pure_identity(&self, export_schema: &Schema) -> bool {
        self.columns.iter().all(|cm| {
            cm.transform == Transform::Identity
                && export_schema
                    .index_of(None, &cm.source_column)
                    .map(|i| {
                        let f = export_schema.field(i);
                        f.name == cm.global.name && f.data_type == cm.global.data_type
                    })
                    .unwrap_or(false)
        })
    }

    /// Finds the mapping entry feeding global column `name`.
    pub fn column(&self, name: &str) -> Option<&ColumnMapping> {
        self.columns
            .iter()
            .find(|c| c.global.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field};

    fn export_schema() -> Schema {
        Schema::new(vec![
            Field::required("cust_no", DataType::Int32),
            Field::new("nm", DataType::Utf8),
            Field::new("bal_cents", DataType::Int64),
            Field::new("tier_code", DataType::Int32),
        ])
    }

    fn mapping() -> TableMapping {
        TableMapping {
            global_name: "customers".into(),
            source: "crm".into(),
            source_table: "KUNDEN".into(),
            columns: vec![
                ColumnMapping {
                    global: Field::required("id", DataType::Int64),
                    source_column: "cust_no".into(),
                    transform: Transform::Cast(DataType::Int64),
                },
                ColumnMapping {
                    global: Field::new("name", DataType::Utf8),
                    source_column: "nm".into(),
                    transform: Transform::Identity,
                },
                ColumnMapping {
                    global: Field::new("balance", DataType::Float64),
                    source_column: "bal_cents".into(),
                    transform: Transform::Linear {
                        factor: 0.01,
                        offset: 0.0,
                        to: DataType::Float64,
                    },
                },
                ColumnMapping {
                    global: Field::new("tier", DataType::Utf8),
                    source_column: "tier_code".into(),
                    transform: Transform::ValueMap(vec![
                        (Value::Int32(1), Value::Utf8("gold".into())),
                        (Value::Int32(2), Value::Utf8("silver".into())),
                    ]),
                },
            ],
        }
    }

    #[test]
    fn validates_against_export_schema() {
        let m = mapping();
        assert!(m.validate(&export_schema()).is_ok());
        let mut bad = m.clone();
        bad.columns[0].source_column = "nope".into();
        assert!(bad.validate(&export_schema()).is_err());
        let mut bad2 = m;
        bad2.columns[1].global.data_type = DataType::Int64; // identity can't change type
        assert!(bad2.validate(&export_schema()).is_err());
    }

    #[test]
    fn apply_transforms_batch() {
        let export = export_schema();
        let batch = Batch::from_rows(
            Arc::new(export.clone()),
            &[
                vec![
                    Value::Int32(7),
                    Value::Utf8("ada".into()),
                    Value::Int64(2500),
                    Value::Int32(1),
                ],
                vec![
                    Value::Int32(8),
                    Value::Null,
                    Value::Int64(-100),
                    Value::Int32(9),
                ],
            ],
        )
        .unwrap();
        let global = mapping().apply(&export, &batch).unwrap();
        assert_eq!(global.schema().field(0).name, "id");
        assert_eq!(global.row_values(0)[0], Value::Int64(7));
        assert_eq!(global.row_values(0)[2], Value::Float64(25.0));
        assert_eq!(global.row_values(0)[3], Value::Utf8("gold".into()));
        // unmapped tier code 9 -> NULL
        assert_eq!(global.row_values(1)[3], Value::Null);
        assert_eq!(global.row_values(1)[2], Value::Float64(-1.0));
    }

    #[test]
    fn linear_inversion_roundtrips() {
        let t = Transform::Linear {
            factor: 0.01,
            offset: 0.0,
            to: DataType::Float64,
        };
        // global 25.0 dollars -> source 2500 cents
        let inv = t
            .invert_literal(&Value::Float64(25.0), DataType::Int64)
            .unwrap();
        assert_eq!(inv, Value::Int64(2500));
        // a dollar value that is not a whole cent count cannot be
        // inverted exactly
        assert!(t
            .invert_literal(&Value::Float64(0.005), DataType::Int64)
            .is_none());
    }

    #[test]
    fn cast_inversion_checks_roundtrip() {
        let t = Transform::Cast(DataType::Int64);
        assert_eq!(
            t.invert_literal(&Value::Int64(5), DataType::Int32),
            Some(Value::Int32(5))
        );
        assert_eq!(
            t.invert_literal(&Value::Int64(i64::MAX), DataType::Int32),
            None
        );
    }

    #[test]
    fn valuemap_inversion_requires_uniqueness() {
        let t = Transform::ValueMap(vec![
            (Value::Int32(1), Value::Utf8("gold".into())),
            (Value::Int32(2), Value::Utf8("silver".into())),
        ]);
        assert_eq!(
            t.invert_literal(&Value::Utf8("gold".into()), DataType::Int32),
            Some(Value::Int32(1))
        );
        assert_eq!(
            t.invert_literal(&Value::Utf8("bronze".into()), DataType::Int32),
            None
        );
        let ambiguous = Transform::ValueMap(vec![
            (Value::Int32(1), Value::Utf8("x".into())),
            (Value::Int32(2), Value::Utf8("x".into())),
        ]);
        assert_eq!(
            ambiguous.invert_literal(&Value::Utf8("x".into()), DataType::Int32),
            None
        );
    }

    #[test]
    fn monotonicity() {
        assert!(Transform::Identity.is_monotonic());
        assert!(Transform::Linear {
            factor: 2.0,
            offset: 1.0,
            to: DataType::Float64
        }
        .is_monotonic());
        assert!(!Transform::Linear {
            factor: -1.0,
            offset: 0.0,
            to: DataType::Float64
        }
        .is_monotonic());
        assert!(!Transform::ValueMap(vec![]).is_monotonic());
    }

    #[test]
    fn identity_mapping_detection() {
        let export = export_schema();
        let ident = TableMapping::identity("kunden", "crm", "KUNDEN", &export);
        assert!(ident.is_pure_identity(&export));
        assert!(!mapping().is_pure_identity(&export));
        assert!(ident.validate(&export).is_ok());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let m = mapping();
        assert!(m.column("BALANCE").is_some());
        assert!(m.column("nope").is_none());
    }
}
