//! The differential runner: one query, every configuration, one
//! verdict.
//!
//! The reference answer comes from the fully-naive oracle (no
//! rewrites, ship-whole joins, serial kernels, no caches or views).
//! Each matrix configuration must reproduce it bit-for-bit after
//! order normalization (rows sorted by [`Value`]'s total order).
//! Float aggregates are the one sanctioned exception: parallel
//! partitioning and join-strategy changes reorder additions, so two
//! floats compare equal within one part in 10⁹ — everything else,
//! including NaN and string bytes, must match exactly.

use crate::config::{matrix, oracle, EngineConfig, Mode};
use crate::generator::QueryGen;
use crate::shrink;
use gis_core::Federation;
use gis_datagen::{build_fedmart, FedMart, FedMartConfig};
use gis_net::BreakerConfig;
use gis_runtime::{Runtime, RuntimeConfig, Session};
use gis_sql::ast::Query;
use gis_sql::unparse::query_to_sql;
use gis_types::mem::MemBudget;
use gis_types::Value;
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-message drop probability used by the `flaky` configuration.
/// With the default 3-attempt retry policy almost every query still
/// succeeds — and then must be exact — while a handful per thousand
/// exhaust retries and must fail cleanly instead of degrading.
const FLAKY_DROP_P: f64 = 0.1;

/// The per-query soft limit used by the memory-pressure
/// configurations: one byte, so every tracked reservation exceeds it
/// immediately — `mem_tight` then spills everything, `mem_starved`
/// (spill cap 0) kills everything that needs real memory.
const TIGHT_BUDGET: u64 = 1;

/// `mem_tight`'s spill headroom — generous, so the only degradation
/// in play is memory→disk, never disk exhaustion.
const TIGHT_SPILL_CAP: u64 = 1 << 30;

/// Outcome of running one query under one configuration: sorted rows
/// or an error string.
pub type RunRows = Result<Vec<Vec<Value>>, String>;

/// One configuration's result for one query.
#[derive(Debug)]
pub struct ConfigRun {
    /// Configuration name.
    pub config: &'static str,
    /// Whether the run was fault-injected.
    pub faulted: bool,
    /// Whether the run executed under a kill-on-excess memory budget,
    /// making `MEM` errors expected rather than divergences.
    pub starved: bool,
    /// Sorted rows, or the error.
    pub outcome: RunRows,
}

/// Everything observed for one query across the matrix.
#[derive(Debug)]
pub struct RunReport {
    /// The SQL that was executed.
    pub sql: String,
    /// The oracle's sorted rows (or its error).
    pub oracle: RunRows,
    /// One entry per matrix configuration.
    pub runs: Vec<ConfigRun>,
}

/// A confirmed divergence between the oracle and one configuration.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging configuration.
    pub config: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// A divergence found during a fuzz run, with its shrunk reproducer.
#[derive(Debug)]
pub struct FoundDivergence {
    /// Generator seed that produced the query.
    pub seed: u64,
    /// First diverging configuration.
    pub config: &'static str,
    /// The original generated SQL.
    pub sql: String,
    /// The auto-shrunk SQL (equal to `sql` when shrinking is off).
    pub shrunk_sql: String,
    /// Mismatch description from the shrunk query.
    pub detail: String,
}

/// Aggregated results of a seed-range fuzz run.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Queries generated and executed.
    pub queries_run: u64,
    /// Queries skipped because the oracle itself errored.
    pub oracle_errors: u64,
    /// Fault-injected runs that failed cleanly (not divergences).
    pub fault_errors: u64,
    /// Memory-starved runs the governor killed with a `MEM` error
    /// (expected under `mem_starved`, not divergences).
    pub mem_kills: u64,
    /// `(config name, runs, divergences)` per configuration.
    pub per_config: Vec<(&'static str, u64, u64)>,
    /// Every divergence found, shrunk.
    pub divergences: Vec<FoundDivergence>,
}

impl DiffReport {
    /// Total divergences across all configurations.
    pub fn total_divergences(&self) -> u64 {
        self.per_config.iter().map(|(_, _, d)| d).sum()
    }

    /// Multi-line textual report for CI logs.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "gis-qa: {} queries, {} oracle errors (skipped), {} fault-absorbed failures, {} governor kills",
            self.queries_run, self.oracle_errors, self.fault_errors, self.mem_kills
        );
        let _ = writeln!(s, "{:<12} {:>8} {:>12}", "config", "runs", "divergences");
        for (name, runs, div) in &self.per_config {
            let _ = writeln!(s, "{name:<12} {runs:>8} {div:>12}");
        }
        for d in self.divergences.iter().take(10) {
            let _ = writeln!(
                s,
                "\ndivergence seed={} config={}\n  sql:    {}\n  shrunk: {}\n  detail: {}",
                d.seed, d.config, d.sql, d.shrunk_sql, d.detail
            );
        }
        if self.divergences.len() > 10 {
            let _ = writeln!(s, "... and {} more", self.divergences.len() - 10);
        }
        s
    }
}

/// Relative tolerance for float compares (reassociated aggregation).
const FLOAT_REL_EPS: f64 = 1e-9;

fn value_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            (x.is_nan() && y.is_nan())
                || x == y
                || (x - y).abs() <= FLOAT_REL_EPS * x.abs().max(y.abs())
        }
        // Value's PartialEq is a total order (NaN == NaN), fine here.
        _ => a == b,
    }
}

fn rows_diff(oracle: &[Vec<Value>], got: &[Vec<Value>]) -> Option<String> {
    if oracle.len() != got.len() {
        return Some(format!(
            "row count: oracle {} vs {} rows",
            oracle.len(),
            got.len()
        ));
    }
    for (i, (a, b)) in oracle.iter().zip(got.iter()).enumerate() {
        let same = a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| value_equal(x, y));
        if !same {
            return Some(format!("row {i}: oracle {a:?} vs {b:?}"));
        }
    }
    None
}

/// The differential harness: a seeded FedMart federation, a runtime
/// for the cached configuration, and the configuration matrix.
pub struct Harness {
    fed: Arc<Federation>,
    /// A twin federation (same seeded data) that ran `ANALYZE` over
    /// every source up front: the `analyzed` configuration plans from
    /// collected statistics while the oracle keeps magic constants.
    analyzed_fed: Arc<Federation>,
    cached_session: Session,
    configs: Vec<EngineConfig>,
    // Keep the runtime alive for the session's lifetime.
    _runtime: Runtime,
}

impl Harness {
    /// Builds the harness on a `FedMartConfig::tiny()` federation:
    /// breakers disabled (fault state must not leak across runs) and
    /// three full-table materialized views registered for the `views`
    /// configuration.
    pub fn new() -> Result<Harness, String> {
        let FedMart { federation, .. } =
            build_fedmart(FedMartConfig::tiny()).map_err(|e| e.to_string())?;
        // A breaker opened by the flaky configuration would make the
        // *next* query fail for reasons unrelated to its plan.
        federation.configure_breaker(BreakerConfig::disabled());
        for (view, sql) in [
            ("mv_customers", "SELECT * FROM customers"),
            ("mv_orders", "SELECT * FROM orders"),
            ("mv_products", "SELECT * FROM products"),
        ] {
            federation
                .create_materialized_view(view, sql)
                .map_err(|e| format!("creating {view}: {e}"))?;
        }
        let fed = Arc::new(federation);
        // The twin: FedMart's generator is seed-deterministic, so the
        // analyzed federation holds bit-identical data — only its
        // catalog statistics (and therefore its plans) differ.
        let FedMart {
            federation: analyzed,
            ..
        } = build_fedmart(FedMartConfig::tiny()).map_err(|e| e.to_string())?;
        analyzed.configure_breaker(BreakerConfig::disabled());
        analyzed
            .query("ANALYZE")
            .map_err(|e| format!("pre-sweep ANALYZE: {e}"))?;
        let analyzed_fed = Arc::new(analyzed);
        let runtime = Runtime::new(fed.clone(), RuntimeConfig::default().with_workers(2));
        let cached = matrix()
            .into_iter()
            .find(|c| c.mode == Mode::Cached)
            .expect("matrix always has a cached config");
        let mut cached_session = runtime.session_with(cached.optimizer, cached.exec);
        cached_session.set_caching(true);
        Ok(Harness {
            fed,
            analyzed_fed,
            cached_session,
            configs: matrix(),
            _runtime: runtime,
        })
    }

    /// The configuration matrix this harness sweeps.
    pub fn configs(&self) -> &[EngineConfig] {
        &self.configs
    }

    /// The underlying federation (corpus tests use it directly).
    pub fn federation(&self) -> &Arc<Federation> {
        &self.fed
    }

    fn run_direct(&self, sql: &str, cfg: &EngineConfig) -> RunRows {
        self.fed
            .query_with(sql, &cfg.optimizer, &cfg.exec)
            .map(|r| sorted_rows(r.batch.to_rows()))
            .map_err(|e| e.to_string())
    }

    fn run_cached(&self, sql: &str) -> RunRows {
        // Miss, then hit: both paths must return the same rows.
        let miss = self
            .cached_session
            .query(sql)
            .map(|r| sorted_rows(r.batch.to_rows()))
            .map_err(|e| e.to_string())?;
        let hit = self
            .cached_session
            .query(sql)
            .map(|r| sorted_rows(r.batch.to_rows()))
            .map_err(|e| e.to_string())?;
        if let Some(d) = rows_diff(&miss, &hit) {
            return Err(format!("cache hit disagrees with miss: {d}"));
        }
        Ok(hit)
    }

    fn run_budgeted(&self, sql: &str, cfg: &EngineConfig, spill_cap: u64) -> RunRows {
        let budget = MemBudget::standalone(TIGHT_BUDGET, spill_cap);
        self.fed
            .query_with_budget(sql, &cfg.optimizer, &cfg.exec, &budget)
            .map(|r| sorted_rows(r.batch.to_rows()))
            .map_err(|e| e.to_string())
    }

    fn run_faulted(&self, sql: &str, cfg: &EngineConfig, seed: u64) -> RunRows {
        for (i, link) in self.fed.all_links().iter().enumerate() {
            link.faults()
                .flaky(seed.wrapping_mul(31).wrapping_add(i as u64), FLAKY_DROP_P);
        }
        let out = self.run_direct(sql, cfg);
        for link in self.fed.all_links() {
            link.faults().flaky(0, 0.0);
        }
        out
    }

    /// Runs `sql` through the oracle and every configuration.
    /// `fault_seed` deterministically seeds the flaky run.
    pub fn run_matrix(&self, sql: &str, fault_seed: u64) -> RunReport {
        let (opt, exec) = oracle();
        // The oracle ships raw legacy frames: every matrix run (the
        // federation default is compression on) then differentials
        // the adaptive wire codecs for free, on every query.
        self.fed.set_wire_compression(false);
        let oracle_rows = self
            .fed
            .query_with(sql, &opt, &exec)
            .map(|r| sorted_rows(r.batch.to_rows()))
            .map_err(|e| e.to_string());
        self.fed.set_wire_compression(true);
        let runs = self
            .configs
            .iter()
            .map(|cfg| ConfigRun {
                config: cfg.name,
                faulted: cfg.mode == Mode::Faulted,
                starved: cfg.mode == Mode::MemStarved,
                outcome: match cfg.mode {
                    Mode::Direct => self.run_direct(sql, cfg),
                    Mode::Cached => self.run_cached(sql),
                    Mode::Faulted => self.run_faulted(sql, cfg, fault_seed),
                    Mode::MemTight => self.run_budgeted(sql, cfg, TIGHT_SPILL_CAP),
                    Mode::MemStarved => self.run_budgeted(sql, cfg, 0),
                    Mode::Compressed => {
                        // The federation default, asserted explicitly:
                        // the oracle above toggled it off and back on.
                        self.fed.set_wire_compression(true);
                        self.run_direct(sql, cfg)
                    }
                    Mode::Analyzed => self
                        .analyzed_fed
                        .query_with(sql, &cfg.optimizer, &cfg.exec)
                        .map(|r| sorted_rows(r.batch.to_rows()))
                        .map_err(|e| e.to_string()),
                },
            })
            .collect();
        RunReport {
            sql: sql.to_string(),
            oracle: oracle_rows,
            runs,
        }
    }

    /// Divergence policy over a matrix report:
    /// * oracle error → the query is skipped (nothing to compare);
    /// * fault-injected error → clean failure, not a divergence;
    /// * `MEM` error in a starved run → expected governor kill;
    /// * any other error, or any row mismatch → divergence.
    pub fn divergences(report: &RunReport) -> Vec<Divergence> {
        let Ok(expected) = &report.oracle else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for run in &report.runs {
            match &run.outcome {
                Err(_) if run.faulted => {}
                Err(e) if run.starved && e.starts_with("MEM:") => {}
                Err(e) => out.push(Divergence {
                    config: run.config,
                    detail: format!("errored where oracle succeeded: {e}"),
                }),
                Ok(rows) => {
                    if let Some(d) = rows_diff(expected, rows) {
                        out.push(Divergence {
                            config: run.config,
                            detail: d,
                        });
                    }
                }
            }
        }
        out
    }

    /// True when `q` still diverges somewhere — the shrinker's
    /// "still failing" predicate.
    fn query_diverges(&self, q: &Query, fault_seed: u64) -> bool {
        let report = self.run_matrix(&query_to_sql(q), fault_seed);
        !Self::divergences(&report).is_empty()
    }

    /// Fuzzes seeds `start..start + count`, shrinking any divergence
    /// when `do_shrink` is set.
    pub fn run_seeds(&self, start: u64, count: u64, do_shrink: bool) -> DiffReport {
        let mut report = DiffReport {
            per_config: self.configs.iter().map(|c| (c.name, 0, 0)).collect(),
            ..DiffReport::default()
        };
        for seed in start..start.saturating_add(count) {
            let q = QueryGen::generate(seed);
            let sql = query_to_sql(&q);
            let run = self.run_matrix(&sql, seed);
            report.queries_run += 1;
            if run.oracle.is_err() {
                report.oracle_errors += 1;
                continue;
            }
            report.fault_errors += run
                .runs
                .iter()
                .filter(|r| r.faulted && r.outcome.is_err())
                .count() as u64;
            report.mem_kills += run
                .runs
                .iter()
                .filter(|r| r.starved && matches!(&r.outcome, Err(e) if e.starts_with("MEM:")))
                .count() as u64;
            let divs = Self::divergences(&run);
            for (name, runs, d) in report.per_config.iter_mut() {
                *runs += 1;
                if divs.iter().any(|dv| dv.config == *name) {
                    *d += 1;
                }
            }
            if let Some(first) = divs.first() {
                let shrunk = if do_shrink {
                    shrink::shrink_query(&q, &mut |cand| self.query_diverges(cand, seed))
                } else {
                    q.clone()
                };
                let shrunk_sql = query_to_sql(&shrunk);
                let detail = Self::divergences(&self.run_matrix(&shrunk_sql, seed))
                    .first()
                    .map(|d| d.detail.clone())
                    .unwrap_or_else(|| first.detail.clone());
                report.divergences.push(FoundDivergence {
                    seed,
                    config: first.config,
                    sql,
                    shrunk_sql,
                    detail,
                });
            }
        }
        report
    }
}

fn sorted_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    // Value implements a total order (NaN sorts deterministically),
    // so sorting gives a canonical form for multiset comparison.
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_tolerance_is_tight() {
        assert!(value_equal(
            &Value::Float64(1.0),
            &Value::Float64(1.0 + 1e-13)
        ));
        assert!(!value_equal(&Value::Float64(1.0), &Value::Float64(1.0001)));
        assert!(value_equal(
            &Value::Float64(f64::NAN),
            &Value::Float64(f64::NAN)
        ));
        assert!(value_equal(&Value::Float64(0.0), &Value::Float64(-0.0)));
        assert!(!value_equal(
            &Value::Utf8("a".into()),
            &Value::Utf8("b".into())
        ));
    }

    #[test]
    fn rows_diff_reports_first_mismatch() {
        let a = vec![vec![Value::Int64(1)], vec![Value::Int64(2)]];
        let b = vec![vec![Value::Int64(1)], vec![Value::Int64(3)]];
        assert!(rows_diff(&a, &a.clone()).is_none());
        let d = rows_diff(&a, &b).unwrap();
        assert!(d.contains("row 1"), "{d}");
        assert!(rows_diff(&a, &a[..1]).unwrap().contains("row count"));
    }
}
