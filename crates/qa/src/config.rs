//! The engine-configuration matrix the differential runner sweeps.

use gis_core::{ExecOptions, JoinStrategy, OptimizerOptions};

/// How a configuration is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One `Federation::query_with` call over a clean network.
    Direct,
    /// Through a runtime session with plan + result caching on; the
    /// query runs twice so both the cache-miss and cache-hit paths
    /// are checked.
    Cached,
    /// One call with every network link made flaky (`partial_results`
    /// stays off, so retries either absorb the faults — and the
    /// answer must still be exact — or the query fails cleanly).
    Faulted,
    /// One call under a deliberately tiny per-query memory budget
    /// with a generous spill cap: every hash kernel degrades to its
    /// spilled path, and the answer must still be bit-identical to
    /// the in-memory oracle.
    MemTight,
    /// Tiny budget with spilling disabled (`spill_cap` 0): queries
    /// the governor kills fail cleanly with a `MEM` error (absorbed
    /// like fault-injected failures); any query that survives must
    /// still be exact.
    MemStarved,
    /// One call with wire compression explicitly forced on (the
    /// oracle always runs over raw legacy frames, so every run in
    /// this mode differentials the adaptive codecs and the
    /// Bloom-semijoin protocol against uncompressed shipping).
    Compressed,
    /// One call against a twin federation that ran `ANALYZE` over
    /// every source before the sweep: the optimizer plans from real
    /// histograms/NDV sketches instead of magic constants. Plans may
    /// change; answers must stay bit-identical to the oracle.
    Analyzed,
}

/// One engine configuration under test.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Short name used in reports and corpus annotations.
    pub name: &'static str,
    /// Optimizer rewrites for this configuration.
    pub optimizer: OptimizerOptions,
    /// Execution knobs for this configuration.
    pub exec: ExecOptions,
    /// Drive mode.
    pub mode: Mode,
}

/// The reference oracle: every optimization off, ship-whole joins,
/// serial kernels, no caches, no view matching.
pub fn oracle() -> (OptimizerOptions, ExecOptions) {
    let exec = ExecOptions {
        parallel_kernel_rows: usize::MAX,
        parallel_fetch: false,
        view_matching: false,
        ..ExecOptions::naive()
    };
    (OptimizerOptions::naive(), exec)
}

/// The full differential matrix: each configuration turns on a
/// different slice of the stack, so a divergence's config name points
/// at the guilty subsystem.
pub fn matrix() -> Vec<EngineConfig> {
    let base = ExecOptions {
        view_matching: false,
        parallel_kernel_rows: usize::MAX,
        ..ExecOptions::default()
    };
    vec![
        // All logical rewrites + source pushdown, simplest join path.
        EngineConfig {
            name: "pushdown",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                join_strategy: JoinStrategy::ShipWhole,
                ..base
            },
            mode: Mode::Direct,
        },
        // SDD-1-style semijoin reduction.
        EngineConfig {
            name: "semijoin",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                join_strategy: JoinStrategy::SemiJoin,
                ..base
            },
            mode: Mode::Direct,
        },
        // R*-style bind join with a deliberately awkward batch size.
        EngineConfig {
            name: "bindjoin",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                join_strategy: JoinStrategy::BindJoin,
                bind_batch_size: 7,
                ..base
            },
            mode: Mode::Direct,
        },
        // Partitioned parallel kernels + threaded fetch; tiny
        // partition threshold so even 100-row inputs exercise them.
        EngineConfig {
            name: "parallel",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                parallel_kernel_rows: 2,
                parallel_fetch: true,
                ..base
            },
            mode: Mode::Direct,
        },
        // Runtime result cache: miss then hit must both be exact.
        EngineConfig {
            name: "cache",
            optimizer: OptimizerOptions::default(),
            exec: base,
            mode: Mode::Cached,
        },
        // Materialized-view matching against full-table views.
        EngineConfig {
            name: "views",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                view_matching: true,
                ..base
            },
            mode: Mode::Direct,
        },
        // Full default stack under a flaky network.
        EngineConfig {
            name: "flaky",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                partial_results: false,
                ..base
            },
            mode: Mode::Faulted,
        },
        // Spill-everything: a 1-byte budget forces every hash kernel
        // through the grace-hash disk path, combined with partitioned
        // parallel kernels so spill routing and partition bits are
        // exercised together. Divergence policy is the strict one.
        EngineConfig {
            name: "mem_tight",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                parallel_kernel_rows: 2,
                ..base
            },
            mode: Mode::MemTight,
        },
        // Starvation: same 1-byte budget, spilling disabled, so the
        // governor kills anything that needs real memory. Kills are
        // expected; survivors must be exact.
        EngineConfig {
            name: "mem_starved",
            optimizer: OptimizerOptions::default(),
            exec: base,
            mode: Mode::MemStarved,
        },
        // Adaptive per-column wire codecs + Bloom-filter semijoins,
        // checked against the raw-frame oracle: every byte-saving
        // layer must be bit-transparent. Semijoin forced so the
        // filter-vs-keys choice actually fires on capable sources.
        EngineConfig {
            name: "compressed",
            optimizer: OptimizerOptions::default(),
            exec: ExecOptions {
                join_strategy: JoinStrategy::SemiJoin,
                ..base
            },
            mode: Mode::Compressed,
        },
        // Stats-driven planning: the harness ANALYZEs a twin
        // federation up front, so selectivity and join cardinality
        // come from collected sketches. Whatever plan the richer cost
        // model picks, the rows must not move.
        EngineConfig {
            name: "analyzed",
            optimizer: OptimizerOptions::default(),
            exec: base,
            mode: Mode::Analyzed,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_required_configs() {
        let m = matrix();
        assert!(m.len() >= 6, "issue requires >= 6 engine configs");
        assert!(m.iter().any(|c| c.mode == Mode::Faulted));
        assert!(m.iter().any(|c| c.mode == Mode::Cached));
        assert!(m.iter().any(|c| c.exec.view_matching));
        assert!(m.iter().any(|c| c.mode == Mode::MemTight));
        assert!(m.iter().any(|c| c.mode == Mode::MemStarved));
        assert!(m.iter().any(|c| c.mode == Mode::Compressed));
        assert!(m.iter().any(|c| c.name == "compressed"));
        assert!(m.iter().any(|c| c.mode == Mode::Analyzed));
        assert!(m.iter().any(|c| c.name == "analyzed"));
    }

    #[test]
    fn oracle_is_fully_naive() {
        let (opt, exec) = oracle();
        assert!(!opt.predicate_pushdown);
        assert!(!exec.view_matching);
        assert_eq!(exec.parallel_kernel_rows, usize::MAX);
    }
}
