//! Greedy divergence shrinker.
//!
//! Given a diverging query and a "does it still diverge?" predicate,
//! repeatedly tries structurally smaller variants — dropping WHERE
//! conjuncts, projection columns, group keys, join sides, UNION
//! branches, ORDER/LIMIT clauses, and halving IN-lists and LIMIT
//! values — keeping any variant that still diverges, until no
//! candidate helps. Candidates that no longer bind (e.g. a dropped
//! join side takes referenced columns with it) simply fail the
//! predicate's oracle run and are rejected, so the shrinker never
//! needs its own validity check.

use gis_sql::ast::{Expr, Query, Select, SelectItem, SetExpr, TableRef};

/// Rough AST size — the quantity the shrinker minimizes (ties broken
/// by SQL text length via the caller keeping only strict improvements).
fn query_size(q: &Query) -> usize {
    gis_sql::unparse::query_to_sql(q).len()
}

/// Shrinks `q` while `still_fails` keeps returning `true` for the
/// candidate, up to a fixed evaluation budget.
pub fn shrink_query(q: &Query, still_fails: &mut impl FnMut(&Query) -> bool) -> Query {
    let mut best = q.clone();
    let mut evals = 0usize;
    const BUDGET: usize = 250;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= BUDGET {
                return best;
            }
            if query_size(&cand) >= query_size(&best) {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break; // restart candidate enumeration from the smaller query
            }
        }
        if !improved {
            return best;
        }
    }
}

/// All one-step smaller variants of `q`.
fn candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    // Clause-level drops on the query wrapper.
    if q.offset.is_some() {
        let mut c = q.clone();
        c.offset = None;
        out.push(c);
    }
    if q.limit.is_some() {
        let mut c = q.clone();
        c.limit = None;
        c.offset = None;
        out.push(c);
    }
    if let Some(n) = q.limit {
        if n > 1 {
            let mut c = q.clone();
            c.limit = Some(n / 2);
            out.push(c);
        }
    }
    if !q.order_by.is_empty() {
        let mut c = q.clone();
        c.order_by.clear();
        c.limit = None;
        c.offset = None;
        out.push(c);
    }
    // Body-level shrinks.
    for body in body_candidates(&q.body) {
        out.push(Query {
            body,
            // A changed body can invalidate ordinal sort keys; drop
            // ordering with the body change.
            order_by: vec![],
            limit: None,
            offset: None,
        });
    }
    out
}

fn body_candidates(body: &SetExpr) -> Vec<SetExpr> {
    match body {
        SetExpr::Union { left, right, .. } => {
            let mut out = vec![(**left).clone(), (**right).clone()];
            for l in body_candidates(left) {
                out.push(SetExpr::Union {
                    left: Box::new(l),
                    right: right.clone(),
                    all: matches!(body, SetExpr::Union { all: true, .. }),
                });
            }
            out
        }
        SetExpr::Select(sel) => select_candidates(sel)
            .into_iter()
            .map(|s| SetExpr::Select(Box::new(s)))
            .collect(),
    }
}

fn select_candidates(sel: &Select) -> Vec<Select> {
    let mut out = Vec::new();
    if sel.distinct {
        let mut c = sel.clone();
        c.distinct = false;
        out.push(c);
    }
    if sel.having.is_some() {
        let mut c = sel.clone();
        c.having = None;
        out.push(c);
    }
    // WHERE: drop entirely, then drop one conjunct at a time.
    if let Some(pred) = &sel.selection {
        let mut c = sel.clone();
        c.selection = None;
        out.push(c);
        let parts = pred.split_conjunction();
        if parts.len() > 1 {
            for i in 0..parts.len() {
                let kept: Vec<Expr> = parts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, e)| (*e).clone())
                    .collect();
                let mut c = sel.clone();
                c.selection = Expr::conjunction(kept);
                out.push(c);
            }
        }
        // Halve oversized IN-lists inside single-conjunct predicates.
        for (i, part) in parts.iter().enumerate() {
            if let Expr::InList {
                expr,
                negated,
                list,
            } = part
            {
                if list.len() > 1 {
                    let mut kept: Vec<Expr> = parts.iter().map(|e| (*e).clone()).collect();
                    kept[i] = Expr::InList {
                        expr: expr.clone(),
                        negated: *negated,
                        list: list[..list.len() / 2].to_vec(),
                    };
                    let mut c = sel.clone();
                    c.selection = Expr::conjunction(kept);
                    out.push(c);
                }
            }
        }
    }
    // GROUP BY: drop one key plus its projection of the same expr.
    for i in 0..sel.group_by.len() {
        let key = &sel.group_by[i];
        let mut c = sel.clone();
        c.group_by.remove(i);
        c.projection
            .retain(|item| !matches!(item, SelectItem::Expr { expr, .. } if expr == key));
        if !c.projection.is_empty() {
            out.push(c);
        }
    }
    // Projection: drop one item (keep at least one).
    if sel.projection.len() > 1 {
        for i in 0..sel.projection.len() {
            let mut c = sel.clone();
            c.projection.remove(i);
            out.push(c);
        }
    }
    // FROM: collapse a join to either side, or unwrap a subquery's
    // own FROM-less shell.
    if let Some(from) = &sel.from {
        for f in from_candidates(from) {
            let mut c = sel.clone();
            c.from = Some(f);
            out.push(c);
        }
    }
    out
}

fn from_candidates(from: &TableRef) -> Vec<TableRef> {
    match from {
        TableRef::Join { left, right, .. } => {
            let mut out = vec![(**left).clone(), (**right).clone()];
            for l in from_candidates(left) {
                if let TableRef::Join {
                    right: r,
                    kind,
                    constraint,
                    ..
                } = from
                {
                    out.push(TableRef::Join {
                        left: Box::new(l),
                        right: r.clone(),
                        kind: *kind,
                        constraint: constraint.clone(),
                    });
                }
            }
            out
        }
        TableRef::Subquery { query, alias } => {
            // Simplify the inner query while keeping the wrapper.
            let mut out = Vec::new();
            if let SetExpr::Select(inner) = &query.body {
                for s in select_candidates(inner) {
                    out.push(TableRef::Subquery {
                        query: Box::new(Query {
                            body: SetExpr::Select(Box::new(s)),
                            order_by: vec![],
                            limit: None,
                            offset: None,
                        }),
                        alias: alias.clone(),
                    });
                }
            }
            out
        }
        TableRef::Table { .. } => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_sql::parse;
    use gis_sql::unparse::query_to_sql;

    fn q(sql: &str) -> Query {
        match parse(sql).unwrap() {
            gis_sql::ast::Statement::Query(q) => q,
            _ => panic!("not a query"),
        }
    }

    #[test]
    fn shrinks_to_smallest_still_failing() {
        let full = q("SELECT a, b, c FROM t WHERE x = 1 AND y = 2 AND z = 3 ORDER BY 1 LIMIT 10");
        // Pretend the divergence only needs `y = 2` somewhere in the query.
        let shrunk = shrink_query(&full, &mut |cand| query_to_sql(cand).contains("y = 2"));
        let sql = query_to_sql(&shrunk);
        assert!(sql.contains("y = 2"), "{sql}");
        assert!(!sql.contains("x = 1"), "{sql}");
        assert!(!sql.contains("LIMIT"), "{sql}");
        assert!(sql.len() < query_to_sql(&full).len());
    }

    #[test]
    fn join_collapses_to_one_side() {
        let full = q("SELECT t0.a FROM t0 JOIN t1 ON t0.k = t1.k WHERE t0.a > 0");
        let shrunk = shrink_query(&full, &mut |cand| query_to_sql(cand).contains("t0"));
        assert!(!query_to_sql(&shrunk).contains("JOIN"));
    }

    #[test]
    fn never_returns_larger_query() {
        let full = q("SELECT a FROM t");
        let shrunk = shrink_query(&full, &mut |_| true);
        assert!(query_to_sql(&shrunk).len() <= query_to_sql(&full).len());
    }
}
