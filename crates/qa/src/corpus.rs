//! The checked-in regression corpus: every bug the fuzzer (or a
//! human) ever finds becomes a shrunk `.sql` file that replays in
//! tier-1 forever.
//!
//! File format — plain SQL with directive comments:
//!
//! ```sql
//! -- free-form comment lines explain the bug
//! -- expect: [Utf8("h")]
//! -- expect: [Utf8("x")]
//! SELECT ...
//! ```
//!
//! * `-- expect: <row>` pins one expected result row, rendered with
//!   `Value`'s `Debug` (rows are compared order-normalized, so list
//!   expected rows in sorted order). Pinning rows catches bugs that
//!   are *identical across every config* — a scalar-function bug
//!   gives the same wrong answer everywhere, which cross-config
//!   differencing alone can never see.
//! * `-- expect-error` asserts the query fails (in the oracle and in
//!   every non-fault config).
//! * With no directive, the case only asserts zero cross-config
//!   divergence.

use crate::runner::Harness;
use std::fs;
use std::path::{Path, PathBuf};

/// What a corpus case pins beyond cross-config agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// Only cross-config agreement.
    Agreement,
    /// The query must error everywhere (except fault-injected runs).
    Error,
    /// The oracle must return exactly these rows (Debug-rendered,
    /// sorted).
    Rows(Vec<String>),
}

/// One parsed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// File stem, used as the case name.
    pub name: String,
    /// Source path.
    pub path: PathBuf,
    /// The SQL to run.
    pub sql: String,
    /// Pinned expectation.
    pub expect: Expectation,
}

/// Parses one corpus file.
pub fn parse_case(path: &Path) -> Result<CorpusCase, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut expect_rows = Vec::new();
    let mut expect_error = false;
    let mut sql_lines = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("--") {
            let rest = rest.trim_start();
            if rest.starts_with("expect-error") {
                expect_error = true;
            } else if let Some(row) = rest.strip_prefix("expect:") {
                expect_rows.push(row.trim().to_string());
            }
            // other comment lines are documentation
        } else if !trimmed.is_empty() {
            sql_lines.push(line);
        }
    }
    if expect_error && !expect_rows.is_empty() {
        return Err(format!(
            "{}: expect-error and expect: are mutually exclusive",
            path.display()
        ));
    }
    let sql = sql_lines.join("\n");
    if sql.trim().is_empty() {
        return Err(format!("{}: no SQL found", path.display()));
    }
    let expect = if expect_error {
        Expectation::Error
    } else if expect_rows.is_empty() {
        Expectation::Agreement
    } else {
        let mut rows = expect_rows;
        rows.sort();
        Expectation::Rows(rows)
    };
    Ok(CorpusCase {
        name: path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
        path: path.to_path_buf(),
        sql,
        expect,
    })
}

/// Loads every `*.sql` file in `dir`, sorted by name.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut cases = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().is_some_and(|e| e == "sql") {
            cases.push(parse_case(&path)?);
        }
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(cases)
}

/// Replays one case through the full matrix; `Err` describes the
/// first violation.
pub fn replay(harness: &Harness, case: &CorpusCase) -> Result<(), String> {
    // Derive the fault seed from the name so replays are stable.
    let fault_seed = case
        .name
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let report = harness.run_matrix(&case.sql, fault_seed);
    match &case.expect {
        Expectation::Error => {
            if report.oracle.is_ok() {
                return Err(format!(
                    "{}: expected an error, oracle succeeded",
                    case.name
                ));
            }
            for run in &report.runs {
                if !run.faulted && run.outcome.is_ok() {
                    return Err(format!(
                        "{}: expected an error, config {} succeeded",
                        case.name, run.config
                    ));
                }
            }
            Ok(())
        }
        expect => {
            let rows = report
                .oracle
                .as_ref()
                .map_err(|e| format!("{}: oracle errored: {e}", case.name))?;
            if let Expectation::Rows(expected) = expect {
                let mut got: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
                got.sort();
                if &got != expected {
                    return Err(format!(
                        "{}: pinned rows differ\n  expected: {expected:#?}\n  got:      {got:#?}",
                        case.name
                    ));
                }
            }
            if let Some(d) = Harness::divergences(&report).first() {
                return Err(format!(
                    "{}: config {} diverged: {}",
                    case.name, d.config, d.detail
                ));
            }
            Ok(())
        }
    }
}

/// Writes a shrunk divergence as a new corpus file and returns its
/// path. Used by `gis-qa --write-corpus`.
pub fn write_case(
    dir: &Path,
    seed: u64,
    config: &str,
    shrunk_sql: &str,
    detail: &str,
) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("fuzz_seed_{seed}.sql"));
    let content = format!(
        "-- Found by gis-qa seed {seed}: config `{config}` diverged from the oracle.\n\
         -- {detail}\n\
         {shrunk_sql}\n"
    );
    fs::write(&path, content).map_err(|e| e.to_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        let dir = std::env::temp_dir().join("gis_qa_corpus_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("case.sql");
        fs::write(
            &p,
            "-- a bug\n-- expect: [Int64(1)]\n-- expect: [Int64(2)]\nSELECT 1\n",
        )
        .unwrap();
        let case = parse_case(&p).unwrap();
        assert_eq!(case.sql, "SELECT 1");
        assert_eq!(
            case.expect,
            Expectation::Rows(vec!["[Int64(1)]".into(), "[Int64(2)]".into()])
        );
        fs::write(&p, "-- expect-error\nSELECT boom\n").unwrap();
        assert_eq!(parse_case(&p).unwrap().expect, Expectation::Error);
        fs::write(&p, "SELECT 1\n").unwrap();
        assert_eq!(parse_case(&p).unwrap().expect, Expectation::Agreement);
        fs::remove_file(&p).ok();
    }
}
