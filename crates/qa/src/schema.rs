//! The FedMart global schema as seen by the query generator.
//!
//! A static mirror of what `gis-datagen` registers: table and column
//! names, coarse column types (enough to generate well-typed
//! expressions), and the equi-join edges that connect the tables. The
//! generator only ever emits joins along these edges so every
//! generated multi-table query has a real key relationship — random
//! theta-joins on a 1 000-row fact table would otherwise dominate run
//! time without adding coverage.

/// Coarse column type used for expression generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integer columns.
    Int,
    /// 64-bit float columns.
    Float,
    /// UTF-8 string columns.
    Str,
    /// Date columns (days since epoch).
    Date,
}

/// One table of the FedMart global schema.
#[derive(Debug, Clone, Copy)]
pub struct TableDef {
    /// Global table name.
    pub name: &'static str,
    /// `(column name, type)` pairs in declaration order.
    pub cols: &'static [(&'static str, Ty)],
}

/// The five FedMart global tables.
pub const TABLES: &[TableDef] = &[
    TableDef {
        name: "customers",
        cols: &[
            ("id", Ty::Int),
            ("name", Ty::Str),
            ("region", Ty::Str),
            ("tier", Ty::Str),
            ("balance", Ty::Float),
            ("since", Ty::Date),
        ],
    },
    TableDef {
        name: "orders",
        cols: &[
            ("order_id", Ty::Int),
            ("cust_id", Ty::Int),
            ("product_id", Ty::Int),
            ("order_day", Ty::Date),
            ("quantity", Ty::Int),
            ("amount", Ty::Float),
        ],
    },
    TableDef {
        name: "products",
        cols: &[
            ("product_id", Ty::Int),
            ("pname", Ty::Str),
            ("category", Ty::Str),
            ("price", Ty::Float),
        ],
    },
    TableDef {
        name: "stock",
        cols: &[
            ("product_id", Ty::Int),
            ("warehouse", Ty::Int),
            ("qty", Ty::Int),
        ],
    },
    TableDef {
        name: "regions",
        cols: &[("region", Ty::Str), ("country", Ty::Str)],
    },
];

/// An equi-join edge between two tables (indices into [`TABLES`]).
#[derive(Debug, Clone, Copy)]
pub struct JoinEdge {
    /// Left table index.
    pub lt: usize,
    /// Left join column.
    pub lc: &'static str,
    /// Right table index.
    pub rt: usize,
    /// Right join column.
    pub rc: &'static str,
}

/// Key relationships of the FedMart schema.
pub const JOIN_EDGES: &[JoinEdge] = &[
    JoinEdge {
        lt: 0,
        lc: "id",
        rt: 1,
        rc: "cust_id",
    },
    JoinEdge {
        lt: 1,
        lc: "product_id",
        rt: 2,
        rc: "product_id",
    },
    JoinEdge {
        lt: 2,
        lc: "product_id",
        rt: 3,
        rc: "product_id",
    },
    JoinEdge {
        lt: 1,
        lc: "product_id",
        rt: 3,
        rc: "product_id",
    },
    JoinEdge {
        lt: 0,
        lc: "region",
        rt: 4,
        rc: "region",
    },
];

/// A column visible in some generator scope: `alias.name` plus type.
#[derive(Debug, Clone)]
pub struct Col {
    /// Relation alias the column is reached through.
    pub qualifier: String,
    /// Column name.
    pub name: String,
    /// Coarse type.
    pub ty: Ty,
}
