//! # gis-qa — differential query fuzzing for the GIS mediator
//!
//! The mediator's defining correctness property is that *every*
//! decomposition strategy returns the answer the component systems
//! would: six independently-toggled execution paths (pushdown,
//! semijoin/bind-join shipping, parallel kernels, result cache,
//! materialized views, fault retry) must agree bit-for-bit. This
//! crate enforces that property generatively:
//!
//! * [`generator`] — a deterministic, seed-driven SQL generator over
//!   the FedMart catalog. One `u64` seed ⇒ one well-typed query.
//! * [`config`] — the engine-configuration matrix: a fully-naive
//!   reference oracle plus seven configurations that each enable a
//!   different slice of the stack (including a fault-injected run).
//! * [`runner`] — executes a query through the whole matrix and
//!   compares order-normalized results against the oracle.
//! * [`shrink`] — greedily minimizes any diverging query while it
//!   keeps diverging.
//! * [`corpus`] — the checked-in regression corpus (`tests/corpus/`):
//!   shrunk reproducers with optionally pinned expected rows,
//!   replayed in tier-1 forever.
//!
//! The `gis-qa` binary ties it together for CI:
//!
//! ```text
//! cargo run --release -p gis-qa -- --seeds 500 --corpus tests/corpus
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod corpus;
pub mod generator;
pub mod runner;
pub mod schema;
pub mod shrink;

pub use config::{matrix, oracle, EngineConfig, Mode};
pub use corpus::{load_dir, replay, CorpusCase, Expectation};
pub use generator::QueryGen;
pub use runner::{DiffReport, Divergence, Harness, RunReport};
pub use shrink::shrink_query;
