//! Deterministic, seed-driven SQL query generator.
//!
//! [`QueryGen::generate`] maps a `u64` seed to one well-typed query
//! AST over the FedMart global schema: the same seed always produces
//! the same query, so a failing seed is a complete reproduction
//! recipe. Coverage targets the engine's decomposition surface —
//! multi-source equi-joins, predicate shapes the pushdown rule moves
//! (LIKE with Unicode/NUL patterns, arithmetic, scalar functions,
//! BETWEEN/IN/IS NULL), GROUP BY with aggregates and HAVING, DISTINCT,
//! UNION [ALL], derived tables, IN-subqueries, and ORDER BY with
//! LIMIT/OFFSET.
//!
//! Two generation rules keep every query *comparable across plans*:
//!
//! 1. `LIMIT`/`OFFSET` are only emitted when `ORDER BY` covers every
//!    output ordinal. A limited query without a total order has many
//!    correct answers, and different-but-correct prefixes across
//!    configs would be indistinguishable from wrong results.
//! 2. Divisors and modulus operands are non-zero literals, so no
//!    config-dependent evaluation order can dodge (or hit) a
//!    division-by-zero error that another config misses.

use crate::schema::{Col, Ty, JOIN_EDGES, TABLES};
use gis_sql::ast::{
    BinaryOp, Expr, JoinConstraint, JoinKind, OrderByExpr, Query, Select, SelectItem, SetExpr,
    TableRef, UnaryOp,
};
use gis_types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// LIKE patterns exercised by the fuzzer: wildcards in every
/// position, escaped wildcards, raw NUL/SOH characters (the pre-fix
/// sentinel collision), multibyte Unicode, and a trailing backslash.
const LIKE_PATTERNS: &[&str] = &[
    "%",
    "cust%",
    "%_7%",
    "c_st%",
    "%語%",
    "центр",
    "%о%",
    "cust\\_1%",
    "",
    "_%",
    "\u{0}%",
    "a\u{1}",
    "%\\",
    "gold",
];

/// String literals: empty, quoted quote, backslash, NUL-bearing,
/// Unicode, and plausible FedMart data values.
const STR_LITERALS: &[&str] = &[
    "",
    "a",
    "cust_17",
    "центр",
    "it's",
    "back\\slash",
    "x\u{0}y",
    "日本",
    "gold",
    "silver",
    "bronze",
    "north",
    " padded ",
];

/// A deterministic query generator (one RNG stream per seed).
pub struct QueryGen {
    rng: StdRng,
}

impl QueryGen {
    /// Creates a generator for one seed.
    pub fn new(seed: u64) -> QueryGen {
        QueryGen {
            // Decorrelate from other users of the same seed space.
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The query for `seed`.
    pub fn generate(seed: u64) -> Query {
        QueryGen::new(seed).query()
    }

    fn pct(&mut self, p: u32) -> bool {
        self.rng.random_range(0..100u32) < p
    }

    fn upto(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        let i = self.upto(xs.len());
        &xs[i]
    }

    // ---- top level ---------------------------------------------------

    fn query(&mut self) -> Query {
        let roll = self.rng.random_range(0..100u32);
        if roll < 10 {
            self.union_query()
        } else if roll < 22 {
            self.derived_table_query()
        } else {
            let (from, cols) = self.relation();
            let (body, out) = if self.pct(35) {
                self.aggregate_select(from, &cols)
            } else {
                self.plain_select(from, &cols)
            };
            self.wrap(SetExpr::Select(Box::new(body)), out.len())
        }
    }

    /// Adds ORDER BY / LIMIT / OFFSET around a finished body.
    fn wrap(&mut self, body: SetExpr, arity: usize) -> Query {
        let mut order_by = Vec::new();
        if arity > 0 && self.pct(55) {
            // A shuffled prefix of the output ordinals.
            let mut ords: Vec<usize> = (1..=arity).collect();
            for i in (1..ords.len()).rev() {
                let j = self.rng.random_range(0..=i);
                ords.swap(i, j);
            }
            let keep = if self.pct(60) {
                ords.len()
            } else {
                1 + self.upto(ords.len())
            };
            ords.truncate(keep);
            for k in &ords {
                order_by.push(OrderByExpr {
                    expr: Expr::Literal(Value::Int64(*k as i64)),
                    asc: self.pct(70),
                    nulls_first: if self.pct(30) {
                        Some(self.pct(50))
                    } else {
                        None
                    },
                });
            }
        }
        // LIMIT without a total order is nondeterministic across
        // plans; only emit it when every ordinal is a sort key.
        let total_order = order_by.len() == arity && arity > 0;
        let (limit, offset) = if total_order && self.pct(55) {
            (
                Some(1 + self.rng.random_range(0..50u64)),
                if self.pct(35) {
                    Some(self.rng.random_range(0..10u64))
                } else {
                    None
                },
            )
        } else {
            (None, None)
        };
        Query {
            body,
            order_by,
            limit,
            offset,
        }
    }

    // ---- FROM clauses ------------------------------------------------

    /// A join tree along schema edges. Returns the table reference and
    /// the columns in scope, qualified by alias.
    fn relation(&mut self) -> (TableRef, Vec<Col>) {
        let n_tables = match self.rng.random_range(0..100u32) {
            0..=49 => 1,
            50..=79 => 2,
            80..=94 => 3,
            _ => 4,
        };
        let first = self.upto(TABLES.len());
        let mut used: Vec<(usize, String)> = vec![(first, "t0".to_string())];
        let mut tref = TableRef::Table {
            source: None,
            name: TABLES[first].name.to_string(),
            alias: Some("t0".to_string()),
        };
        while used.len() < n_tables {
            // Edges touching the used set on exactly one side.
            let candidates: Vec<(usize, bool)> = JOIN_EDGES
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    let l = used.iter().find(|(t, _)| *t == e.lt);
                    let r = used.iter().find(|(t, _)| *t == e.rt);
                    match (l, r) {
                        (Some(_), None) => Some((i, false)),
                        (None, Some(_)) => Some((i, true)),
                        _ => None,
                    }
                })
                .collect();
            let Some(&(ei, flipped)) = candidates.get(self.upto(candidates.len().max(1))) else {
                break;
            };
            let e = &JOIN_EDGES[ei];
            let (new_t, new_c, old_t, old_c) = if flipped {
                (e.lt, e.lc, e.rt, e.rc)
            } else {
                (e.rt, e.rc, e.lt, e.lc)
            };
            let alias = format!("t{}", used.len());
            let old_alias = used
                .iter()
                .find(|(t, _)| *t == old_t)
                .map(|(_, a)| a.clone())
                .unwrap_or_default();
            let kind = if self.pct(20) {
                JoinKind::Left
            } else {
                JoinKind::Inner
            };
            let on = Expr::qcol(old_alias, old_c).eq(Expr::qcol(alias.clone(), new_c));
            tref = TableRef::Join {
                left: Box::new(tref),
                right: Box::new(TableRef::Table {
                    source: None,
                    name: TABLES[new_t].name.to_string(),
                    alias: Some(alias.clone()),
                }),
                kind,
                constraint: JoinConstraint::On(on),
            };
            used.push((new_t, alias));
        }
        let mut cols = Vec::new();
        for (t, alias) in &used {
            for (name, ty) in TABLES[*t].cols {
                cols.push(Col {
                    qualifier: alias.clone(),
                    name: (*name).to_string(),
                    ty: *ty,
                });
            }
        }
        (tref, cols)
    }

    /// `(SELECT ... FROM one_table) AS sub` with a shaped outer query.
    fn derived_table_query(&mut self) -> Query {
        let t = self.upto(TABLES.len());
        let from = TableRef::Table {
            source: None,
            name: TABLES[t].name.to_string(),
            alias: Some("t0".to_string()),
        };
        let inner_cols: Vec<Col> = TABLES[t]
            .cols
            .iter()
            .map(|(name, ty)| Col {
                qualifier: "t0".to_string(),
                name: (*name).to_string(),
                ty: *ty,
            })
            .collect();
        // Inner: plain projection with forced aliases, no ORDER/LIMIT
        // (inner ordering is not observable and would add noise).
        let n = 1 + self.upto(3.min(inner_cols.len()));
        let mut projection = Vec::new();
        let mut out_cols = Vec::new();
        for i in 0..n {
            let ty = *self.pick(&[Ty::Int, Ty::Float, Ty::Str, Ty::Date]);
            let expr = self.scalar(&inner_cols, ty, 1);
            projection.push(SelectItem::Expr {
                expr,
                alias: Some(format!("c{i}")),
            });
            out_cols.push(Col {
                qualifier: "sub".to_string(),
                name: format!("c{i}"),
                ty,
            });
        }
        let selection = if self.pct(50) {
            Some(self.predicate_conj(&inner_cols))
        } else {
            None
        };
        let inner = Query {
            body: SetExpr::Select(Box::new(Select {
                distinct: self.pct(20),
                projection,
                from: Some(from),
                selection,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let sub = TableRef::Subquery {
            query: Box::new(inner),
            alias: "sub".to_string(),
        };
        let (body, out) = if self.pct(30) {
            self.aggregate_select(sub, &out_cols)
        } else {
            self.plain_select(sub, &out_cols)
        };
        self.wrap(SetExpr::Select(Box::new(body)), out.len())
    }

    /// `left UNION [ALL] right` over type-compatible projections.
    fn union_query(&mut self) -> Query {
        let arity = 1 + self.upto(3);
        let tys: Vec<Ty> = (0..arity)
            .map(|_| *self.pick(&[Ty::Int, Ty::Float, Ty::Str]))
            .collect();
        let left = self.union_side(&tys);
        let right = self.union_side(&tys);
        let body = SetExpr::Union {
            left: Box::new(left),
            right: Box::new(right),
            all: self.pct(50),
        };
        self.wrap(body, arity)
    }

    fn union_side(&mut self, tys: &[Ty]) -> SetExpr {
        let t = self.upto(TABLES.len());
        let cols: Vec<Col> = TABLES[t]
            .cols
            .iter()
            .map(|(name, ty)| Col {
                qualifier: "t0".to_string(),
                name: (*name).to_string(),
                ty: *ty,
            })
            .collect();
        let projection = tys
            .iter()
            .enumerate()
            .map(|(i, ty)| SelectItem::Expr {
                expr: self.scalar(&cols, *ty, 1),
                alias: Some(format!("c{i}")),
            })
            .collect();
        let selection = if self.pct(55) {
            Some(self.predicate_conj(&cols))
        } else {
            None
        };
        SetExpr::Select(Box::new(Select {
            distinct: false,
            projection,
            from: Some(TableRef::Table {
                source: None,
                name: TABLES[t].name.to_string(),
                alias: Some("t0".to_string()),
            }),
            selection,
            group_by: vec![],
            having: None,
        }))
    }

    // ---- SELECT bodies -----------------------------------------------

    fn plain_select(&mut self, from: TableRef, cols: &[Col]) -> (Select, Vec<Ty>) {
        let (projection, out) = if self.pct(15) {
            (
                vec![SelectItem::Wildcard],
                cols.iter().map(|c| c.ty).collect(),
            )
        } else {
            let n = 1 + self.upto(4);
            let mut items = Vec::new();
            let mut out = Vec::new();
            for i in 0..n {
                let ty = *self.pick(&[Ty::Int, Ty::Float, Ty::Str, Ty::Date]);
                items.push(SelectItem::Expr {
                    expr: self.scalar(cols, ty, 2),
                    alias: Some(format!("c{i}")),
                });
                out.push(ty);
            }
            (items, out)
        };
        let selection = if self.pct(65) {
            Some(self.predicate_conj(cols))
        } else {
            None
        };
        (
            Select {
                distinct: self.pct(20),
                projection,
                from: Some(from),
                selection,
                group_by: vec![],
                having: None,
            },
            out,
        )
    }

    fn aggregate_select(&mut self, from: TableRef, cols: &[Col]) -> (Select, Vec<Ty>) {
        let n_keys = self.upto(3);
        let mut keys = Vec::new();
        for _ in 0..n_keys {
            let c = self.pick(cols).clone();
            let e = Expr::qcol(c.qualifier.clone(), c.name.clone());
            if !keys.iter().any(|(k, _)| *k == e) {
                keys.push((e, c.ty));
            }
        }
        let want_having = self.pct(30);
        let mut projection = Vec::new();
        let mut out = Vec::new();
        for (i, (k, ty)) in keys.iter().enumerate() {
            projection.push(SelectItem::Expr {
                expr: k.clone(),
                alias: Some(format!("k{i}")),
            });
            out.push(*ty);
        }
        // HAVING compares COUNT(*), which is then also projected so
        // the predicate is checkable against the visible output.
        let count_star = Expr::Function {
            name: "count".to_string(),
            args: vec![Expr::Wildcard],
            distinct: false,
        };
        let n_aggs = 1 + self.upto(3);
        for i in 0..n_aggs {
            let (agg, ty) = if i == 0 && want_having {
                (count_star.clone(), Ty::Int)
            } else {
                self.aggregate(cols)
            };
            projection.push(SelectItem::Expr {
                expr: agg,
                alias: Some(format!("a{i}")),
            });
            out.push(ty);
        }
        let having = if want_having {
            Some(Expr::BinaryOp {
                left: Box::new(count_star),
                op: *self.pick(&[BinaryOp::Gt, BinaryOp::GtEq, BinaryOp::Lt]),
                right: Box::new(Expr::Literal(Value::Int64(1 + self.upto(5) as i64))),
            })
        } else {
            None
        };
        let selection = if self.pct(50) {
            Some(self.predicate_conj(cols))
        } else {
            None
        };
        (
            Select {
                distinct: false,
                projection,
                from: Some(from),
                selection,
                group_by: keys.into_iter().map(|(k, _)| k).collect(),
                having,
            },
            out,
        )
    }

    fn aggregate(&mut self, cols: &[Col]) -> (Expr, Ty) {
        let c = self.pick(cols).clone();
        let col = Expr::qcol(c.qualifier.clone(), c.name.clone());
        match self.rng.random_range(0..100u32) {
            0..=14 => (
                Expr::Function {
                    name: "count".to_string(),
                    args: vec![Expr::Wildcard],
                    distinct: false,
                },
                Ty::Int,
            ),
            15..=29 => (
                Expr::Function {
                    name: "count".to_string(),
                    args: vec![col],
                    distinct: self.pct(40),
                },
                Ty::Int,
            ),
            30..=54 => {
                // SUM over a numeric column (or quantity arithmetic).
                let (arg, ty) = match c.ty {
                    Ty::Int => (col, Ty::Int),
                    Ty::Float => (col, Ty::Float),
                    _ => {
                        let d = self.int_col_expr(cols);
                        (d, Ty::Int)
                    }
                };
                (
                    Expr::Function {
                        name: "sum".to_string(),
                        args: vec![arg],
                        distinct: false,
                    },
                    ty,
                )
            }
            55..=69 => {
                let arg = match c.ty {
                    Ty::Int | Ty::Float => col,
                    _ => self.int_col_expr(cols),
                };
                (
                    Expr::Function {
                        name: "avg".to_string(),
                        args: vec![arg],
                        distinct: false,
                    },
                    Ty::Float,
                )
            }
            _ => (
                Expr::Function {
                    name: if self.pct(50) { "min" } else { "max" }.to_string(),
                    args: vec![col],
                    distinct: false,
                },
                c.ty,
            ),
        }
    }

    /// Some integer column, or a small literal when none exists.
    fn int_col_expr(&mut self, cols: &[Col]) -> Expr {
        let ints: Vec<&Col> = cols.iter().filter(|c| c.ty == Ty::Int).collect();
        if ints.is_empty() {
            Expr::Literal(Value::Int64(self.rng.random_range(0..10i64)))
        } else {
            let c = ints[self.upto(ints.len())];
            Expr::qcol(c.qualifier.clone(), c.name.clone())
        }
    }

    // ---- predicates --------------------------------------------------

    /// 1–3 predicates joined with AND (the unit pushdown moves).
    /// `IN (SELECT ...)` only binds as a top-level WHERE conjunct, so
    /// subquery membership tests are appended here — never nested
    /// under OR/NOT/CASE by [`Self::predicate`].
    fn predicate_conj(&mut self, cols: &[Col]) -> Expr {
        let n = 1 + self.upto(3);
        let mut e = self.predicate(cols, 2);
        for _ in 1..n {
            let next = self.predicate(cols, 2);
            e = if self.pct(80) {
                e.and(next)
            } else {
                Expr::BinaryOp {
                    left: Box::new(e),
                    op: BinaryOp::Or,
                    right: Box::new(next),
                }
            };
        }
        if self.pct(18) {
            let sub = self.in_subquery(cols);
            e = if self.pct(25) { sub } else { e.and(sub) };
        }
        e
    }

    fn predicate(&mut self, cols: &[Col], d: usize) -> Expr {
        let c = self.pick(cols).clone();
        let col = Expr::qcol(c.qualifier.clone(), c.name.clone());
        let roll = self.rng.random_range(0..100u32);
        match roll {
            // Comparison against a same-type scalar.
            0..=34 => {
                let rhs = self.scalar(cols, c.ty, d.saturating_sub(1));
                Expr::BinaryOp {
                    left: Box::new(col),
                    op: *self.pick(&[
                        BinaryOp::Eq,
                        BinaryOp::NotEq,
                        BinaryOp::Lt,
                        BinaryOp::LtEq,
                        BinaryOp::Gt,
                        BinaryOp::GtEq,
                    ]),
                    right: Box::new(rhs),
                }
            }
            // LIKE over a string expression.
            35..=54 => {
                let target = match c.ty {
                    Ty::Str => col,
                    _ => self.str_col_expr(cols),
                };
                Expr::Like {
                    negated: self.pct(25),
                    expr: Box::new(target),
                    pattern: Box::new(Expr::Literal(Value::Utf8(
                        (*self.pick(LIKE_PATTERNS)).to_string(),
                    ))),
                }
            }
            55..=64 => Expr::Between {
                expr: Box::new(col),
                negated: self.pct(25),
                low: Box::new(self.literal(c.ty)),
                high: Box::new(self.literal(c.ty)),
            },
            65..=74 => {
                let n = 1 + self.upto(4);
                let mut list: Vec<Expr> = (0..n).map(|_| self.literal(c.ty)).collect();
                if self.pct(20) {
                    list.push(Expr::Literal(Value::Null));
                }
                Expr::InList {
                    expr: Box::new(col),
                    negated: self.pct(30),
                    list,
                }
            }
            75..=82 => Expr::IsNull {
                expr: Box::new(col),
                negated: self.pct(50),
            },
            83..=95 if d > 0 => Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(self.predicate(cols, d - 1)),
            },
            _ if d > 0 => {
                let l = self.predicate(cols, d - 1);
                let r = self.predicate(cols, d - 1);
                Expr::BinaryOp {
                    left: Box::new(l),
                    op: if self.pct(50) {
                        BinaryOp::And
                    } else {
                        BinaryOp::Or
                    },
                    right: Box::new(r),
                }
            }
            _ => Expr::IsNull {
                expr: Box::new(col),
                negated: true,
            },
        }
    }

    /// `col [NOT] IN (SELECT key FROM dim [WHERE ...])` along a real
    /// key relationship, falling back to a plain comparison when the
    /// scope has no subquery-able column.
    fn in_subquery(&mut self, cols: &[Col]) -> Expr {
        let target = cols.iter().find_map(|c| match c.name.as_str() {
            "cust_id" => Some((c.clone(), "customers", "id")),
            "product_id" => Some((c.clone(), "products", "product_id")),
            "region" => Some((c.clone(), "regions", "region")),
            _ => None,
        });
        let Some((c, table, key)) = target else {
            let c = self.pick(cols).clone();
            let lit = self.literal(c.ty);
            return Expr::BinaryOp {
                left: Box::new(Expr::qcol(c.qualifier, c.name)),
                op: BinaryOp::NotEq,
                right: Box::new(lit),
            };
        };
        let inner_cols: Vec<Col> = TABLES
            .iter()
            .find(|t| t.name == table)
            .map(|t| {
                t.cols
                    .iter()
                    .map(|(name, ty)| Col {
                        qualifier: table.to_string(),
                        name: (*name).to_string(),
                        ty: *ty,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let selection = if self.pct(60) {
            Some(self.predicate(&inner_cols, 0))
        } else {
            None
        };
        let inner = Query {
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                projection: vec![SelectItem::Expr {
                    expr: Expr::qcol(table, key),
                    alias: None,
                }],
                from: Some(TableRef::Table {
                    source: None,
                    name: table.to_string(),
                    alias: None,
                }),
                selection,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        Expr::InSubquery {
            expr: Box::new(Expr::qcol(c.qualifier, c.name)),
            negated: self.pct(30),
            query: Box::new(inner),
        }
    }

    // ---- scalar expressions ------------------------------------------

    /// Some string column, or a literal when none is in scope.
    fn str_col_expr(&mut self, cols: &[Col]) -> Expr {
        let strs: Vec<&Col> = cols.iter().filter(|c| c.ty == Ty::Str).collect();
        if strs.is_empty() {
            Expr::Literal(Value::Utf8((*self.pick(STR_LITERALS)).to_string()))
        } else {
            let c = strs[self.upto(strs.len())];
            Expr::qcol(c.qualifier.clone(), c.name.clone())
        }
    }

    /// A literal, shaped the way the parser shapes it: negatives are
    /// `Neg(positive literal)`, so generate → unparse → parse is a
    /// fixpoint (the shrinker and corpus round-trip rely on this).
    fn int_lit(v: i64) -> Expr {
        if v < 0 {
            Expr::UnaryOp {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::Literal(Value::Int64(-v))),
            }
        } else {
            Expr::Literal(Value::Int64(v))
        }
    }

    fn literal(&mut self, ty: Ty) -> Expr {
        match ty {
            Ty::Int => {
                let magnitude = match self.rng.random_range(0..10u32) {
                    0 => 0,
                    1 | 2 => 1,
                    _ => self.rng.random_range(0..1000i64),
                };
                let sign = if self.pct(30) { -1 } else { 1 };
                Self::int_lit(sign * magnitude)
            }
            Ty::Float => {
                let lit = Expr::Literal(Value::Float64(
                    *self.pick(&[0.0, 1.5, 2.25, 99.99, 1000.0, 0.001, 250.0, 0.5, 42.42]),
                ));
                if self.pct(25) {
                    Expr::UnaryOp {
                        op: UnaryOp::Neg,
                        expr: Box::new(lit),
                    }
                } else {
                    lit
                }
            }
            Ty::Str => Expr::Literal(Value::Utf8((*self.pick(STR_LITERALS)).to_string())),
            // 1989-2023-ish, matching FedMart's date ranges.
            Ty::Date => Expr::Literal(Value::Date(self.rng.random_range(7000..19500i32))),
        }
    }

    fn col_of(&mut self, cols: &[Col], ty: Ty) -> Option<Expr> {
        let matching: Vec<&Col> = cols.iter().filter(|c| c.ty == ty).collect();
        if matching.is_empty() {
            None
        } else {
            let c = matching[self.upto(matching.len())];
            Some(Expr::qcol(c.qualifier.clone(), c.name.clone()))
        }
    }

    /// A scalar expression of type `ty`; `d` bounds recursion depth.
    fn scalar(&mut self, cols: &[Col], ty: Ty, d: usize) -> Expr {
        if d == 0 || self.pct(35) {
            return match self.col_of(cols, ty) {
                Some(c) if self.pct(75) => c,
                _ => self.literal(ty),
            };
        }
        match ty {
            Ty::Int => self.int_expr(cols, d),
            Ty::Float => self.float_expr(cols, d),
            Ty::Str => self.str_expr(cols, d),
            Ty::Date => self
                .col_of(cols, Ty::Date)
                .unwrap_or_else(|| self.literal(Ty::Date)),
        }
    }

    fn int_expr(&mut self, cols: &[Col], d: usize) -> Expr {
        match self.rng.random_range(0..100u32) {
            0..=29 => {
                let l = self.scalar(cols, Ty::Int, d - 1);
                let r = self.scalar(cols, Ty::Int, d - 1);
                Expr::BinaryOp {
                    left: Box::new(l),
                    op: *self.pick(&[BinaryOp::Plus, BinaryOp::Minus, BinaryOp::Multiply]),
                    right: Box::new(r),
                }
            }
            // Divide / modulo by a non-zero literal only: a zero
            // divisor reached in one plan but folded or filtered away
            // in another would create spurious divergences.
            30..=44 => {
                let l = self.scalar(cols, Ty::Int, d - 1);
                Expr::BinaryOp {
                    left: Box::new(l),
                    op: if self.pct(50) {
                        BinaryOp::Divide
                    } else {
                        BinaryOp::Modulo
                    },
                    right: Box::new(Expr::Literal(Value::Int64(self.rng.random_range(2..9i64)))),
                }
            }
            45..=59 => Expr::Function {
                name: "length".to_string(),
                args: vec![self.str_expr(cols, d - 1)],
                distinct: false,
            },
            60..=69 => Expr::Function {
                name: "abs".to_string(),
                args: vec![self.scalar(cols, Ty::Int, d - 1)],
                distinct: false,
            },
            70..=79 => Expr::Function {
                name: (*self.pick(&["year", "month", "day"])).to_string(),
                args: vec![self
                    .col_of(cols, Ty::Date)
                    .unwrap_or_else(|| self.literal(Ty::Date))],
                distinct: false,
            },
            80..=89 => Expr::Function {
                name: if self.pct(50) { "floor" } else { "ceil" }.to_string(),
                args: vec![self.scalar(cols, Ty::Float, d - 1)],
                distinct: false,
            },
            90..=94 => self.case_expr(cols, Ty::Int, d),
            _ => Expr::UnaryOp {
                op: UnaryOp::Neg,
                expr: Box::new(self.scalar(cols, Ty::Int, d - 1)),
            },
        }
    }

    fn float_expr(&mut self, cols: &[Col], d: usize) -> Expr {
        match self.rng.random_range(0..100u32) {
            0..=29 => {
                let l = self.scalar(cols, Ty::Float, d - 1);
                let r = self.scalar(cols, Ty::Float, d - 1);
                Expr::BinaryOp {
                    left: Box::new(l),
                    op: *self.pick(&[BinaryOp::Plus, BinaryOp::Minus, BinaryOp::Multiply]),
                    right: Box::new(r),
                }
            }
            30..=39 => Expr::BinaryOp {
                left: Box::new(self.scalar(cols, Ty::Float, d - 1)),
                op: BinaryOp::Divide,
                right: Box::new(Expr::Literal(Value::Float64(
                    *self.pick(&[2.0, 4.0, 0.5, 8.0, 3.0]),
                ))),
            },
            40..=54 => {
                let digits = self.rng.random_range(-2..4i64);
                Expr::Function {
                    name: "round".to_string(),
                    args: vec![self.scalar(cols, Ty::Float, d - 1), Self::int_lit(digits)],
                    distinct: false,
                }
            }
            55..=64 => Expr::Function {
                name: "sqrt".to_string(),
                args: vec![Expr::Function {
                    name: "abs".to_string(),
                    args: vec![self.scalar(cols, Ty::Float, d - 1)],
                    distinct: false,
                }],
                distinct: false,
            },
            65..=74 => Expr::Cast {
                expr: Box::new(self.scalar(cols, Ty::Int, d - 1)),
                to: DataType::Float64,
            },
            75..=84 => Expr::Function {
                name: "coalesce".to_string(),
                args: vec![
                    self.col_of(cols, Ty::Float)
                        .unwrap_or(Expr::Literal(Value::Null)),
                    self.literal(Ty::Float),
                ],
                distinct: false,
            },
            85..=92 => self.case_expr(cols, Ty::Float, d),
            _ => Expr::Function {
                name: "nullif".to_string(),
                args: vec![self.scalar(cols, Ty::Float, d - 1), self.literal(Ty::Float)],
                distinct: false,
            },
        }
    }

    fn str_expr(&mut self, cols: &[Col], d: usize) -> Expr {
        match self.rng.random_range(0..100u32) {
            0..=24 => Expr::Function {
                name: if self.pct(50) { "upper" } else { "lower" }.to_string(),
                args: vec![self.str_expr(cols, d.saturating_sub(1))],
                distinct: false,
            },
            // SUBSTR with negative / zero / past-the-end starts — the
            // satellite-fix surface.
            25..=49 => {
                let start = self.rng.random_range(-4..8i64);
                let mut args = vec![
                    self.str_expr(cols, d.saturating_sub(1)),
                    Self::int_lit(start),
                ];
                if self.pct(70) {
                    args.push(Expr::Literal(Value::Int64(self.rng.random_range(0..7i64))));
                }
                Expr::Function {
                    name: "substr".to_string(),
                    args,
                    distinct: false,
                }
            }
            50..=64 => Expr::BinaryOp {
                left: Box::new(self.str_expr(cols, d.saturating_sub(1))),
                op: BinaryOp::Concat,
                right: Box::new(self.str_expr(cols, d.saturating_sub(1))),
            },
            65..=74 => Expr::Function {
                name: "trim".to_string(),
                args: vec![self.str_expr(cols, d.saturating_sub(1))],
                distinct: false,
            },
            75..=84 => Expr::Function {
                name: "coalesce".to_string(),
                args: vec![
                    self.col_of(cols, Ty::Str)
                        .unwrap_or(Expr::Literal(Value::Null)),
                    self.literal(Ty::Str),
                ],
                distinct: false,
            },
            _ => match self.col_of(cols, Ty::Str) {
                Some(c) => c,
                None => self.literal(Ty::Str),
            },
        }
    }

    fn case_expr(&mut self, cols: &[Col], ty: Ty, d: usize) -> Expr {
        let n = 1 + self.upto(2);
        let branches = (0..n)
            .map(|_| {
                (
                    self.predicate(cols, 0),
                    self.scalar(cols, ty, d.saturating_sub(1)),
                )
            })
            .collect();
        Expr::Case {
            operand: None,
            branches,
            else_expr: if self.pct(70) {
                Some(Box::new(self.scalar(cols, ty, d.saturating_sub(1))))
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_sql::{parse, unparse};

    #[test]
    fn deterministic_per_seed() {
        for seed in 0..50 {
            assert_eq!(QueryGen::generate(seed), QueryGen::generate(seed));
        }
        // Different seeds should (essentially always) differ.
        assert_ne!(QueryGen::generate(1), QueryGen::generate(2));
    }

    #[test]
    fn generated_queries_unparse_and_reparse() {
        for seed in 0..300 {
            let q = QueryGen::generate(seed);
            let sql = unparse::query_to_sql(&q);
            let stmt = parse(&sql).unwrap_or_else(|e| {
                panic!("seed {seed}: unparse output failed to parse: {e}\n{sql}")
            });
            // Round-trip fixpoint: unparse(parse(unparse(q))) is stable.
            if let gis_sql::ast::Statement::Query(q2) = stmt {
                assert_eq!(
                    unparse::query_to_sql(&q2),
                    sql,
                    "seed {seed}: unparse not a fixpoint"
                );
            } else {
                panic!("seed {seed}: not a query");
            }
        }
    }

    #[test]
    fn limit_only_under_total_order() {
        for seed in 0..500 {
            let q = QueryGen::generate(seed);
            if q.limit.is_some() || q.offset.is_some() {
                assert!(
                    !q.order_by.is_empty(),
                    "seed {seed}: LIMIT without ORDER BY"
                );
            }
        }
    }
}
