//! CI entry point: replay the regression corpus, then fuzz a seed
//! range, and exit non-zero on any divergence.
//!
//! ```text
//! gis-qa [--seeds N] [--start N] [--corpus DIR] [--no-shrink] [--write-corpus DIR]
//! ```

use gis_qa::{corpus, Harness};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start: u64,
    corpus: Option<PathBuf>,
    shrink: bool,
    write_corpus: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 500,
        start: 0,
        corpus: None,
        shrink: true,
        write_corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--write-corpus" => args.write_corpus = Some(PathBuf::from(value("--write-corpus")?)),
            "--no-shrink" => args.shrink = false,
            "--help" | "-h" => {
                println!(
                    "gis-qa: differential query fuzzer\n\n\
                     USAGE: gis-qa [--seeds N] [--start N] [--corpus DIR] [--no-shrink] [--write-corpus DIR]\n\n\
                     --seeds N          generator seeds to run (default 500)\n\
                     --start N          first seed (default 0)\n\
                     --corpus DIR       replay the regression corpus in DIR first\n\
                     --no-shrink        report divergences without minimizing them\n\
                     --write-corpus DIR append shrunk divergences to DIR as .sql files"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gis-qa: {e}");
            return ExitCode::from(2);
        }
    };
    let harness = match Harness::new() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gis-qa: failed to build harness: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;

    if let Some(dir) = &args.corpus {
        match corpus::load_dir(dir) {
            Ok(cases) => {
                let mut bad = 0usize;
                for case in &cases {
                    if let Err(e) = corpus::replay(&harness, case) {
                        eprintln!("corpus FAIL {e}");
                        bad += 1;
                    }
                }
                println!(
                    "corpus: {}/{} cases pass ({})",
                    cases.len() - bad,
                    cases.len(),
                    dir.display()
                );
                failed |= bad > 0;
            }
            Err(e) => {
                eprintln!("gis-qa: corpus: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let report = harness.run_seeds(args.start, args.seeds, args.shrink);
    print!("{}", report.render());
    if let Some(dir) = &args.write_corpus {
        for d in &report.divergences {
            match corpus::write_case(dir, d.seed, d.config, &d.shrunk_sql, &d.detail) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("gis-qa: writing corpus entry: {e}"),
            }
        }
    }
    failed |= report.total_divergences() > 0;

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
