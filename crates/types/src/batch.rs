//! Record batches: the unit of data flow.
//!
//! A [`Batch`] is a schema plus one equal-length [`Array`] per field.
//! Operators consume and produce batches; the simulated network ships
//! batches; adapters return batches. Keeping a single unit everywhere
//! makes the byte accounting of the federation experiments exact.

use crate::array::{Array, ArrayBuilder};
use crate::error::{GisError, Result};
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A collection of equal-length columns conforming to a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: SchemaRef,
    columns: Vec<Array>,
    rows: usize,
}

impl Batch {
    /// Builds a batch, validating column count, lengths, and types.
    pub fn try_new(schema: SchemaRef, columns: Vec<Array>) -> Result<Batch> {
        if schema.len() != columns.len() {
            return Err(GisError::Internal(format!(
                "batch has {} columns but schema has {} fields",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, Array::len);
        for (i, (c, f)) in columns.iter().zip(schema.fields()).enumerate() {
            if c.len() != rows {
                return Err(GisError::Internal(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.data_type() != f.data_type {
                return Err(GisError::Internal(format!(
                    "column {i} ('{}') has type {}, schema says {}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch (zero rows) of the given schema.
    pub fn empty(schema: SchemaRef) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Array::empty(f.data_type))
            .collect();
        Batch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// A batch with zero columns and `rows` rows — the input relation
    /// for a `SELECT` with no `FROM`.
    pub fn placeholder(rows: usize) -> Batch {
        Batch {
            schema: Arc::new(Schema::empty()),
            columns: vec![],
            rows,
        }
    }

    /// Builds a batch from rows of values, coercing to the schema.
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Batch> {
        let mut builders: Vec<ArrayBuilder> = schema
            .fields()
            .iter()
            .map(|f| ArrayBuilder::with_capacity(f.data_type, rows.len()))
            .collect();
        for (rn, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(GisError::Internal(format!(
                    "row {rn} has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push_value(&v.cast_to(b.data_type())?)?;
            }
        }
        Batch::try_new(
            schema,
            builders.into_iter().map(ArrayBuilder::finish).collect(),
        )
    }

    /// The schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The columns.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Array {
        &self.columns[i]
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// A borrowed view of row `i`.
    pub fn row(&self, i: usize) -> Row<'_> {
        Row::new(self, i)
    }

    /// Materializes row `i` as values.
    pub fn row_values(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// All rows materialized (test/debug; O(rows × cols) allocations).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row_values(i)).collect()
    }

    /// Keeps rows where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Result<Batch> {
        if keep.len() != self.rows {
            return Err(GisError::Internal(format!(
                "filter mask has {} entries for {} rows",
                keep.len(),
                self.rows
            )));
        }
        let columns: Vec<Array> = self.columns.iter().map(|c| c.filter(keep)).collect();
        let rows = keep.iter().filter(|&&k| k).count();
        Ok(Batch {
            schema: self.schema.clone(),
            columns,
            rows,
        })
    }

    /// Gathers rows by index (indices may repeat / reorder).
    pub fn take(&self, indices: &[usize]) -> Batch {
        let columns: Vec<Array> = self.columns.iter().map(|c| c.take(indices)).collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }

    /// Rows `[offset, offset+len)` as a new batch.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        let len = len.min(self.rows.saturating_sub(offset));
        let columns: Vec<Array> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: len,
        }
    }

    /// Projects onto the given column ordinals.
    pub fn project(&self, indices: &[usize]) -> Result<Batch> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(GisError::Internal(format!(
                    "projection index {i} out of range ({} columns)",
                    self.columns.len()
                )));
            }
        }
        let schema = Arc::new(self.schema.project(indices));
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(Batch {
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// Concatenates batches with identical schemas.
    pub fn concat(schema: SchemaRef, batches: &[Batch]) -> Result<Batch> {
        if batches.is_empty() {
            return Ok(Batch::empty(schema));
        }
        let mut columns = Vec::with_capacity(schema.len());
        for c in 0..schema.len() {
            let parts: Vec<Array> = batches.iter().map(|b| b.columns[c].clone()).collect();
            columns.push(Array::concat(&parts)?);
        }
        Batch::try_new(schema, columns)
    }

    /// Horizontally glues two batches with the same row count
    /// (join output assembly).
    pub fn hstack(&self, right: &Batch) -> Result<Batch> {
        if self.rows != right.rows {
            return Err(GisError::Internal(format!(
                "hstack row mismatch: {} vs {}",
                self.rows, right.rows
            )));
        }
        let schema = Arc::new(self.schema.join(&right.schema));
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Ok(Batch {
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// Approximate bytes on the simulated wire: per-column payload plus
    /// a small frame header per column.
    pub fn wire_size(&self) -> usize {
        8 + self
            .columns
            .iter()
            .map(|c| 4 + c.wire_size())
            .sum::<usize>()
    }

    /// Renders an ASCII table (examples and the bench harness reports).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = (0..self.rows)
            .map(|r| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| {
                        let s = col.value_at(r).to_string();
                        widths[c] = widths[c].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rows {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {v:w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Field;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref()
    }

    fn sample() -> Batch {
        Batch::from_rows(
            schema(),
            &[
                vec![Value::Int64(1), Value::Utf8("ada".into())],
                vec![Value::Int64(2), Value::Null],
                vec![Value::Int64(3), Value::Utf8("grace".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let b = sample();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row_values(1), vec![Value::Int64(2), Value::Null]);
    }

    #[test]
    fn try_new_validates_shape() {
        let s = schema();
        let bad_cols = vec![Array::nulls(DataType::Int64, 2)];
        assert!(Batch::try_new(s.clone(), bad_cols).is_err());
        let mismatched = vec![
            Array::nulls(DataType::Int64, 2),
            Array::nulls(DataType::Utf8, 3),
        ];
        assert!(Batch::try_new(s.clone(), mismatched).is_err());
        let wrong_type = vec![
            Array::nulls(DataType::Utf8, 2),
            Array::nulls(DataType::Utf8, 2),
        ];
        assert!(Batch::try_new(s, wrong_type).is_err());
    }

    #[test]
    fn from_rows_coerces_values() {
        let b =
            Batch::from_rows(schema(), &[vec![Value::Int32(7), Value::Utf8("x".into())]]).unwrap();
        assert_eq!(b.row_values(0)[0], Value::Int64(7));
    }

    #[test]
    fn filter_take_slice() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        let t = b.take(&[2, 2, 0]);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row_values(0)[0], Value::Int64(3));
        let s = b.slice(1, 5);
        assert_eq!(s.num_rows(), 2);
    }

    #[test]
    fn project_reorders_columns() {
        let b = sample().project(&[1, 0]).unwrap();
        assert_eq!(b.schema().field(0).name, "name");
        assert_eq!(b.row_values(0)[1], Value::Int64(1));
        assert!(sample().project(&[9]).is_err());
    }

    #[test]
    fn concat_and_hstack() {
        let b = sample();
        let c = Batch::concat(schema(), &[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.num_rows(), 6);
        let empty = Batch::concat(schema(), &[]).unwrap();
        assert_eq!(empty.num_rows(), 0);
        let h = b.hstack(&b).unwrap();
        assert_eq!(h.num_columns(), 4);
        assert!(b.hstack(&b.slice(0, 1)).is_err());
    }

    #[test]
    fn table_rendering_contains_values() {
        let t = sample().to_table();
        assert!(t.contains("ada"));
        assert!(t.contains("NULL"));
        assert!(t.contains("id"));
    }

    #[test]
    fn placeholder_has_rows_without_columns() {
        let p = Batch::placeholder(1);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.num_columns(), 0);
    }
}
