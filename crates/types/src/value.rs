//! Dynamically-typed scalar values.
//!
//! `Value` is the plan-time and row-at-a-time representation: literals
//! in expressions, keys shipped during bind-joins, aggregate
//! accumulator state, and the payload of KV component stores.

use crate::datatype::DataType;
use crate::error::{GisError, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single dynamically-typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Boolean(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Days since epoch.
    Date(i32),
    /// Microseconds since epoch.
    Timestamp(i64),
}

impl Value {
    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Boolean(_) => DataType::Boolean,
            Value::Int32(_) => DataType::Int32,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Utf8(_) => DataType::Utf8,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate bytes this value occupies on the simulated wire.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Boolean(_) => 1,
            Value::Int32(_) | Value::Date(_) => 4,
            Value::Int64(_) | Value::Float64(_) | Value::Timestamp(_) => 8,
            Value::Utf8(s) => 4 + s.len(),
        }
    }

    /// Extracts a boolean, erroring on any other non-null type.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Boolean(b) => Ok(Some(*b)),
            other => Err(GisError::Execution(format!(
                "expected boolean, got {}",
                other.data_type()
            ))),
        }
    }

    /// Numeric view as f64 (integers widen), `None` for NULL.
    pub fn as_f64(&self) -> Result<Option<f64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int32(v) => Ok(Some(*v as f64)),
            Value::Int64(v) => Ok(Some(*v as f64)),
            Value::Float64(v) => Ok(Some(*v)),
            other => Err(GisError::Execution(format!(
                "expected numeric, got {}",
                other.data_type()
            ))),
        }
    }

    /// Integer view as i64 (Int32 widens), `None` for NULL.
    pub fn as_i64(&self) -> Result<Option<i64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int32(v) => Ok(Some(*v as i64)),
            Value::Int64(v) => Ok(Some(*v)),
            Value::Date(v) => Ok(Some(*v as i64)),
            Value::Timestamp(v) => Ok(Some(*v)),
            other => Err(GisError::Execution(format!(
                "expected integer, got {}",
                other.data_type()
            ))),
        }
    }

    /// String view, `None` for NULL.
    pub fn as_str(&self) -> Result<Option<&str>> {
        match self {
            Value::Null => Ok(None),
            Value::Utf8(s) => Ok(Some(s)),
            other => Err(GisError::Execution(format!(
                "expected utf8, got {}",
                other.data_type()
            ))),
        }
    }

    /// Casts this value to `target`, following the permissive explicit
    /// cast rules of [`DataType::can_cast_to`]. NULL casts to NULL.
    pub fn cast_to(&self, target: DataType) -> Result<Value> {
        use DataType as T;
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.data_type() == target {
            return Ok(self.clone());
        }
        let fail = || {
            Err(GisError::Execution(format!(
                "cannot cast {} value {self} to {target}",
                self.data_type()
            )))
        };
        match (self, target) {
            (Value::Int32(v), T::Int64) => Ok(Value::Int64(*v as i64)),
            (Value::Int32(v), T::Float64) => Ok(Value::Float64(*v as f64)),
            (Value::Int64(v), T::Int32) => i32::try_from(*v)
                .map(Value::Int32)
                .map_err(|_| GisError::Execution(format!("int64 {v} overflows int32"))),
            (Value::Int64(v), T::Float64) => Ok(Value::Float64(*v as f64)),
            (Value::Float64(v), T::Int32) => {
                if v.is_finite() && *v >= i32::MIN as f64 && *v <= i32::MAX as f64 {
                    Ok(Value::Int32(*v as i32))
                } else {
                    Err(GisError::Execution(format!("float {v} overflows int32")))
                }
            }
            (Value::Float64(v), T::Int64) => {
                if v.is_finite() && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    Ok(Value::Int64(*v as i64))
                } else {
                    Err(GisError::Execution(format!("float {v} overflows int64")))
                }
            }
            (Value::Boolean(b), t) if t.is_numeric() => Value::Int32(i32::from(*b)).cast_to(t),
            (v, T::Utf8) => Ok(Value::Utf8(v.to_string())),
            (Value::Utf8(s), t) => cast_str(s, t),
            (Value::Date(d), T::Timestamp) => Ok(Value::Timestamp((*d as i64) * 86_400_000_000)),
            (Value::Timestamp(us), T::Date) => {
                Ok(Value::Date(us.div_euclid(86_400_000_000) as i32))
            }
            (Value::Int32(v), T::Date) => Ok(Value::Date(*v)),
            (Value::Int64(v), T::Date) => i32::try_from(*v)
                .map(Value::Date)
                .map_err(|_| GisError::Execution(format!("int64 {v} overflows date"))),
            (Value::Int32(v), T::Timestamp) => Ok(Value::Timestamp(*v as i64)),
            (Value::Int64(v), T::Timestamp) => Ok(Value::Timestamp(*v)),
            (Value::Date(d), t) if t.is_integer() => Value::Int32(*d).cast_to(t),
            (Value::Timestamp(us), t) if t.is_integer() => Value::Int64(*us).cast_to(t),
            _ => fail(),
        }
    }

    /// Total order used for sorting and merge operations.
    ///
    /// NULLs sort *first* (before any value); floats use IEEE total
    /// ordering so the comparison is total even in the presence of NaN.
    /// Cross-type comparisons between numerics widen to f64; any other
    /// cross-type pair is ordered by type tag (stable, arbitrary), which
    /// keeps sorting total without panicking on mixed inputs.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                let fa = a.as_f64().unwrap_or(None).unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(None).unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality (`=` semantics): NULL equals nothing, numerics
    /// compare by value across widths. Returns `None` when either side
    /// is NULL (three-valued logic).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Boolean(_) => 1,
        Value::Int32(_) => 2,
        Value::Int64(_) => 3,
        Value::Float64(_) => 4,
        Value::Utf8(_) => 5,
        Value::Date(_) => 6,
        Value::Timestamp(_) => 7,
    }
}

fn cast_str(s: &str, target: DataType) -> Result<Value> {
    let t = s.trim();
    let err = |what: &str| Err(GisError::Execution(format!("cannot parse '{s}' as {what}")));
    match target {
        DataType::Boolean => match t.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Boolean(true)),
            "false" | "f" | "0" => Ok(Value::Boolean(false)),
            _ => err("boolean"),
        },
        DataType::Int32 => t.parse().map(Value::Int32).or_else(|_| err("int32")),
        DataType::Int64 => t.parse().map(Value::Int64).or_else(|_| err("int64")),
        DataType::Float64 => t.parse().map(Value::Float64).or_else(|_| err("float64")),
        DataType::Date => parse_date(t).map(Value::Date).ok_or_else(|| {
            GisError::Execution(format!("cannot parse '{s}' as date (want YYYY-MM-DD)"))
        }),
        DataType::Timestamp => {
            // Accept either a raw integer (microseconds) or a date.
            if let Ok(us) = t.parse::<i64>() {
                Ok(Value::Timestamp(us))
            } else if let Some(d) = parse_date(t) {
                Ok(Value::Timestamp(d as i64 * 86_400_000_000))
            } else {
                err("timestamp")
            }
        }
        DataType::Utf8 => Ok(Value::Utf8(s.to_string())),
        DataType::Null => Ok(Value::Null),
    }
}

/// Parses `YYYY-MM-DD` into days since the Unix epoch using the
/// proleptic Gregorian calendar. Returns `None` on malformed input.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    if d > days_in_month(y, m) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Formats days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Decomposes days-since-epoch into civil `(year, month, day)` using
/// the proleptic Gregorian calendar. Years before 1 CE are negative;
/// unlike re-parsing [`format_date`] output, this is total over the
/// whole `i32` day range.
pub fn date_parts(days: i32) -> (i64, u32, u32) {
    civil_from_days(days)
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

// Howard Hinnant's civil-days algorithms.
fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Utf8(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
            Value::Timestamp(us) => write!(f, "ts:{us}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with total_cmp equality: numerics that compare
        // equal across widths must hash identically, so all numerics
        // hash through a canonical f64 bit pattern (integers in the
        // f64-exact range) or their exact i64 when out of range.
        match self {
            Value::Null => state.write_u8(0),
            Value::Boolean(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Int32(v) => hash_numeric(*v as f64, Some(*v as i64), state),
            Value::Int64(v) => hash_numeric(*v as f64, Some(*v), state),
            Value::Float64(v) => hash_numeric(*v, exact_i64(*v), state),
            Value::Utf8(s) => {
                state.write_u8(5);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(6);
                state.write_i32(*d);
            }
            Value::Timestamp(us) => {
                state.write_u8(7);
                state.write_i64(*us);
            }
        }
    }
}

fn exact_i64(v: f64) -> Option<i64> {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        Some(v as i64)
    } else {
        None
    }
}

fn hash_numeric<H: Hasher>(f: f64, exact: Option<i64>, state: &mut H) {
    state.write_u8(2);
    match exact {
        Some(i) => state.write_i64(i),
        None => {
            // Normalize -0.0 to 0.0 so they hash alike (they compare
            // unequal under total_cmp, but equal hashing is still safe).
            let f = if f == 0.0 { 0.0 } else { f };
            state.write_u64(f.to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_width_numeric_equality_and_hash() {
        let a = Value::Int32(42);
        let b = Value::Int64(42);
        let c = Value::Float64(42.0);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&b), hash_of(&c));
    }

    #[test]
    fn null_sorts_first_and_equals_nothing() {
        assert_eq!(
            Value::Null.total_cmp(&Value::Int64(i64::MIN)),
            Ordering::Less
        );
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int64(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int64(1).sql_eq(&Value::Int64(1)), Some(true));
    }

    #[test]
    fn casts_roundtrip_between_int_widths() {
        assert_eq!(
            Value::Int32(7).cast_to(DataType::Int64).unwrap(),
            Value::Int64(7)
        );
        assert!(Value::Int64(i64::MAX).cast_to(DataType::Int32).is_err());
        assert_eq!(
            Value::Float64(3.9).cast_to(DataType::Int64).unwrap(),
            Value::Int64(3)
        );
        assert!(Value::Float64(f64::NAN).cast_to(DataType::Int64).is_err());
    }

    #[test]
    fn string_casts_parse_and_render() {
        assert_eq!(
            Value::Utf8("123".into()).cast_to(DataType::Int64).unwrap(),
            Value::Int64(123)
        );
        assert_eq!(
            Value::Int64(5).cast_to(DataType::Utf8).unwrap(),
            Value::Utf8("5".into())
        );
        assert!(Value::Utf8("abc".into()).cast_to(DataType::Int64).is_err());
        assert_eq!(
            Value::Utf8(" true ".into())
                .cast_to(DataType::Boolean)
                .unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn date_parsing_and_formatting() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("2000-02-29"), Some(11016));
        assert_eq!(parse_date("1900-02-29"), None); // not a leap year
        assert_eq!(parse_date("2024-13-01"), None);
        for d in [-1000, -1, 0, 1, 10957, 20000] {
            assert_eq!(parse_date(&format_date(d)), Some(d), "roundtrip {d}");
        }
    }

    #[test]
    fn date_parts_decomposes_pre_epoch_and_negative_years() {
        assert_eq!(date_parts(0), (1970, 1, 1));
        assert_eq!(date_parts(-1), (1969, 12, 31));
        // 0000-03-01 is exactly 719_468 days before the epoch in
        // Hinnant's civil calendar.
        assert_eq!(date_parts(-719_468), (0, 3, 1));
        let (y, m, d) = date_parts(-719_468 - 366);
        assert_eq!((y, m, d), (-1, 3, 1));
        // Consistent with the string formatter wherever both work.
        for days in [-800_000, -719_469, -1, 0, 365, 20_000] {
            let (y, m, d) = date_parts(days);
            assert_eq!(format_date(days), format!("{y:04}-{m:02}-{d:02}"));
        }
    }

    #[test]
    fn date_timestamp_casts() {
        let d = Value::Date(1); // 1970-01-02
        let ts = d.cast_to(DataType::Timestamp).unwrap();
        assert_eq!(ts, Value::Timestamp(86_400_000_000));
        assert_eq!(ts.cast_to(DataType::Date).unwrap(), Value::Date(1));
        // Negative timestamps floor toward earlier days.
        assert_eq!(
            Value::Timestamp(-1).cast_to(DataType::Date).unwrap(),
            Value::Date(-1)
        );
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Int64(0).wire_size(), 8);
        assert_eq!(Value::Utf8("abcd".into()).wire_size(), 8);
        assert_eq!(Value::Null.wire_size(), 1);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let mut vs = [
            Value::Float64(f64::NAN),
            Value::Float64(1.0),
            Value::Float64(f64::NEG_INFINITY),
            Value::Null,
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Float64(f64::NEG_INFINITY));
    }
}
