//! Schema metadata: named, typed, nullable columns.
//!
//! In a federation there are *two* kinds of schema: the **global
//! schema** users query against, and each component system's **export
//! schema**. Both are represented by [`Schema`]; the catalog's mapping
//! layer relates them. Field names may be qualified (`source.table.col`
//! or `table.col`) during planning; qualification is handled here so
//! every consumer resolves names identically.

use crate::datatype::DataType;
use crate::error::{GisError, Result};
use std::fmt;
use std::sync::Arc;

/// A shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

/// One column: name, type, nullability, and an optional relation
/// qualifier (the table alias it came from).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (unqualified).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
    /// Relation qualifier (table or alias), if any.
    pub qualifier: Option<String>,
}

impl Field {
    /// A nullable field with no qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
            qualifier: None,
        }
    }

    /// A non-nullable field.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            nullable: false,
            ..Field::new(name, data_type)
        }
    }

    /// Returns this field with the given qualifier.
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// Returns this field with nullability forced to `nullable`.
    pub fn with_nullable(mut self, nullable: bool) -> Self {
        self.nullable = nullable;
        self
    }

    /// `qualifier.name` when qualified, else just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// True when `name` (and `qualifier`, if given) match.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.data_type)?;
        if !self.nullable {
            write!(f, " not null")?;
        }
        Ok(())
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The empty schema (zero columns).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at ordinal `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Finds the ordinal of the unique field matching the (optionally
    /// qualified) name. Errors on no match or ambiguity — ambiguity is
    /// a real hazard when joining tables from different sources that
    /// reuse column names.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if let Some(prev) = found {
                    return Err(GisError::Analysis(format!(
                        "ambiguous column '{}': matches both {} and {}",
                        display_name(qualifier, name),
                        self.fields[prev].qualified_name(),
                        f.qualified_name()
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            GisError::Analysis(format!(
                "column '{}' not found in schema [{}]",
                display_name(qualifier, name),
                self
            ))
        })
    }

    /// Like [`Schema::index_of`] but parses `a.b` / `b` syntax.
    pub fn index_of_str(&self, name: &str) -> Result<usize> {
        match name.split_once('.') {
            Some((q, n)) => self.index_of(Some(q), n),
            None => self.index_of(None, name),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Projects the schema onto the given ordinals.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Returns the schema with every field re-qualified to `qualifier`
    /// (applied when a subquery or table gets an alias).
    pub fn requalify(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| f.clone().with_qualifier(qualifier))
                .collect(),
        )
    }

    /// Returns the schema stripped of qualifiers (final output).
    pub fn unqualified(&self) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field {
                    qualifier: None,
                    ..f.clone()
                })
                .collect(),
        )
    }

    /// True when `other` has the same types in the same order
    /// (names may differ) — the compatibility check for UNION inputs.
    pub fn type_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.data_type == b.data_type)
    }

    /// Wraps in an [`Arc`].
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }
}

fn display_name(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for field in &self.fields {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<I: IntoIterator<Item = Field>>(iter: I) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64).with_qualifier("orders"),
            Field::new("total", DataType::Float64).with_qualifier("orders"),
            Field::required("id", DataType::Int64).with_qualifier("customers"),
            Field::new("name", DataType::Utf8).with_qualifier("customers"),
        ])
    }

    #[test]
    fn qualified_lookup_disambiguates() {
        let s = sample();
        assert_eq!(s.index_of(Some("orders"), "id").unwrap(), 0);
        assert_eq!(s.index_of(Some("customers"), "id").unwrap(), 2);
        assert!(s.index_of(None, "id").is_err()); // ambiguous
        assert_eq!(s.index_of(None, "name").unwrap(), 3);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of(Some("ORDERS"), "ID").unwrap(), 0);
        assert_eq!(s.index_of_str("Customers.Name").unwrap(), 3);
    }

    #[test]
    fn missing_column_reports_schema() {
        let err = sample().index_of(None, "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        assert!(err.to_string().contains("orders.id"));
    }

    #[test]
    fn join_and_project() {
        let left = Schema::new(vec![Field::new("a", DataType::Int64)]);
        let right = Schema::new(vec![Field::new("b", DataType::Utf8)]);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 2);
        let proj = joined.project(&[1]);
        assert_eq!(proj.field(0).name, "b");
    }

    #[test]
    fn requalify_and_unqualify() {
        let s = sample().requalify("t");
        assert_eq!(s.index_of(Some("t"), "name").unwrap(), 3);
        assert!(s.index_of(Some("orders"), "id").is_err());
        let u = s.unqualified();
        assert!(u.fields().iter().all(|f| f.qualifier.is_none()));
    }

    #[test]
    fn union_type_compatibility() {
        let a = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let b = Schema::new(vec![Field::new("y", DataType::Int64)]);
        let c = Schema::new(vec![Field::new("x", DataType::Utf8)]);
        assert!(a.type_compatible(&b));
        assert!(!a.type_compatible(&c));
    }
}
