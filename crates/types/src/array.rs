//! Columnar arrays: the vectorized execution representation.
//!
//! Each [`Array`] stores one column of a [`crate::Batch`]: a typed
//! values buffer plus a validity [`Bitmap`]. Invalid slots hold an
//! arbitrary (zeroed) value in the buffer; consumers must consult the
//! bitmap. Operators work on whole arrays at a time, which keeps the
//! mediator's per-row interpretive overhead off the hot path — the
//! vectorization advice of the perf guide applied to a query engine.

use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{GisError, Result};
use crate::value::Value;

/// A typed column of values with a validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// Boolean column: values + validity.
    Boolean(Vec<bool>, Bitmap),
    /// Int32 column.
    Int32(Vec<i32>, Bitmap),
    /// Int64 column.
    Int64(Vec<i64>, Bitmap),
    /// Float64 column.
    Float64(Vec<f64>, Bitmap),
    /// Utf8 column.
    Utf8(Vec<String>, Bitmap),
    /// Date column (days since epoch).
    Date(Vec<i32>, Bitmap),
    /// Timestamp column (microseconds since epoch).
    Timestamp(Vec<i64>, Bitmap),
}

macro_rules! dispatch {
    ($self:expr, ($vals:ident, $valid:ident) => $body:expr) => {
        match $self {
            Array::Boolean($vals, $valid) => $body,
            Array::Int32($vals, $valid) => $body,
            Array::Int64($vals, $valid) => $body,
            Array::Float64($vals, $valid) => $body,
            Array::Utf8($vals, $valid) => $body,
            Array::Date($vals, $valid) => $body,
            Array::Timestamp($vals, $valid) => $body,
        }
    };
}

impl Array {
    /// The logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Boolean(..) => DataType::Boolean,
            Array::Int32(..) => DataType::Int32,
            Array::Int64(..) => DataType::Int64,
            Array::Float64(..) => DataType::Float64,
            Array::Utf8(..) => DataType::Utf8,
            Array::Date(..) => DataType::Date,
            Array::Timestamp(..) => DataType::Timestamp,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        dispatch!(self, (v, _m) => v.len())
    }

    /// True when the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        dispatch!(self, (_v, m) => m.len() - m.count_set())
    }

    /// True when slot `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        dispatch!(self, (_v, m) => m.get(i))
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        dispatch!(self, (_v, m) => m)
    }

    /// Materializes slot `i` as a [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Array::Boolean(v, m) => slot(m, i, || Value::Boolean(v[i])),
            Array::Int32(v, m) => slot(m, i, || Value::Int32(v[i])),
            Array::Int64(v, m) => slot(m, i, || Value::Int64(v[i])),
            Array::Float64(v, m) => slot(m, i, || Value::Float64(v[i])),
            Array::Utf8(v, m) => slot(m, i, || Value::Utf8(v[i].clone())),
            Array::Date(v, m) => slot(m, i, || Value::Date(v[i])),
            Array::Timestamp(v, m) => slot(m, i, || Value::Timestamp(v[i])),
        }
    }

    /// An empty array of the given type. `Null`-typed requests
    /// materialize as an all-null Int32 column.
    pub fn empty(dt: DataType) -> Array {
        Array::with_capacity(dt, 0)
    }

    /// An empty array with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Array {
        let m = Bitmap::with_capacity(cap);
        match dt {
            DataType::Boolean => Array::Boolean(Vec::with_capacity(cap), m),
            DataType::Int32 => Array::Int32(Vec::with_capacity(cap), m),
            DataType::Int64 => Array::Int64(Vec::with_capacity(cap), m),
            DataType::Float64 => Array::Float64(Vec::with_capacity(cap), m),
            DataType::Utf8 => Array::Utf8(Vec::with_capacity(cap), m),
            DataType::Date => Array::Date(Vec::with_capacity(cap), m),
            DataType::Timestamp => Array::Timestamp(Vec::with_capacity(cap), m),
            DataType::Null => Array::Int32(Vec::with_capacity(cap), m),
        }
    }

    /// An array of `len` NULL slots of type `dt`.
    pub fn nulls(dt: DataType, len: usize) -> Array {
        let mut b = ArrayBuilder::new(dt);
        for _ in 0..len {
            b.push_null();
        }
        b.finish()
    }

    /// Builds an array from scalar values, coercing each to `dt`.
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Array> {
        let mut b = ArrayBuilder::new(dt);
        for v in values {
            b.push_value(&v.cast_to(dt)?)?;
        }
        Ok(b.finish())
    }

    /// An array where every slot holds `value` (broadcast of a scalar).
    pub fn from_scalar(value: &Value, len: usize, dt: DataType) -> Result<Array> {
        let coerced = value.cast_to(dt)?;
        let mut b = ArrayBuilder::new(dt);
        for _ in 0..len {
            b.push_value(&coerced)?;
        }
        Ok(b.finish())
    }

    /// Gather: new array containing `indices` slots in order.
    pub fn take(&self, indices: &[usize]) -> Array {
        macro_rules! take_impl {
            ($variant:ident, $v:expr, $m:expr, $default:expr) => {{
                let mut vals = Vec::with_capacity(indices.len());
                for &i in indices {
                    vals.push(if $m.get(i) { $v[i].clone() } else { $default });
                }
                Array::$variant(vals, $m.take(indices))
            }};
        }
        match self {
            Array::Boolean(v, m) => take_impl!(Boolean, v, m, false),
            Array::Int32(v, m) => take_impl!(Int32, v, m, 0),
            Array::Int64(v, m) => take_impl!(Int64, v, m, 0),
            Array::Float64(v, m) => take_impl!(Float64, v, m, 0.0),
            Array::Utf8(v, m) => take_impl!(Utf8, v, m, String::new()),
            Array::Date(v, m) => take_impl!(Date, v, m, 0),
            Array::Timestamp(v, m) => take_impl!(Timestamp, v, m, 0),
        }
    }

    /// Filter: keep the slots where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Array {
        assert_eq!(keep.len(), self.len(), "filter mask length mismatch");
        let indices: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Zero-copy-ish slice (clones the value range).
    pub fn slice(&self, offset: usize, len: usize) -> Array {
        let indices: Vec<usize> = (offset..offset + len).collect();
        self.take(&indices)
    }

    /// Concatenates arrays of identical type.
    pub fn concat(arrays: &[Array]) -> Result<Array> {
        let Some(first) = arrays.first() else {
            return Err(GisError::Internal("concat of zero arrays".into()));
        };
        let dt = first.data_type();
        let mut b = ArrayBuilder::new(dt);
        for a in arrays {
            if a.data_type() != dt {
                return Err(GisError::Internal(format!(
                    "concat type mismatch: {dt} vs {}",
                    a.data_type()
                )));
            }
            for i in 0..a.len() {
                b.push_value(&a.value_at(i))?;
            }
        }
        Ok(b.finish())
    }

    /// Casts every slot to `target`, following [`Value::cast_to`] rules.
    pub fn cast_to(&self, target: DataType) -> Result<Array> {
        if self.data_type() == target {
            return Ok(self.clone());
        }
        // Fast paths for the common numeric widenings keep the mediator
        // mapping layer cheap (exercised heavily by experiment T3).
        match (self, target) {
            (Array::Int32(v, m), DataType::Int64) => Ok(Array::Int64(
                v.iter().map(|&x| x as i64).collect(),
                m.clone(),
            )),
            (Array::Int32(v, m), DataType::Float64) => Ok(Array::Float64(
                v.iter().map(|&x| x as f64).collect(),
                m.clone(),
            )),
            (Array::Int64(v, m), DataType::Float64) => Ok(Array::Float64(
                v.iter().map(|&x| x as f64).collect(),
                m.clone(),
            )),
            _ => {
                let mut b = ArrayBuilder::new(target);
                for i in 0..self.len() {
                    b.push_value(&self.value_at(i).cast_to(target)?)?;
                }
                Ok(b.finish())
            }
        }
    }

    /// Approximate bytes this array occupies on the simulated wire:
    /// the packed validity bitmap plus the value payload of all slots
    /// (invalid fixed-width slots still ship their zeroed payload,
    /// matching the flat wire layout `gis-net` serializes).
    pub fn wire_size(&self) -> usize {
        let bitmap = self.validity().wire_size();
        let payload = match self {
            Array::Boolean(v, _) => v.len(),
            Array::Int32(v, _) | Array::Date(v, _) => v.len() * 4,
            Array::Int64(v, _) | Array::Timestamp(v, _) => v.len() * 8,
            Array::Float64(v, _) => v.len() * 8,
            Array::Utf8(v, _) => v.iter().map(|s| 4 + s.len()).sum(),
        };
        bitmap + payload
    }

    /// Iterates slots as [`Value`]s (materializing; test/debug use).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value_at(i))
    }

    /// Borrowed i64 values, widening Int32/Date/Timestamp; used by
    /// vectorized kernels that only need integer payloads.
    pub fn as_i64_lossy(&self, i: usize) -> Option<i64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Array::Int32(v, _) | Array::Date(v, _) => Some(v[i] as i64),
            Array::Int64(v, _) | Array::Timestamp(v, _) => Some(v[i]),
            Array::Boolean(v, _) => Some(i64::from(v[i])),
            _ => None,
        }
    }
}

#[inline]
fn slot(m: &Bitmap, i: usize, f: impl FnOnce() -> Value) -> Value {
    if m.get(i) {
        f()
    } else {
        Value::Null
    }
}

/// Incremental builder for an [`Array`].
#[derive(Debug)]
pub struct ArrayBuilder {
    inner: Array,
}

impl ArrayBuilder {
    /// A builder producing arrays of type `dt`.
    pub fn new(dt: DataType) -> Self {
        ArrayBuilder {
            inner: Array::empty(dt),
        }
    }

    /// A builder with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        ArrayBuilder {
            inner: Array::with_capacity(dt, cap),
        }
    }

    /// The type being built.
    pub fn data_type(&self) -> DataType {
        self.inner.data_type()
    }

    /// Slots appended so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a NULL slot.
    pub fn push_null(&mut self) {
        dispatch!(&mut self.inner, (v, m) => {
            v.push(Default::default());
            m.push(false);
        })
    }

    /// Appends a value, which must match the builder type exactly
    /// (or be NULL). Use [`Value::cast_to`] first for coercion.
    pub fn push_value(&mut self, value: &Value) -> Result<()> {
        match (&mut self.inner, value) {
            (_, Value::Null) => {
                self.push_null();
                Ok(())
            }
            (Array::Boolean(v, m), Value::Boolean(x)) => push(v, m, *x),
            (Array::Int32(v, m), Value::Int32(x)) => push(v, m, *x),
            (Array::Int64(v, m), Value::Int64(x)) => push(v, m, *x),
            (Array::Float64(v, m), Value::Float64(x)) => push(v, m, *x),
            (Array::Utf8(v, m), Value::Utf8(x)) => push(v, m, x.clone()),
            (Array::Date(v, m), Value::Date(x)) => push(v, m, *x),
            (Array::Timestamp(v, m), Value::Timestamp(x)) => push(v, m, *x),
            (a, v) => Err(GisError::Internal(format!(
                "builder type mismatch: array {} vs value {}",
                a.data_type(),
                v.data_type()
            ))),
        }
    }

    /// Appends a raw bool (convenience for kernel outputs).
    pub fn push_bool(&mut self, x: bool) -> Result<()> {
        self.push_value(&Value::Boolean(x))
    }

    /// Consumes the builder, yielding the array.
    pub fn finish(self) -> Array {
        self.inner
    }
}

fn push<T>(v: &mut Vec<T>, m: &mut Bitmap, x: T) -> Result<()> {
    v.push(x);
    m.push(true);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_array(vals: &[Option<i64>]) -> Array {
        let mut b = ArrayBuilder::new(DataType::Int64);
        for v in vals {
            match v {
                Some(x) => b.push_value(&Value::Int64(*x)).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let a = int_array(&[Some(1), None, Some(3)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 1);
        assert_eq!(a.value_at(0), Value::Int64(1));
        assert_eq!(a.value_at(1), Value::Null);
        assert_eq!(a.value_at(2), Value::Int64(3));
    }

    #[test]
    fn builder_rejects_type_mismatch() {
        let mut b = ArrayBuilder::new(DataType::Int64);
        assert!(b.push_value(&Value::Utf8("x".into())).is_err());
        assert!(b.push_value(&Value::Null).is_ok());
    }

    #[test]
    fn take_preserves_nulls() {
        let a = int_array(&[Some(10), None, Some(30), Some(40)]);
        let t = a.take(&[3, 1, 0]);
        assert_eq!(
            t.iter_values().collect::<Vec<_>>(),
            vec![Value::Int64(40), Value::Null, Value::Int64(10)]
        );
    }

    #[test]
    fn filter_keeps_marked_slots() {
        let a = int_array(&[Some(1), Some(2), None, Some(4)]);
        let f = a.filter(&[true, false, true, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.value_at(1), Value::Null);
        assert_eq!(f.value_at(2), Value::Int64(4));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = int_array(&[Some(1), None]);
        let b = int_array(&[Some(3)]);
        let c = Array::concat(&[a.clone(), b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.slice(1, 2).value_at(1), Value::Int64(3));
        assert!(Array::concat(&[]).is_err());
        let s = Array::concat(&[a, Array::empty(DataType::Utf8)]);
        assert!(s.is_err());
    }

    #[test]
    fn cast_fast_paths_match_slow_path() {
        let a = int_array(&[Some(1), None, Some(-5)]);
        let fast = a.cast_to(DataType::Float64).unwrap();
        assert_eq!(fast.value_at(0), Value::Float64(1.0));
        assert_eq!(fast.value_at(1), Value::Null);
        assert_eq!(fast.value_at(2), Value::Float64(-5.0));
        // utf8 path goes through value casting
        let s = a.cast_to(DataType::Utf8).unwrap();
        assert_eq!(s.value_at(2), Value::Utf8("-5".into()));
    }

    #[test]
    fn from_scalar_broadcasts() {
        let a = Array::from_scalar(&Value::Int32(7), 4, DataType::Int64).unwrap();
        assert_eq!(a.len(), 4);
        assert!(a.iter_values().all(|v| v == Value::Int64(7)));
    }

    #[test]
    fn wire_size_accounts_for_strings() {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        b.push_value(&Value::Utf8("hello".into())).unwrap();
        b.push_null();
        let a = b.finish();
        // bitmap: 1 byte; "hello": 4+5; null string: 4+0
        assert_eq!(a.wire_size(), 1 + 9 + 4);
    }

    #[test]
    fn nulls_constructor() {
        let a = Array::nulls(DataType::Utf8, 3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 3);
        assert_eq!(a.data_type(), DataType::Utf8);
    }
}
