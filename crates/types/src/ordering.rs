//! Sort specifications shared by the planner, executor and adapters.
//!
//! A [`SortKey`] names a column ordinal plus direction and null
//! placement. The mediator pushes sort keys to capable sources and
//! merge-combines pre-sorted streams, so the spec must be a shared
//! vocabulary rather than an executor-private detail.

use crate::batch::Batch;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortOrder {
    /// Ascending (default).
    #[default]
    Ascending,
    /// Descending.
    Descending,
}

impl SortOrder {
    /// Applies the direction to a base ordering.
    #[inline]
    pub fn apply(self, ord: Ordering) -> Ordering {
        match self {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        }
    }
}

/// One sort key: a column ordinal, direction, and null placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// Column ordinal in the batch being sorted.
    pub column: usize,
    /// Direction.
    pub order: SortOrder,
    /// When true, NULLs sort before all values regardless of direction.
    pub nulls_first: bool,
}

impl SortKey {
    /// Ascending key with NULLs first (the engine default, matching
    /// `Value::total_cmp`).
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            order: SortOrder::Ascending,
            nulls_first: true,
        }
    }

    /// Descending key with NULLs first.
    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            order: SortOrder::Descending,
            nulls_first: true,
        }
    }

    /// Returns the key with the given null placement.
    pub fn with_nulls_first(mut self, nulls_first: bool) -> Self {
        self.nulls_first = nulls_first;
        self
    }

    /// Compares rows `a` of `ba` and `b` of `bb` under this key.
    pub fn compare(&self, ba: &Batch, a: usize, bb: &Batch, b: usize) -> Ordering {
        let ca = ba.column(self.column);
        let cb = bb.column(self.column);
        match (ca.is_valid(a), cb.is_valid(b)) {
            (false, false) => Ordering::Equal,
            (false, true) => {
                if self.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (true, false) => {
                if self.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (true, true) => self.order.apply(ca.value_at(a).total_cmp(&cb.value_at(b))),
        }
    }
}

/// Compares two rows under a compound key (lexicographic).
pub fn compare_rows(keys: &[SortKey], ba: &Batch, a: usize, bb: &Batch, b: usize) -> Ordering {
    for k in keys {
        let ord = k.compare(ba, a, bb, b);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sorts the row indices of `batch` under `keys` (stable).
pub fn sorted_indices(batch: &Batch, keys: &[SortKey]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..batch.num_rows()).collect();
    idx.sort_by(|&a, &b| compare_rows(keys, batch, a, batch, b));
    idx
}

/// True when the rows of `batch` are already ordered under `keys`
/// (used to validate pre-sorted adapter output before merging).
pub fn is_sorted(batch: &Batch, keys: &[SortKey]) -> bool {
    (1..batch.num_rows()).all(|i| compare_rows(keys, batch, i - 1, batch, i) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};
    use crate::value::Value;

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Int64),
                Field::new("v", DataType::Utf8),
            ])
            .into_ref(),
            &[
                vec![Value::Int64(2), Value::Utf8("b".into())],
                vec![Value::Null, Value::Utf8("n".into())],
                vec![Value::Int64(1), Value::Utf8("a".into())],
                vec![Value::Int64(2), Value::Utf8("a".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn ascending_nulls_first() {
        let idx = sorted_indices(&batch(), &[SortKey::asc(0)]);
        assert_eq!(idx, vec![1, 2, 0, 3]);
    }

    #[test]
    fn descending_nulls_last() {
        let idx = sorted_indices(&batch(), &[SortKey::desc(0).with_nulls_first(false)]);
        // 2,2,1 then NULL last; stable within equal keys
        assert_eq!(idx, vec![0, 3, 2, 1]);
    }

    #[test]
    fn compound_keys_break_ties() {
        let idx = sorted_indices(&batch(), &[SortKey::asc(0), SortKey::asc(1)]);
        assert_eq!(idx, vec![1, 2, 3, 0]);
    }

    #[test]
    fn is_sorted_detects_order() {
        let b = batch();
        let sorted = b.take(&sorted_indices(&b, &[SortKey::asc(0)]));
        assert!(is_sorted(&sorted, &[SortKey::asc(0)]));
        assert!(!is_sorted(&b, &[SortKey::asc(0)]));
    }
}
