//! A packed validity bitmap.
//!
//! Arrays pair their values buffer with a `Bitmap` marking which slots
//! are valid (non-NULL). The bitmap is bit-packed (LSB-first within
//! each byte) to keep the simulated wire representation honest about
//! null overhead.

/// A growable, bit-packed bitmap. Bit `i` set means slot `i` is valid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// A bitmap of `len` slots, all set to `value`.
    pub fn from_element(len: usize, value: bool) -> Self {
        let fill = if value { 0xFF } else { 0x00 };
        let mut bm = Bitmap {
            bits: vec![fill; len.div_ceil(8)],
            len,
        };
        if value {
            bm.mask_tail();
        }
        bm
    }

    /// Builds from a bool slice.
    pub fn from_bools(values: &[bool]) -> Self {
        let mut bm = Bitmap::with_capacity(values.len());
        for &v in values {
            bm.push(v);
        }
        bm
    }

    /// An empty bitmap with room for `cap` slots.
    pub fn with_capacity(cap: usize) -> Self {
        Bitmap {
            bits: Vec::with_capacity(cap.div_ceil(8)),
            len: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one slot.
    pub fn push(&mut self, value: bool) {
        let byte = self.len / 8;
        if byte == self.bits.len() {
            self.bits.push(0);
        }
        if value {
            self.bits[byte] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// Reads slot `i`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bitmap index {i} out of bounds (len {})",
            self.len
        );
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Sets slot `i` to `value`. Panics when out of bounds.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bitmap index {i} out of bounds (len {})",
            self.len
        );
        if value {
            self.bits[i / 8] |= 1 << (i % 8);
        } else {
            self.bits[i / 8] &= !(1 << (i % 8));
        }
    }

    /// Number of set (valid) slots, using per-byte popcount.
    pub fn count_set(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when every slot is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// True when no slot is set.
    pub fn none_set(&self) -> bool {
        self.count_set() == 0
    }

    /// Iterator over slot values.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set slots.
    pub fn set_indices(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// Returns a new bitmap keeping only the slots in `indices`
    /// (the gather/take operation used by selection vectors).
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::with_capacity(indices.len());
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Returns the slice `[offset, offset+len)` as a new bitmap.
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(offset + len <= self.len, "slice out of bounds");
        let mut out = Bitmap::with_capacity(len);
        for i in offset..offset + len {
            out.push(self.get(i));
        }
        out
    }

    /// Appends all slots of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        for v in other.iter() {
            self.push(v);
        }
    }

    /// Element-wise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        out
    }

    /// Bytes the bitmap occupies on the wire.
    pub fn wire_size(&self) -> usize {
        self.bits.len()
    }

    /// Raw packed bytes (LSB-first), for serialization.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuilds from packed bytes and a length.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "byte buffer too short");
        let mut bm = Bitmap { bits: bytes, len };
        bm.bits.truncate(len.div_ceil(8));
        bm.mask_tail();
        bm
    }

    /// Zeroes the unused bits of the final byte so `count_set` and
    /// `PartialEq` are well-defined.
    fn mask_tail(&mut self) {
        let rem = self.len % 8;
        if rem != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u8 << rem) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut bm = Bitmap::with_capacity(iter.size_hint().0);
        for v in iter {
            bm.push(v);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let bm = Bitmap::from_bools(&pattern);
        assert_eq!(bm.len(), 100);
        for (i, &want) in pattern.iter().enumerate() {
            assert_eq!(bm.get(i), want, "slot {i}");
        }
        assert_eq!(bm.count_set(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn from_element_all_true_masks_tail() {
        let bm = Bitmap::from_element(13, true);
        assert_eq!(bm.len(), 13);
        assert!(bm.all_set());
        assert_eq!(bm.count_set(), 13);
        let bm0 = Bitmap::from_element(13, false);
        assert!(bm0.none_set());
    }

    #[test]
    fn set_and_clear() {
        let mut bm = Bitmap::from_element(10, false);
        bm.set(3, true);
        bm.set(9, true);
        assert_eq!(bm.set_indices(), vec![3, 9]);
        bm.set(3, false);
        assert_eq!(bm.set_indices(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::from_element(4, true).get(4);
    }

    #[test]
    fn take_and_slice() {
        let bm = Bitmap::from_bools(&[true, false, true, true, false]);
        assert_eq!(
            bm.take(&[4, 2, 0]).iter().collect::<Vec<_>>(),
            vec![false, true, true]
        );
        assert_eq!(
            bm.slice(1, 3).iter().collect::<Vec<_>>(),
            vec![false, true, true]
        );
    }

    #[test]
    fn and_intersects() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(
            a.and(&b).iter().collect::<Vec<_>>(),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn byte_roundtrip() {
        let bm = Bitmap::from_bools(&[true, false, true, false, true, true, true, false, true]);
        let bytes = bm.as_bytes().to_vec();
        let back = Bitmap::from_bytes(bytes, bm.len());
        assert_eq!(back, bm);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Bitmap::from_bools(&[true, false]);
        let b = Bitmap::from_bools(&[false, true, true]);
        a.extend_from(&b);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![true, false, false, true, true]
        );
    }
}
