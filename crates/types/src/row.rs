//! Borrowed row views over a batch.
//!
//! Hash-join build sides, sort comparators and the bind-join parameter
//! shipper all need row-wise access without materializing every value;
//! [`Row`] provides that as a cheap `(batch, index)` pair.

use crate::batch::Batch;
use crate::value::Value;
use std::cmp::Ordering;

/// A borrowed view of one row of a [`Batch`].
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    batch: &'a Batch,
    index: usize,
}

impl<'a> Row<'a> {
    /// A view of row `index` of `batch`.
    pub fn new(batch: &'a Batch, index: usize) -> Self {
        debug_assert!(index < batch.num_rows().max(1));
        Row { batch, index }
    }

    /// The row's position within its batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.batch.num_columns()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes column `col` of this row.
    pub fn value(&self, col: usize) -> Value {
        self.batch.column(col).value_at(self.index)
    }

    /// True when column `col` is NULL in this row.
    pub fn is_null(&self, col: usize) -> bool {
        !self.batch.column(col).is_valid(self.index)
    }

    /// Materializes the whole row.
    pub fn to_values(&self) -> Vec<Value> {
        self.batch.row_values(self.index)
    }

    /// Compares two rows on the given column ordinals (same ordinals
    /// applied to both sides), using total ordering.
    pub fn cmp_on(&self, other: &Row<'_>, cols: &[usize]) -> Ordering {
        for &c in cols {
            let ord = self.value(c).total_cmp(&other.value(c));
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Extracts the values of the given columns (join/group keys).
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.value(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ])
            .into_ref(),
            &[
                vec![Value::Int64(1), Value::Utf8("x".into())],
                vec![Value::Int64(2), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_access() {
        let b = batch();
        let r = b.row(1);
        assert_eq!(r.value(0), Value::Int64(2));
        assert!(r.is_null(1));
        assert!(!b.row(0).is_null(1));
        assert_eq!(r.to_values(), vec![Value::Int64(2), Value::Null]);
    }

    #[test]
    fn comparison_on_key_columns() {
        let b = batch();
        let r0 = b.row(0);
        let r1 = b.row(1);
        assert_eq!(r0.cmp_on(&r1, &[0]), Ordering::Less);
        assert_eq!(r0.cmp_on(&r0, &[0, 1]), Ordering::Equal);
        // NULL sorts first: row1.b (NULL) < row0.b ("x")
        assert_eq!(r1.cmp_on(&r0, &[1]), Ordering::Less);
    }

    #[test]
    fn key_extraction() {
        let b = batch();
        assert_eq!(
            b.row(0).key(&[1, 0]),
            vec![Value::Utf8("x".into()), Value::Int64(1)]
        );
    }
}
