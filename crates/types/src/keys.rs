//! Vectorized key kernels: hashing, equality and fixed-width encoding
//! over [`Array`] buffers.
//!
//! The mediator's hottest loops — hash-join build/probe, GROUP BY and
//! DISTINCT — all reduce to the same three primitives over key
//! columns:
//!
//! 1. [`hash_column`] — fold a per-column hash into a per-row `u64`
//!    accumulator, straight over the typed buffer (validity-aware, no
//!    [`Value`](crate::Value) materialization, multi-column keys via
//!    hash-combine).
//! 2. [`eq_at`] / [`rows_eq`] — columnar equality of two row positions,
//!    used to verify hash-bucket candidates instead of comparing boxed
//!    row keys.
//! 3. [`FixedKeyLayout`] / [`encode_fixed`] — pack narrow key tuples
//!    (ints, dates, timestamps, bools, short strings) into one `u128`
//!    so the hash table can key on the encoding directly, with **no**
//!    collision verification at all.
//!
//! ## Pinned float semantics
//!
//! Grouping equality follows the engine's total order
//! ([`Value::total_cmp`](crate::Value::total_cmp)) with one explicit
//! extension: **every NaN is equal to every other NaN** for key
//! purposes, regardless of payload or sign — the GROUP BY/DISTINCT
//! behavior of mainstream SQL engines. `-0.0` and `0.0` remain two
//! distinct keys (they are distinct under the total order). All three
//! primitives implement these semantics consistently: NaNs hash and
//! encode to one canonical bit pattern, and [`eq_at`] short-circuits
//! the NaN class before falling back to `total_cmp`.

use crate::array::Array;
use crate::datatype::DataType;
use std::cmp::Ordering;

/// Seed for per-row hash accumulators. Callers initialize their hash
/// vector with this before folding columns in with [`hash_column`].
pub const HASH_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The value folded in for a NULL slot. NULL hashes like any other
/// key value; whether NULL *equals* NULL is the caller's policy
/// (GROUP BY says yes, join keys are filtered out beforehand).
const NULL_SALT: u64 = 0xf0_e4_d2_c6_a8_9b_3d_71;

/// Canonical bit pattern all NaNs hash/encode to (the positive quiet
/// NaN), so NaN keys land in one group.
const CANONICAL_NAN: u64 = 0x7ff8_0000_0000_0000;

/// SplitMix64 finalizer: the scrambler applied to every column value
/// before it is combined into the row hash.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash-combine: folds one column's scrambled value into the row
/// accumulator. Order-sensitive, so `(a, b)` and `(b, a)` keys differ.
#[inline]
pub fn combine_hash(acc: u64, v: u64) -> u64 {
    mix(acc.rotate_left(5) ^ v)
}

/// FNV-1a over a byte slice (strings), then scrambled by the combiner.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical payload bits for a float: all NaNs collapse to one
/// pattern; `-0.0` keeps its own bits (it is a distinct key under the
/// total order, and distinct hashes for distinct keys are fine).
#[inline]
fn float_bits(v: f64) -> u64 {
    if v.is_nan() {
        CANONICAL_NAN
    } else {
        v.to_bits()
    }
}

/// Folds a per-column hash into `hashes[i]` for every row `i`,
/// reading the typed buffer directly (no `Value` materialization).
/// NULL slots fold in a fixed salt. Panics when `hashes.len()` does
/// not match the column length.
pub fn hash_column(array: &Array, hashes: &mut [u64]) {
    assert_eq!(hashes.len(), array.len(), "hash buffer length mismatch");
    macro_rules! fold {
        ($vals:expr, $valid:expr, $conv:expr) => {
            for (i, h) in hashes.iter_mut().enumerate() {
                let v = if $valid.get(i) {
                    #[allow(clippy::redundant_closure_call)]
                    $conv(&$vals[i])
                } else {
                    NULL_SALT
                };
                *h = combine_hash(*h, v);
            }
        };
    }
    match array {
        Array::Boolean(v, m) => fold!(v, m, |x: &bool| u64::from(*x) + 1),
        Array::Int32(v, m) => fold!(v, m, |x: &i32| *x as i64 as u64),
        Array::Int64(v, m) => fold!(v, m, |x: &i64| *x as u64),
        Array::Date(v, m) => fold!(v, m, |x: &i32| *x as i64 as u64),
        Array::Timestamp(v, m) => fold!(v, m, |x: &i64| *x as u64),
        Array::Float64(v, m) => fold!(v, m, |x: &f64| float_bits(*x)),
        Array::Utf8(v, m) => fold!(v, m, |x: &String| hash_bytes(x.as_bytes())),
    }
}

/// Hashes all `cols` of an `n`-row key into one `Vec<u64>`
/// (seeded accumulator, one [`hash_column`] fold per column).
pub fn hash_rows(cols: &[&Array], n: usize) -> Vec<u64> {
    let mut hashes = vec![HASH_SEED; n];
    for c in cols {
        hash_column(c, &mut hashes);
    }
    hashes
}

/// Columnar equality of `a[i]` and `b[j]` under grouping semantics:
/// NULL equals NULL, NaN equals NaN, everything else follows the
/// engine's total order. Same-typed arrays compare directly over
/// their buffers; mismatched types fall back to `Value::total_cmp`
/// (the caller normally casts key columns to a common type first).
pub fn eq_at(a: &Array, i: usize, b: &Array, j: usize) -> bool {
    match (a.is_valid(i), b.is_valid(j)) {
        (false, false) => return true,
        (true, true) => {}
        _ => return false,
    }
    match (a, b) {
        (Array::Boolean(x, _), Array::Boolean(y, _)) => x[i] == y[j],
        (Array::Int32(x, _), Array::Int32(y, _)) => x[i] == y[j],
        (Array::Int64(x, _), Array::Int64(y, _)) => x[i] == y[j],
        (Array::Date(x, _), Array::Date(y, _)) => x[i] == y[j],
        (Array::Timestamp(x, _), Array::Timestamp(y, _)) => x[i] == y[j],
        (Array::Utf8(x, _), Array::Utf8(y, _)) => x[i] == y[j],
        (Array::Float64(x, _), Array::Float64(y, _)) => {
            (x[i].is_nan() && y[j].is_nan()) || x[i].total_cmp(&y[j]) == Ordering::Equal
        }
        _ => a.value_at(i).total_cmp(&b.value_at(j)) == Ordering::Equal,
    }
}

/// Multi-column [`eq_at`]: true when every key column agrees.
pub fn rows_eq(a: &[&Array], i: usize, b: &[&Array], j: usize) -> bool {
    a.iter().zip(b).all(|(ca, cb)| eq_at(ca, i, cb, j))
}

/// Bytes one value of `dt` occupies in a fixed-width key encoding,
/// or `None` for variable-width types.
fn fixed_key_width(dt: DataType) -> Option<usize> {
    match dt {
        DataType::Boolean => Some(1),
        DataType::Int32 | DataType::Date => Some(4),
        DataType::Int64 | DataType::Timestamp | DataType::Float64 => Some(8),
        _ => None,
    }
}

/// Byte layout for packing one key tuple into a `u128`.
///
/// Byte 0 is a per-column null mask (bit `c` set ⇒ column `c` is
/// NULL; its payload bytes stay zero), followed by each column's
/// payload at a fixed offset. `Utf8` columns are encodable when every
/// string in every participating array fits the remaining budget:
/// they pack as one length byte plus the zero-padded bytes. The
/// encoding is **exact**: two rows encode to the same `u128` iff they
/// are equal keys under the grouping semantics (NaNs are normalized
/// to one pattern before packing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedKeyLayout {
    types: Vec<DataType>,
    /// Payload width in bytes per column (strings: 1 + max length).
    widths: Vec<usize>,
}

/// Payload budget: 16 bytes minus the null-mask byte.
const FIXED_KEY_BUDGET: usize = 15;

impl FixedKeyLayout {
    /// Plans a fixed-width layout covering every array set in
    /// `sides` (e.g. both join sides), or `None` when the key is too
    /// wide, has more than 8 columns, or the sides' types disagree.
    pub fn plan(sides: &[&[&Array]]) -> Option<FixedKeyLayout> {
        let first = sides.first()?;
        if first.is_empty() || first.len() > 8 {
            return None;
        }
        let types: Vec<DataType> = first.iter().map(|a| a.data_type()).collect();
        for side in sides {
            if side.len() != types.len()
                || side.iter().zip(&types).any(|(a, &t)| a.data_type() != t)
            {
                return None;
            }
        }
        let mut widths = Vec::with_capacity(types.len());
        let mut total = 0usize;
        for (c, &dt) in types.iter().enumerate() {
            let w = match fixed_key_width(dt) {
                Some(w) => w,
                None if dt == DataType::Utf8 => {
                    // Strings qualify when the longest valid value over
                    // every side fits the remaining budget.
                    let max_len = sides
                        .iter()
                        .map(|side| utf8_max_len(side[c]))
                        .max()
                        .unwrap_or(0);
                    1 + max_len
                }
                None => return None,
            };
            total += w;
            if total > FIXED_KEY_BUDGET {
                return None;
            }
            widths.push(w);
        }
        Some(FixedKeyLayout { types, widths })
    }
}

fn utf8_max_len(a: &Array) -> usize {
    match a {
        Array::Utf8(v, m) => (0..v.len())
            .filter(|&i| m.get(i))
            .map(|i| v[i].len())
            .max()
            .unwrap_or(0),
        _ => 0,
    }
}

/// Encodes every row of `cols` into its exact `u128` key per
/// `layout`. Panics when `cols` does not match the layout's types
/// (the caller planned the layout over these very arrays).
pub fn encode_fixed(cols: &[&Array], n: usize, layout: &FixedKeyLayout) -> Vec<u128> {
    assert_eq!(cols.len(), layout.types.len(), "layout column mismatch");
    let mut keys = vec![0u128; n];
    let mut bit = 8; // byte 0 is the null mask
    for (c, col) in cols.iter().enumerate() {
        let width_bits = layout.widths[c] * 8;
        macro_rules! pack {
            ($vals:expr, $valid:expr, $conv:expr) => {
                for (i, k) in keys.iter_mut().enumerate() {
                    if $valid.get(i) {
                        #[allow(clippy::redundant_closure_call)]
                        let payload: u128 = $conv(&$vals[i]);
                        *k |= payload << bit;
                    } else {
                        *k |= 1u128 << c; // null-mask bit
                    }
                }
            };
        }
        match col {
            Array::Boolean(v, m) => pack!(v, m, |x: &bool| u128::from(*x)),
            Array::Int32(v, m) => pack!(v, m, |x: &i32| u128::from(*x as u32)),
            Array::Date(v, m) => pack!(v, m, |x: &i32| u128::from(*x as u32)),
            Array::Int64(v, m) => pack!(v, m, |x: &i64| u128::from(*x as u64)),
            Array::Timestamp(v, m) => pack!(v, m, |x: &i64| u128::from(*x as u64)),
            Array::Float64(v, m) => pack!(v, m, |x: &f64| u128::from(float_bits(*x))),
            Array::Utf8(v, m) => {
                for (i, k) in keys.iter_mut().enumerate() {
                    if m.get(i) {
                        let s = v[i].as_bytes();
                        let mut payload: u128 = s.len() as u128;
                        for (p, &byte) in s.iter().enumerate() {
                            payload |= u128::from(byte) << (8 + p * 8);
                        }
                        *k |= payload << bit;
                    } else {
                        *k |= 1u128 << c;
                    }
                }
            }
        }
        bit += width_bits;
    }
    keys
}

/// Scrambles a `u128` fixed key down to a partitioning hash.
#[inline]
pub fn hash_u128(k: u128) -> u64 {
    mix((k as u64) ^ mix((k >> 64) as u64))
}

/// A pass-through [`std::hash::Hasher`] for table keys that are
/// *already* mixed hashes produced by this module (the per-row `u64`
/// hashes and `u128` fixed encodings). Feeding them through SipHash
/// again would only burn cycles on the kernels' hottest loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrehashedHasher(u64);

impl std::hash::Hasher for PrehashedHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are expected; keep a correct
        // (FNV-1a) fallback anyway so arbitrary keys still work.
        self.0 = combine_hash(self.0, hash_bytes(bytes));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.0 = hash_u128(v);
    }
}

/// [`std::hash::BuildHasher`] for [`PrehashedHasher`]; plug into
/// `HashMap::with_capacity_and_hasher` on pre-hashed key tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildPrehashed;

impl std::hash::BuildHasher for BuildPrehashed {
    type Hasher = PrehashedHasher;

    #[inline]
    fn build_hasher(&self) -> PrehashedHasher {
        PrehashedHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;
    use crate::value::Value;

    fn arr(dt: DataType, vals: &[Option<Value>]) -> Array {
        let mut b = ArrayBuilder::new(dt);
        for v in vals {
            match v {
                Some(v) => b.push_value(v).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    }

    #[test]
    fn equal_rows_hash_equal() {
        let a = arr(
            DataType::Int64,
            &[Some(Value::Int64(7)), Some(Value::Int64(7)), None, None],
        );
        let s = arr(
            DataType::Utf8,
            &[
                Some(Value::Utf8("x".into())),
                Some(Value::Utf8("x".into())),
                Some(Value::Utf8("x".into())),
                Some(Value::Utf8("y".into())),
            ],
        );
        let h = hash_rows(&[&a, &s], 4);
        assert_eq!(h[0], h[1]);
        assert_ne!(h[2], h[3], "different second column should split");
        assert!(rows_eq(&[&a, &s], 0, &[&a, &s], 1));
        assert!(!rows_eq(&[&a, &s], 2, &[&a, &s], 3));
    }

    #[test]
    fn nan_is_one_key_but_zero_signs_are_two() {
        let f = arr(
            DataType::Float64,
            &[
                Some(Value::Float64(f64::NAN)),
                Some(Value::Float64(-f64::NAN)),
                Some(Value::Float64(0.0)),
                Some(Value::Float64(-0.0)),
            ],
        );
        let h = hash_rows(&[&f], 4);
        assert_eq!(h[0], h[1], "all NaNs hash alike");
        assert!(eq_at(&f, 0, &f, 1), "all NaNs are one key");
        assert!(!eq_at(&f, 2, &f, 3), "-0.0 is a distinct key (total order)");
        // Fixed encoding agrees with both calls.
        let layout = FixedKeyLayout::plan(&[&[&f]]).unwrap();
        let keys = encode_fixed(&[&f], 4, &layout);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[2], keys[3]);
    }

    #[test]
    fn null_equals_null_and_hashes_stably() {
        let a = arr(DataType::Int32, &[None, None, Some(Value::Int32(0))]);
        assert!(eq_at(&a, 0, &a, 1));
        assert!(!eq_at(&a, 0, &a, 2), "NULL is not the zero value");
        let h = hash_rows(&[&a], 3);
        assert_eq!(h[0], h[1]);
        let layout = FixedKeyLayout::plan(&[&[&a]]).unwrap();
        let keys = encode_fixed(&[&a], 3, &layout);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2], "null mask separates NULL from zero");
    }

    #[test]
    fn fixed_layout_covers_narrow_keys_and_rejects_wide() {
        let i = arr(DataType::Int64, &[Some(Value::Int64(1))]);
        let d = arr(DataType::Date, &[Some(Value::Date(10))]);
        let b = arr(DataType::Boolean, &[Some(Value::Boolean(true))]);
        assert!(FixedKeyLayout::plan(&[&[&i, &d, &b]]).is_some()); // 13 bytes
        assert!(FixedKeyLayout::plan(&[&[&i, &i]]).is_none()); // 16 > 15
        let t = arr(DataType::Timestamp, &[Some(Value::Timestamp(5))]);
        assert!(FixedKeyLayout::plan(&[&[&i, &d, &t]]).is_none()); // 20 > 15
    }

    #[test]
    fn fixed_layout_strings_fit_by_observed_length() {
        let short = arr(
            DataType::Utf8,
            &[
                Some(Value::Utf8("abc".into())),
                Some(Value::Utf8("".into())),
            ],
        );
        let long = arr(
            DataType::Utf8,
            &[Some(Value::Utf8("a very long key string".into()))],
        );
        let layout = FixedKeyLayout::plan(&[&[&short]]).unwrap();
        let keys = encode_fixed(&[&short], 2, &layout);
        assert_ne!(keys[0], keys[1]);
        assert!(FixedKeyLayout::plan(&[&[&long]]).is_none());
        // Planning over both sides takes the worst case.
        assert!(FixedKeyLayout::plan(&[&[&short], &[&long]]).is_none());
    }

    #[test]
    fn fixed_encoding_is_exact_for_prefix_sharing_strings() {
        let s = arr(
            DataType::Utf8,
            &[
                Some(Value::Utf8("ab".into())),
                Some(Value::Utf8("ab\0".into())),
                Some(Value::Utf8("ab".into())),
            ],
        );
        let layout = FixedKeyLayout::plan(&[&[&s]]).unwrap();
        let keys = encode_fixed(&[&s], 3, &layout);
        assert_ne!(keys[0], keys[1], "length byte separates zero padding");
        assert_eq!(keys[0], keys[2]);
    }

    #[test]
    fn layout_rejects_mismatched_sides() {
        let i32s = arr(DataType::Int32, &[Some(Value::Int32(1))]);
        let i64s = arr(DataType::Int64, &[Some(Value::Int64(1))]);
        assert!(FixedKeyLayout::plan(&[&[&i32s], &[&i64s]]).is_none());
        assert!(FixedKeyLayout::plan(&[&[]]).is_none());
    }
}
