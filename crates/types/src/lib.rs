//! # gis-types — shared data representation for the GIS federated engine
//!
//! This crate defines the data model every other crate speaks:
//!
//! * [`DataType`] — the logical type lattice of the global schema, with
//!   the coercion rules the mediator uses to reconcile heterogeneous
//!   component schemas.
//! * [`Value`] — a single dynamically-typed scalar (used at plan time,
//!   for literals, keys and parameter binding).
//! * [`Array`] — a columnar, null-bitmap-backed vector of values (used
//!   at execution time; operators are vectorized over arrays).
//! * [`Schema`] / [`Field`] — named, typed, nullable column metadata.
//! * [`Batch`] — a schema plus equal-length arrays: the unit of data
//!   flow between operators and across the simulated network.
//!
//! The representation is deliberately self-contained (no Arrow
//! dependency): the federation experiments need exact control over the
//! wire size of every batch, which a hand-rolled layout makes auditable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod array;
pub mod batch;
pub mod bitmap;
pub mod datatype;
pub mod error;
pub mod keys;
pub mod mem;
pub mod ordering;
pub mod row;
pub mod schema;
pub mod value;

pub use array::{Array, ArrayBuilder};
pub use batch::Batch;
pub use bitmap::Bitmap;
pub use datatype::DataType;
pub use error::{GisError, Result};
pub use mem::{MemBudget, MemPool, MemPressure};
pub use ordering::{SortKey, SortOrder};
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use value::Value;
