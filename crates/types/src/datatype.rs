//! The logical type system of the global schema.
//!
//! Component information systems expose heterogeneous native types
//! (a 1989 IMS segment field, a DB2 DECIMAL, a flat-file string). The
//! mediator reconciles them onto this small lattice; the catalog's
//! mapping layer records how each component type is coerced into its
//! global counterpart.

use crate::error::{GisError, Result};
use std::fmt;

/// Logical data types understood by the global schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// The type of the SQL `NULL` literal before coercion.
    Null,
    /// Boolean true/false.
    Boolean,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 floating point.
    Float64,
    /// UTF-8 string of unbounded length.
    Utf8,
    /// Days since the Unix epoch (1970-01-01).
    Date,
    /// Microseconds since the Unix epoch, UTC.
    Timestamp,
}

impl DataType {
    /// All concrete (non-`Null`) types, useful for exhaustive tests.
    pub const ALL_CONCRETE: [DataType; 7] = [
        DataType::Boolean,
        DataType::Int32,
        DataType::Int64,
        DataType::Float64,
        DataType::Utf8,
        DataType::Date,
        DataType::Timestamp,
    ];

    /// True for types on the numeric promotion chain
    /// `Int32 -> Int64 -> Float64`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// True for integer types.
    pub fn is_integer(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64)
    }

    /// True for temporal types (internally integer-backed).
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Date | DataType::Timestamp)
    }

    /// Fixed wire width in bytes for a non-null element, or `None` for
    /// variable-width types (`Utf8`). Used by the network cost model.
    pub fn fixed_wire_width(self) -> Option<usize> {
        match self {
            DataType::Null => Some(0),
            DataType::Boolean => Some(1),
            DataType::Int32 | DataType::Date => Some(4),
            DataType::Int64 | DataType::Float64 | DataType::Timestamp => Some(8),
            DataType::Utf8 => None,
        }
    }

    /// The common supertype two operand types coerce to for comparison
    /// and arithmetic, or `None` when the pair is incompatible.
    ///
    /// The lattice is intentionally conservative: numerics promote
    /// toward `Float64`, `Null` coerces to anything, temporal types only
    /// unify with themselves, and nothing implicitly coerces to or from
    /// `Utf8` (heterogeneity is handled *explicitly* by catalog
    /// mappings, never by silent casts — a lesson the federated
    /// literature repeats).
    pub fn common_supertype(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        if self == other {
            return Some(self);
        }
        match (self, other) {
            (Null, t) | (t, Null) => Some(t),
            (Int32, Int64) | (Int64, Int32) => Some(Int64),
            (Int32, Float64) | (Float64, Int32) => Some(Float64),
            (Int64, Float64) | (Float64, Int64) => Some(Float64),
            _ => None,
        }
    }

    /// Whether a value of `self` can be cast to `target` (possibly
    /// lossily, e.g. `Float64 -> Int64` truncates; `Utf8` casts parse).
    pub fn can_cast_to(self, target: DataType) -> bool {
        use DataType::*;
        if self == target || self == Null {
            return true;
        }
        match (self, target) {
            // Numeric <-> numeric is always castable.
            (a, b) if a.is_numeric() && b.is_numeric() => true,
            // Anything renders to a string.
            (_, Utf8) => true,
            // Strings parse to anything (runtime failure possible).
            (Utf8, _) => true,
            // Temporal widening/narrowing.
            (Date, Timestamp) | (Timestamp, Date) => true,
            // Integers can be reinterpreted as temporal payloads.
            (a, b) if a.is_integer() && b.is_temporal() => true,
            (a, b) if a.is_temporal() && b.is_integer() => true,
            (Boolean, b) if b.is_numeric() => true,
            _ => false,
        }
    }

    /// Parses a type name as written in DDL / mapping files.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "null" => Ok(DataType::Null),
            "bool" | "boolean" => Ok(DataType::Boolean),
            "int" | "int32" | "integer" => Ok(DataType::Int32),
            "bigint" | "int64" | "long" => Ok(DataType::Int64),
            "double" | "float64" | "float" | "real" => Ok(DataType::Float64),
            "text" | "utf8" | "string" | "varchar" => Ok(DataType::Utf8),
            "date" => Ok(DataType::Date),
            "timestamp" | "datetime" => Ok(DataType::Timestamp),
            other => Err(GisError::Catalog(format!("unknown type name '{other}'"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Null => "null",
            DataType::Boolean => "boolean",
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Utf8 => "utf8",
            DataType::Date => "date",
            DataType::Timestamp => "timestamp",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supertype_is_symmetric_and_reflexive() {
        for &a in &DataType::ALL_CONCRETE {
            assert_eq!(a.common_supertype(a), Some(a));
            for &b in &DataType::ALL_CONCRETE {
                assert_eq!(a.common_supertype(b), b.common_supertype(a));
            }
        }
    }

    #[test]
    fn null_coerces_to_everything() {
        for &t in &DataType::ALL_CONCRETE {
            assert_eq!(DataType::Null.common_supertype(t), Some(t));
        }
    }

    #[test]
    fn numeric_promotion_chain() {
        assert_eq!(
            DataType::Int32.common_supertype(DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::Int64.common_supertype(DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::Int32.common_supertype(DataType::Float64),
            Some(DataType::Float64)
        );
    }

    #[test]
    fn no_implicit_string_coercion() {
        assert_eq!(DataType::Int64.common_supertype(DataType::Utf8), None);
        assert_eq!(DataType::Date.common_supertype(DataType::Utf8), None);
    }

    #[test]
    fn temporal_types_do_not_unify_with_numerics() {
        assert_eq!(DataType::Date.common_supertype(DataType::Int32), None);
        assert_eq!(DataType::Timestamp.common_supertype(DataType::Int64), None);
        assert_eq!(DataType::Date.common_supertype(DataType::Timestamp), None);
    }

    #[test]
    fn explicit_casts_are_more_permissive() {
        assert!(DataType::Int64.can_cast_to(DataType::Utf8));
        assert!(DataType::Utf8.can_cast_to(DataType::Int64));
        assert!(DataType::Date.can_cast_to(DataType::Timestamp));
        assert!(DataType::Int64.can_cast_to(DataType::Timestamp));
        assert!(!DataType::Boolean.can_cast_to(DataType::Date));
    }

    #[test]
    fn parse_roundtrips_display() {
        for &t in &DataType::ALL_CONCRETE {
            assert_eq!(DataType::parse(&t.to_string()).unwrap(), t);
        }
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn wire_widths() {
        assert_eq!(DataType::Int32.fixed_wire_width(), Some(4));
        assert_eq!(DataType::Timestamp.fixed_wire_width(), Some(8));
        assert_eq!(DataType::Utf8.fixed_wire_width(), None);
    }
}
