//! Memory accounting: per-query budgets drawing on a process pool.
//!
//! A mediator federates sources it does not control, so a single
//! pathological global query (a cross-product join, a huge GROUP BY)
//! must not take the serving tier down. The governor gives every
//! query a [`MemBudget`]: a cheap atomic reservation tracker with a
//! *soft* per-query limit and a shared hard [`MemPool`] behind it.
//! Execution kernels reserve before they allocate; on soft-limit
//! pressure they degrade (spill build partitions to disk), and only
//! when no degradation is left — spill disabled, disk cap hit, or
//! the process pool itself exhausted — is the query killed with
//! `GisError::ResourceExhausted`, cooperatively, at the same
//! checkpoints as deadlines.
//!
//! The module lives in `gis-types` so core, storage, runtime, and qa
//! can all share it without dependency cycles. Everything is
//! const-constructible, so [`UNLIMITED`] gives callers that predate
//! the governor a zero-cost "no budget" handle.

use crate::error::GisError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which limit a failed reservation tripped. Callers use this to
/// pick a degradation: `Budget` can be absorbed by spilling,
/// `Pool` and `Disk` cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPressure {
    /// The query's own soft limit — spillable work should spill.
    Budget,
    /// The process-wide pool — hard; the query must be killed so the
    /// rest of the runtime keeps its memory.
    Pool,
    /// The spill disk cap — the last degradation is gone; kill.
    Disk,
}

impl MemPressure {
    /// Renders the pressure as a `ResourceExhausted` error with
    /// enough context to diagnose which limit was hit.
    pub fn into_error(self, context: &str) -> GisError {
        let what = match self {
            MemPressure::Budget => "query memory budget exceeded and spill is unavailable",
            MemPressure::Pool => "process memory pool exhausted",
            MemPressure::Disk => "spill disk cap exhausted",
        };
        GisError::ResourceExhausted(format!("{what} ({context})"))
    }
}

/// The process-wide memory pool every query budget draws from.
///
/// Reservations are a compare-and-swap loop over one counter; there
/// is no waiting and no fairness — a query that cannot get its bytes
/// fails immediately so admission control can refuse new work while
/// resident queries release theirs.
#[derive(Debug)]
pub struct MemPool {
    capacity: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemPool {
    /// A pool with the given byte capacity. `u64::MAX` is effectively
    /// unlimited.
    pub fn new(capacity: u64) -> MemPool {
        MemPool {
            capacity,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Reserves `bytes`, failing (without side effects) when the pool
    /// would exceed capacity.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(n) if n <= self.capacity => n,
                _ => return false,
            };
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserves `bytes` unconditionally, allowing `used` to exceed
    /// capacity. For *resident* structures (materialized views) that
    /// cannot be refused or evicted at charge time: the overcommit is
    /// visible (`available` saturates to zero), so admission control
    /// refuses new queries until the residents shrink — the pool
    /// squeezes the workload instead of lying about usage.
    pub fn reserve_forced(&self, bytes: u64) {
        let next = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(next, Ordering::Relaxed);
    }

    /// Returns `bytes` to the pool.
    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Currently reserved bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes since creation.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Configured capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }
}

/// A per-query memory budget.
///
/// Lifecycle: the runtime builds one per admitted query (soft limit
/// plus a handle on the shared pool and the spill configuration),
/// threads it through execution, and reads the spill counters back
/// into its stats when the query finishes. Dropping the budget
/// returns every outstanding pool byte, so a killed query can never
/// leak pool capacity.
#[derive(Debug)]
pub struct MemBudget {
    /// Per-query soft limit in bytes; `u64::MAX` = unlimited.
    soft_limit: u64,
    /// The shared pool, when the budget is pool-backed.
    pool: Option<Arc<MemPool>>,
    used: AtomicU64,
    peak: AtomicU64,
    /// Bytes currently charged against the pool (what Drop returns).
    pool_charged: AtomicU64,
    /// Directory for spill files; `None` = the OS temp dir.
    spill_dir: Option<PathBuf>,
    /// Max bytes the query may spill; 0 disables spilling entirely.
    spill_cap: u64,
    spilled: AtomicU64,
    spill_events: AtomicU64,
    killed: AtomicBool,
}

/// A budget with no limits, no pool, and spilling disabled — the
/// pre-governor behavior, free to check.
pub static UNLIMITED: MemBudget = MemBudget {
    soft_limit: u64::MAX,
    pool: None,
    used: AtomicU64::new(0),
    peak: AtomicU64::new(0),
    pool_charged: AtomicU64::new(0),
    spill_dir: None,
    spill_cap: 0,
    spilled: AtomicU64::new(0),
    spill_events: AtomicU64::new(0),
    killed: AtomicBool::new(false),
};

impl MemBudget {
    /// A pool-backed budget for one query.
    pub fn new(
        soft_limit: u64,
        pool: Option<Arc<MemPool>>,
        spill_dir: Option<PathBuf>,
        spill_cap: u64,
    ) -> MemBudget {
        MemBudget {
            soft_limit,
            pool,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            pool_charged: AtomicU64::new(0),
            spill_dir,
            spill_cap,
            spilled: AtomicU64::new(0),
            spill_events: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        }
    }

    /// A standalone budget with the given soft limit and spill cap,
    /// not backed by a pool (tests and the qa harness).
    pub fn standalone(soft_limit: u64, spill_cap: u64) -> MemBudget {
        MemBudget::new(soft_limit, None, None, spill_cap)
    }

    /// Reserves `bytes` against the soft limit and the pool. On
    /// failure nothing is charged: `Budget` means the soft limit
    /// would be exceeded (the caller may spill, or escalate with
    /// [`MemBudget::force_reserve`]), `Pool` means the process pool
    /// is out — the budget is marked killed so concurrent workers
    /// stop at their next checkpoint.
    pub fn try_reserve(&self, bytes: u64) -> Result<(), MemPressure> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let next = prev.saturating_add(bytes);
        if next > self.soft_limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(MemPressure::Budget);
        }
        if !self.charge_pool(bytes) {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            self.kill();
            return Err(MemPressure::Pool);
        }
        self.peak.fetch_max(next, Ordering::Relaxed);
        Ok(())
    }

    /// Reserves past the soft limit — used for allocations that
    /// cannot spill (output buffers, the final merge) once the
    /// kernel has already degraded as far as it can. Still hard-fails
    /// on pool exhaustion.
    pub fn force_reserve(&self, bytes: u64) -> Result<(), MemPressure> {
        if !self.charge_pool(bytes) {
            self.kill();
            return Err(MemPressure::Pool);
        }
        let next = self
            .used
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        self.peak.fetch_max(next, Ordering::Relaxed);
        Ok(())
    }

    fn charge_pool(&self, bytes: u64) -> bool {
        match &self.pool {
            Some(pool) => {
                if pool.try_reserve(bytes) {
                    self.pool_charged.fetch_add(bytes, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            None => true,
        }
    }

    /// Returns `bytes` to the budget (and the pool).
    pub fn release(&self, bytes: u64) {
        self.used
            .fetch_sub(bytes.min(self.used()), Ordering::Relaxed);
        if let Some(pool) = &self.pool {
            let give_back = bytes.min(self.pool_charged.load(Ordering::Relaxed));
            self.pool_charged.fetch_sub(give_back, Ordering::Relaxed);
            pool.release(give_back);
        }
    }

    /// True when the configuration allows spilling at all.
    pub fn can_spill(&self) -> bool {
        self.spill_cap > 0
    }

    /// Records `bytes` written to a spill file, failing with `Disk`
    /// (and killing the budget) when the cap is exceeded.
    pub fn charge_spill(&self, bytes: u64) -> Result<(), MemPressure> {
        let next = self
            .spilled
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if next > self.spill_cap {
            self.kill();
            return Err(MemPressure::Disk);
        }
        Ok(())
    }

    /// Counts one kernel deciding to spill.
    pub fn note_spill_event(&self) {
        self.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Directory spill files should be created in (`None`: OS temp).
    pub fn spill_dir(&self) -> Option<&PathBuf> {
        self.spill_dir.as_ref()
    }

    /// Marks the query killed; parallel workers observe this at
    /// their cancellation checkpoints and stop early.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Relaxed);
    }

    /// True once the query has been killed (pool/disk exhaustion).
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    /// Currently reserved bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured soft limit.
    pub fn soft_limit(&self) -> u64 {
        self.soft_limit
    }

    /// Total bytes written to spill files.
    pub fn spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Number of kernel spill decisions.
    pub fn spill_events(&self) -> u64 {
        self.spill_events.load(Ordering::Relaxed)
    }
}

impl Drop for MemBudget {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            let residual = self.pool_charged.swap(0, Ordering::Relaxed);
            pool.release(residual);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reserve_release_and_peak() {
        let pool = MemPool::new(100);
        assert!(pool.try_reserve(60));
        assert!(!pool.try_reserve(50), "would exceed capacity");
        assert!(pool.try_reserve(40));
        assert_eq!(pool.used(), 100);
        assert_eq!(pool.available(), 0);
        pool.release(70);
        assert_eq!(pool.used(), 30);
        assert_eq!(pool.peak(), 100);
    }

    #[test]
    fn budget_soft_limit_fails_without_charging() {
        let b = MemBudget::standalone(100, 0);
        assert!(b.try_reserve(80).is_ok());
        assert_eq!(b.try_reserve(30), Err(MemPressure::Budget));
        assert_eq!(b.used(), 80, "failed reserve left no trace");
        assert!(!b.is_killed(), "soft-limit pressure does not kill");
        assert!(b.force_reserve(30).is_ok());
        assert_eq!(b.used(), 110);
        assert_eq!(b.peak(), 110);
    }

    #[test]
    fn pool_exhaustion_kills_and_drop_reclaims() {
        let pool = Arc::new(MemPool::new(100));
        {
            let b = MemBudget::new(u64::MAX, Some(pool.clone()), None, 0);
            assert!(b.try_reserve(90).is_ok());
            assert_eq!(b.try_reserve(20), Err(MemPressure::Pool));
            assert!(b.is_killed(), "pool exhaustion is a hard kill");
            assert_eq!(pool.used(), 90);
            // Budget dropped with 90 bytes still outstanding.
        }
        assert_eq!(pool.used(), 0, "drop returned every pool byte");
    }

    #[test]
    fn spill_cap_enforced() {
        let b = MemBudget::standalone(u64::MAX, 100);
        assert!(b.can_spill());
        assert!(b.charge_spill(80).is_ok());
        assert_eq!(b.charge_spill(30), Err(MemPressure::Disk));
        assert!(b.is_killed());
        let none = MemBudget::standalone(u64::MAX, 0);
        assert!(!none.can_spill());
    }

    #[test]
    fn unlimited_budget_never_fails() {
        assert!(UNLIMITED.try_reserve(u64::MAX / 2).is_ok());
        UNLIMITED.release(u64::MAX / 2);
        assert!(!UNLIMITED.can_spill());
    }

    #[test]
    fn pressure_errors_carry_code_mem() {
        let e = MemPressure::Pool.into_error("hash join build");
        assert_eq!(e.code(), "MEM");
        assert!(e.message().contains("hash join build"));
    }
}
