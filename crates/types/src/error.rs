//! Unified error type shared by every GIS crate.
//!
//! A federated engine has many failure domains — parsing, binding
//! against the global catalog, planning, source/adapter execution, the
//! (simulated) network, and the component storage engines. Each gets a
//! variant so call sites can match on the domain, while the `Display`
//! impl renders a single human-readable line for the CLI and tests.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = GisError> = std::result::Result<T, E>;

/// The error type for all GIS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GisError {
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query referenced names or used types inconsistently with the
    /// global schema (binder / analyzer errors).
    Analysis(String),
    /// The planner or optimizer could not produce a plan.
    Plan(String),
    /// A runtime execution failure (bad cast, overflow, etc.).
    Execution(String),
    /// A component storage engine failed.
    Storage(String),
    /// The (simulated) network failed — timeouts, partitions.
    Network(String),
    /// A source adapter rejected a request it is not capable of.
    Unsupported(String),
    /// Catalog inconsistency: unknown source, table, or mapping.
    Catalog(String),
    /// An internal invariant was violated; indicates a bug in GIS.
    Internal(String),
    /// The serving runtime refused admission: its queue is full.
    /// Clients should back off and retry.
    Overloaded(String),
    /// The query exceeded its deadline and was cancelled.
    Deadline(String),
    /// A source (or every replica of it) is known-unreachable — e.g.
    /// its circuit breaker is open — and the request was failed fast
    /// without touching the wire. Not retryable: retrying immediately
    /// would hit the same open breaker.
    Unavailable(String),
    /// The query exceeded its memory budget and could not degrade
    /// further (spill disabled, disk cap hit, or the process-wide
    /// pool is exhausted). The query was cancelled cooperatively at
    /// the same checkpoints as deadlines; the rest of the runtime
    /// keeps serving.
    ResourceExhausted(String),
}

impl GisError {
    /// Short machine-readable code for the failure domain.
    pub fn code(&self) -> &'static str {
        match self {
            GisError::Parse(_) => "PARSE",
            GisError::Analysis(_) => "ANALYSIS",
            GisError::Plan(_) => "PLAN",
            GisError::Execution(_) => "EXECUTION",
            GisError::Storage(_) => "STORAGE",
            GisError::Network(_) => "NETWORK",
            GisError::Unsupported(_) => "UNSUPPORTED",
            GisError::Catalog(_) => "CATALOG",
            GisError::Internal(_) => "INTERNAL",
            GisError::Overloaded(_) => "OVERLOADED",
            GisError::Deadline(_) => "DEADLINE",
            GisError::Unavailable(_) => "UNAVAILABLE",
            GisError::ResourceExhausted(_) => "MEM",
        }
    }

    /// The human-readable message without the domain prefix.
    pub fn message(&self) -> &str {
        match self {
            GisError::Parse(m)
            | GisError::Analysis(m)
            | GisError::Plan(m)
            | GisError::Execution(m)
            | GisError::Storage(m)
            | GisError::Network(m)
            | GisError::Unsupported(m)
            | GisError::Catalog(m)
            | GisError::Internal(m)
            | GisError::Overloaded(m)
            | GisError::Deadline(m)
            | GisError::Unavailable(m)
            | GisError::ResourceExhausted(m) => m,
        }
    }

    /// True when retrying the same request might succeed (transient
    /// network conditions); used by the federation executor's retry
    /// policy.
    pub fn is_retryable(&self) -> bool {
        matches!(self, GisError::Network(_))
    }
}

impl fmt::Display for GisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

impl std::error::Error for GisError {}

/// Builds an [`GisError::Internal`] with `format!` semantics.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        Err($crate::error::GisError::Internal(format!($($arg)*)))
    };
}

/// Builds an [`GisError::Execution`] with `format!` semantics.
#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => {
        Err($crate::error::GisError::Execution(format!($($arg)*)))
    };
}

/// Builds an [`GisError::Plan`] with `format!` semantics.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => {
        Err($crate::error::GisError::Plan(format!($($arg)*)))
    };
}

/// Builds an [`GisError::Analysis`] with `format!` semantics.
#[macro_export]
macro_rules! analysis_err {
    ($($arg:tt)*) => {
        Err($crate::error::GisError::Analysis(format!($($arg)*)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let e = GisError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "PARSE: unexpected token");
    }

    #[test]
    fn codes_are_distinct() {
        let errs = [
            GisError::Parse(String::new()),
            GisError::Analysis(String::new()),
            GisError::Plan(String::new()),
            GisError::Execution(String::new()),
            GisError::Storage(String::new()),
            GisError::Network(String::new()),
            GisError::Unsupported(String::new()),
            GisError::Catalog(String::new()),
            GisError::Internal(String::new()),
            GisError::Overloaded(String::new()),
            GisError::Deadline(String::new()),
            GisError::Unavailable(String::new()),
            GisError::ResourceExhausted(String::new()),
        ];
        let mut codes: Vec<_> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn only_network_errors_are_retryable() {
        assert!(GisError::Network("timeout".into()).is_retryable());
        assert!(!GisError::Storage("corrupt page".into()).is_retryable());
        assert!(!GisError::Parse("x".into()).is_retryable());
        // Fail-fast from an open breaker must not be retried in place.
        assert!(!GisError::Unavailable("circuit open".into()).is_retryable());
    }

    #[test]
    fn macros_build_expected_variants() {
        fn f() -> Result<()> {
            internal_err!("bad {}", 1)
        }
        assert_eq!(f().unwrap_err(), GisError::Internal("bad 1".into()));
        fn g() -> Result<()> {
            exec_err!("overflow")
        }
        assert_eq!(g().unwrap_err(), GisError::Execution("overflow".into()));
    }
}
