//! Cardinality and traffic estimation.
//!
//! The optimizer's decisions — join order, semijoin profitability,
//! strategy choice — all reduce to "how many rows (and bytes) will
//! this subplan produce?". Estimates come from the per-column
//! statistics sources exported at registration (row counts, min/max,
//! NDV, null counts, average widths); when statistics are missing the
//! model falls back to the classic System-R magic constants, clearly
//! labeled below. Experiment T5 measures how far these estimates land
//! from observed traffic.

use crate::expr::ScalarExpr;
use crate::plan::logical::{LogicalPlan, TableScanNode};
use gis_sql::ast::{BinaryOp, JoinKind};
use gis_storage::ColumnStats;
use gis_types::Value;

/// Magic selectivities used when statistics cannot answer.
pub mod defaults {
    /// Rows assumed for a table with no statistics.
    pub const TABLE_ROWS: f64 = 1_000.0;
    /// Bytes per row with no statistics.
    pub const ROW_BYTES: f64 = 64.0;
    /// Equality predicate selectivity.
    pub const EQ: f64 = 0.1;
    /// Range predicate selectivity.
    pub const RANGE: f64 = 0.3;
    /// LIKE predicate selectivity.
    pub const LIKE: f64 = 0.25;
    /// Fallback selectivity for anything else.
    pub const OTHER: f64 = 0.5;
}

/// An estimated relation size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Expected row count.
    pub rows: f64,
    /// Expected bytes per row on the wire.
    pub row_bytes: f64,
}

impl Estimate {
    /// Expected total wire bytes.
    pub fn total_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }
}

/// Estimates the output of a logical plan.
pub fn estimate(plan: &LogicalPlan) -> Estimate {
    match plan {
        LogicalPlan::TableScan(t) => estimate_scan(t),
        LogicalPlan::Filter { input, predicate } => {
            let e = estimate(input);
            // Selectivity consults the scan statistics the predicate's
            // columns trace back to; magic constants only when the
            // trail goes cold.
            let sel = predicate_selectivity(predicate, &|c| {
                let (scan, g) = resolve_column(input, c)?;
                Some((column_stats(scan, g)?, scan_rows(scan)))
            });
            Estimate {
                rows: (e.rows * sel).max(1.0),
                row_bytes: e.row_bytes,
            }
        }
        LogicalPlan::Projection { input, exprs, .. } => {
            let e = estimate(input);
            // Projection narrows rows proportionally to kept columns.
            let in_cols = input.schema().len().max(1) as f64;
            let keep = exprs.len().max(1) as f64;
            Estimate {
                rows: e.rows,
                row_bytes: (e.row_bytes * keep / in_cols).max(4.0),
            }
        }
        LogicalPlan::Join(j) => {
            let l = estimate(&j.left);
            let r = estimate(&j.right);
            let (lk, rk, _) = j.equi_keys();
            let rows = match j.kind {
                JoinKind::Cross => l.rows * r.rows,
                JoinKind::Semi => l.rows * 0.5,
                JoinKind::Anti => l.rows * 0.5,
                _ if lk.is_empty() => l.rows * r.rows * defaults::OTHER,
                _ => {
                    // |L ⋈ R| = |L|·|R| / max(ndv_L(keys), ndv_R(keys)),
                    // with key NDV looked up through the plan when the
                    // side bottoms out at a table scan; falling back to
                    // the side's row count (the classic System-R
                    // unknown-NDV assumption, which yields min(|L|,|R|)).
                    let ndv_l = key_ndv(&j.left, &lk).unwrap_or(l.rows);
                    let ndv_r = key_ndv(&j.right, &rk).unwrap_or(r.rows);
                    (l.rows * r.rows / ndv_l.max(ndv_r).max(1.0)).max(1.0)
                }
            };
            let row_bytes = match j.kind {
                JoinKind::Semi | JoinKind::Anti => l.row_bytes,
                _ => l.row_bytes + r.row_bytes,
            };
            Estimate { rows, row_bytes }
        }
        LogicalPlan::Aggregate {
            input, group_exprs, ..
        } => {
            let e = estimate(input);
            let rows = if group_exprs.is_empty() {
                1.0
            } else {
                // Group count = composite NDV of the keys when the
                // statistics trail reaches a scan; otherwise the
                // System-R folklore shrink, capped by input size.
                let cols: Option<Vec<usize>> = group_exprs
                    .iter()
                    .map(|g| match g {
                        ScalarExpr::Column(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                let from_stats = cols.and_then(|c| key_ndv(input, &c));
                from_stats
                    .unwrap_or_else(|| e.rows.powf(0.75))
                    .min(e.rows)
                    .max(1.0)
            };
            Estimate {
                rows,
                row_bytes: 8.0 * (group_exprs.len() + 1) as f64 + 8.0,
            }
        }
        LogicalPlan::Sort { input, .. } => estimate(input),
        LogicalPlan::Limit { input, skip, fetch } => {
            let e = estimate(input);
            let available = (e.rows - *skip as f64).max(0.0);
            Estimate {
                rows: match fetch {
                    Some(f) => available.min(*f as f64),
                    None => available,
                },
                row_bytes: e.row_bytes,
            }
        }
        LogicalPlan::Union { inputs, .. } => {
            let parts: Vec<Estimate> = inputs.iter().map(estimate).collect();
            Estimate {
                rows: parts.iter().map(|p| p.rows).sum(),
                row_bytes: parts
                    .iter()
                    .map(|p| p.row_bytes)
                    .fold(0.0, f64::max)
                    .max(4.0),
            }
        }
        LogicalPlan::Distinct { input } => {
            let e = estimate(input);
            Estimate {
                rows: (e.rows * 0.9).max(1.0),
                row_bytes: e.row_bytes,
            }
        }
        LogicalPlan::Values { rows, schema } => Estimate {
            rows: rows.len() as f64,
            row_bytes: (schema.len() as f64 * 8.0).max(1.0),
        },
        // Already materialized at the mediator: exact row count, and
        // serving it ships zero bytes over the simulated WAN.
        LogicalPlan::ViewScan { batch, .. } => Estimate {
            rows: batch.num_rows() as f64,
            row_bytes: if batch.num_rows() == 0 {
                1.0
            } else {
                batch.wire_size() as f64 / batch.num_rows() as f64
            },
        },
    }
}

/// Combined NDV of the key columns of one join side, traced through
/// projections/filters/sorts down to a table scan's statistics.
/// `None` when the trail goes cold (joins, aggregates, unions).
fn key_ndv(plan: &LogicalPlan, keys: &[usize]) -> Option<f64> {
    if keys.is_empty() {
        return None;
    }
    match plan {
        LogicalPlan::TableScan(t) => {
            let out = t.output_ordinals();
            let mut ndv = 1.0f64;
            for &k in keys {
                let g = *out.get(k)?;
                let stats = column_stats(t, g)?;
                if stats.ndv == 0 {
                    return None;
                }
                ndv *= stats.ndv as f64;
            }
            // Composite NDV capped by the table's row count.
            let rows = t.resolved.table.stats.as_ref()?.row_count as f64;
            Some(ndv.min(rows.max(1.0)))
        }
        // A filter keeps at most the input's key NDV; use it as an
        // upper bound (tighter bounds need per-value stats).
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => key_ndv(input, keys),
        LogicalPlan::Projection { input, exprs, .. } => {
            // Trace bare-column projections through to input ordinals.
            let mut inner = Vec::with_capacity(keys.len());
            for &k in keys {
                match exprs.get(k)? {
                    ScalarExpr::Column(c) => inner.push(*c),
                    _ => return None,
                }
            }
            key_ndv(input, &inner)
        }
        _ => None,
    }
}

/// Estimates a table scan with its pushed filters and projection.
pub fn estimate_scan(scan: &TableScanNode) -> Estimate {
    let stats = scan.resolved.table.stats.as_ref();
    let base_rows = stats
        .map(|s| s.row_count as f64)
        .unwrap_or(defaults::TABLE_ROWS);
    let mut selectivity = 1.0;
    for f in &scan.filters {
        selectivity *= scan_filter_selectivity(scan, f);
    }
    let rows = (base_rows * selectivity).max(if base_rows == 0.0 { 0.0 } else { 1.0 });
    // Bytes per row over the *output* (projected) columns.
    let ords = scan.output_ordinals();
    let row_bytes: f64 = ords
        .iter()
        .map(|&g| {
            column_stats(scan, g)
                .map(|c| c.avg_width.max(1.0))
                .unwrap_or(8.0)
        })
        .sum::<f64>()
        .max(4.0);
    Estimate { rows, row_bytes }
}

/// Column statistics for global ordinal `g` of a scan, routed through
/// the mapping to the export-side column the source collected stats
/// on.
pub fn column_stats(scan: &TableScanNode, g: usize) -> Option<&ColumnStats> {
    let stats = scan.resolved.table.stats.as_ref()?;
    let cm = scan.resolved.mapping.columns.get(g)?;
    let export_idx = scan
        .resolved
        .table
        .export_schema
        .index_of(None, &cm.source_column)
        .ok()?;
    stats.columns.get(export_idx)
}

/// Row count of a scan's table (for null-fraction computations).
fn scan_rows(scan: &TableScanNode) -> f64 {
    scan.resolved
        .table
        .stats
        .as_ref()
        .map(|s| s.row_count as f64)
        .unwrap_or(defaults::TABLE_ROWS)
        .max(1.0)
}

/// Traces output ordinal `col` of `plan` down to the table scan that
/// produces it, returning the scan and the column's **global** ordinal
/// there. `None` when the column is computed or the trail crosses a
/// join/aggregate/union.
fn resolve_column(plan: &LogicalPlan, col: usize) -> Option<(&TableScanNode, usize)> {
    match plan {
        LogicalPlan::TableScan(t) => {
            let g = *t.output_ordinals().get(col)?;
            Some((t, g))
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => resolve_column(input, col),
        LogicalPlan::Projection { input, exprs, .. } => match exprs.get(col)? {
            ScalarExpr::Column(c) => resolve_column(input, *c),
            _ => None,
        },
        _ => None,
    }
}

/// Selectivity of one pushed filter over the scan's global schema.
fn scan_filter_selectivity(scan: &TableScanNode, f: &ScalarExpr) -> f64 {
    predicate_selectivity(f, &|c| Some((column_stats(scan, c)?, scan_rows(scan))))
}

/// Selectivity of an arbitrary predicate, given a way to fetch the
/// statistics behind a column ordinal (`(column stats, table rows)`).
/// Boolean structure recurses; leaves consult MCVs, histograms, and
/// NDV before touching any magic constant.
fn predicate_selectivity<'a>(
    e: &ScalarExpr,
    lookup: &dyn Fn(usize) -> Option<(&'a ColumnStats, f64)>,
) -> f64 {
    match e {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => predicate_selectivity(left, lookup) * predicate_selectivity(right, lookup),
        ScalarExpr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let (a, b) = (
                predicate_selectivity(left, lookup),
                predicate_selectivity(right, lookup),
            );
            (a + b - a * b).clamp(0.0, 1.0)
        }
        ScalarExpr::Unary {
            op: gis_sql::ast::UnaryOp::Not,
            expr,
        } => 1.0 - predicate_selectivity(expr, lookup),
        ScalarExpr::Binary { left, op, right } => {
            let resolved = match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => Some((*c, *op, v)),
                (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => op.swap().map(|sw| (*c, sw, v)),
                _ => None,
            };
            match resolved.and_then(|(c, op, v)| Some((lookup(c)?, op, v))) {
                Some(((stats, rows), op, v)) => column_op_selectivity(stats, rows, op, v),
                None => generic_selectivity(e),
            }
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let sel = match (expr.as_ref(), pattern.as_ref()) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(Value::Utf8(p))) => lookup(*c)
                    .and_then(|(stats, rows)| like_selectivity(stats, rows, p))
                    .unwrap_or(defaults::LIKE),
                _ => defaults::LIKE,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let sel = match expr.as_ref() {
                ScalarExpr::Column(c) => match lookup(*c) {
                    Some((stats, rows)) => list
                        .iter()
                        .map(|item| match item {
                            ScalarExpr::Literal(v) => {
                                column_op_selectivity(stats, rows, BinaryOp::Eq, v)
                            }
                            _ => defaults::EQ,
                        })
                        .sum::<f64>()
                        .min(1.0),
                    None => (defaults::EQ * list.len() as f64).min(1.0),
                },
                _ => (defaults::EQ * list.len() as f64).min(1.0),
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        _ => generic_selectivity(e),
    }
}

/// Selectivity of `column <op> value` from the column's statistics.
fn column_op_selectivity(stats: &ColumnStats, rows: f64, op: BinaryOp, value: &Value) -> f64 {
    match op {
        BinaryOp::Eq => eq_selectivity(stats, rows, value),
        BinaryOp::NotEq => (1.0 - eq_selectivity(stats, rows, value)).clamp(0.0, 1.0),
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            let null_frac = (stats.null_count as f64 / rows).clamp(0.0, 1.0);
            // Histogram first: equi-depth buckets know the shape.
            if let Some(h) = &stats.histogram {
                let below = match op {
                    BinaryOp::Lt => h.fraction_below(value, false),
                    BinaryOp::LtEq => h.fraction_below(value, true),
                    BinaryOp::Gt => 1.0 - h.fraction_below(value, true),
                    _ => 1.0 - h.fraction_below(value, false),
                };
                return (below * (1.0 - null_frac)).clamp(0.0, 1.0);
            }
            // Then linear interpolation over the numeric [min, max].
            let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
                return defaults::RANGE;
            };
            let (Ok(Some(lo)), Ok(Some(hi)), Ok(Some(v))) =
                (min.as_f64(), max.as_f64(), value.as_f64())
            else {
                return defaults::RANGE;
            };
            if hi <= lo {
                return defaults::RANGE;
            }
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let sel = match op {
                BinaryOp::Lt | BinaryOp::LtEq => frac,
                _ => 1.0 - frac,
            };
            (sel * (1.0 - null_frac)).clamp(0.0, 1.0)
        }
        _ => generic_op_selectivity(op),
    }
}

/// Selectivity of `column = value`: MCV frequency when the value is a
/// known heavy hitter, the spread non-MCV remainder otherwise, plain
/// 1/NDV without MCVs — and `defaults::EQ` only when NDV is unknown.
fn eq_selectivity(stats: &ColumnStats, rows: f64, value: &Value) -> f64 {
    let null_frac = (stats.null_count as f64 / rows).clamp(0.0, 1.0);
    if let Some(mcv) = &stats.mcv {
        if let Some(f) = mcv.freq(value) {
            return f.clamp(0.0, 1.0);
        }
        // Not a heavy hitter: the remaining probability mass spread
        // over the remaining distinct values.
        if stats.ndv as usize > mcv.len() {
            let rest = (1.0 - null_frac - mcv.total_freq()).max(0.0);
            return (rest / (stats.ndv as usize - mcv.len()) as f64).clamp(0.0, 1.0);
        }
    }
    if stats.ndv > 0 {
        (1.0 / stats.ndv as f64).min(1.0)
    } else {
        defaults::EQ
    }
}

/// Histogram-backed selectivity of `column LIKE 'prefix%'`: the
/// pattern's literal prefix brackets a string range the histogram can
/// measure. `None` when the pattern has no usable prefix or the
/// column has no histogram.
fn like_selectivity(stats: &ColumnStats, rows: f64, pattern: &str) -> Option<f64> {
    let prefix = like_prefix(pattern)?;
    let h = stats.histogram.as_ref()?;
    let null_frac = (stats.null_count as f64 / rows).clamp(0.0, 1.0);
    let lo = Value::Utf8(prefix.clone());
    let sel = match prefix_upper_bound(&prefix) {
        Some(ub) => h.range_fraction(Some((&lo, true)), Some((&Value::Utf8(ub), false))),
        None => 1.0 - h.fraction_below(&lo, false),
    };
    // An exact-string pattern (no wildcards) is an equality test; a
    // true prefix pattern matches the whole bracketed range.
    let sel = if prefix.len() == pattern.len() {
        sel.min(eq_selectivity(stats, rows, &lo))
    } else {
        sel
    };
    Some((sel * (1.0 - null_frac)).clamp(0.0, 1.0))
}

/// The literal prefix of a LIKE pattern (chars before the first
/// wildcard); `None` when the pattern starts with a wildcard.
fn like_prefix(pattern: &str) -> Option<String> {
    let mut prefix = String::new();
    for ch in pattern.chars() {
        match ch {
            '%' | '_' => break,
            c => prefix.push(c),
        }
    }
    if prefix.is_empty() {
        None
    } else {
        Some(prefix)
    }
}

/// The smallest string greater than every string starting with
/// `prefix` (last byte incremented, backing off over 0xFF). `None`
/// when no such string exists or the increment breaks UTF-8.
fn prefix_upper_bound(prefix: &str) -> Option<String> {
    let mut bytes = prefix.as_bytes().to_vec();
    while let Some(last) = bytes.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return String::from_utf8(bytes).ok();
        }
        bytes.pop();
    }
    None
}

fn generic_op_selectivity(op: BinaryOp) -> f64 {
    match op {
        BinaryOp::Eq => defaults::EQ,
        BinaryOp::NotEq => 1.0 - defaults::EQ,
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => defaults::RANGE,
        BinaryOp::And | BinaryOp::Or => defaults::OTHER,
        _ => defaults::OTHER,
    }
}

/// Stats-free selectivity of an arbitrary predicate (public so the
/// bench harness can ablate statistics and fall back to this).
pub fn generic_selectivity(e: &ScalarExpr) -> f64 {
    match e {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => generic_selectivity(left) * generic_selectivity(right),
        ScalarExpr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let (a, b) = (generic_selectivity(left), generic_selectivity(right));
            (a + b - a * b).clamp(0.0, 1.0)
        }
        ScalarExpr::Binary { op, .. } => generic_op_selectivity(*op),
        ScalarExpr::Like { negated, .. } => {
            if *negated {
                1.0 - defaults::LIKE
            } else {
                defaults::LIKE
            }
        }
        ScalarExpr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        ScalarExpr::InList { list, negated, .. } => {
            let s = (defaults::EQ * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        ScalarExpr::Literal(Value::Boolean(true)) => 1.0,
        ScalarExpr::Literal(Value::Boolean(false)) => 0.0,
        ScalarExpr::Unary {
            op: gis_sql::ast::UnaryOp::Not,
            expr,
        } => 1.0 - generic_selectivity(expr),
        _ => defaults::OTHER,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_sql::ast::UnaryOp;
    use gis_types::Value;

    fn lit_pred(op: BinaryOp) -> ScalarExpr {
        ScalarExpr::col(0).binary(op, ScalarExpr::lit(Value::Int64(5)))
    }

    #[test]
    fn generic_selectivities_are_sane() {
        assert_eq!(generic_selectivity(&lit_pred(BinaryOp::Eq)), defaults::EQ);
        assert!(generic_selectivity(&lit_pred(BinaryOp::Lt)) < 0.5);
        // AND multiplies, OR unions.
        let a = lit_pred(BinaryOp::Eq);
        let b = lit_pred(BinaryOp::Eq);
        let and = a.clone().and(b.clone());
        let or = a.binary(BinaryOp::Or, b);
        assert!(generic_selectivity(&and) < generic_selectivity(&or));
        assert!((generic_selectivity(&and) - defaults::EQ * defaults::EQ).abs() < 1e-12);
        // NOT complements.
        let not = ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(lit_pred(BinaryOp::Eq)),
        };
        assert!((generic_selectivity(&not) - (1.0 - defaults::EQ)).abs() < 1e-12);
        // Constant booleans.
        assert_eq!(
            generic_selectivity(&ScalarExpr::lit(Value::Boolean(false))),
            0.0
        );
        assert_eq!(
            generic_selectivity(&ScalarExpr::lit(Value::Boolean(true))),
            1.0
        );
    }

    #[test]
    fn in_list_scales_with_members() {
        let small = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: vec![ScalarExpr::lit(Value::Int64(1))],
            negated: false,
        };
        let big = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: (0..20).map(|i| ScalarExpr::lit(Value::Int64(i))).collect(),
            negated: false,
        };
        assert!(generic_selectivity(&small) < generic_selectivity(&big));
        assert!(generic_selectivity(&big) <= 1.0);
    }

    /// A 1000-row table with realistic stats: `id` unique (0..1000),
    /// `region` skewed (half the rows are "east", the rest spread over
    /// "w000".."w499"), `amount` uniform (0..1000), `name` strings
    /// "name-000".."name-999".
    fn scan_with_stats() -> crate::plan::logical::TableScanNode {
        use gis_catalog::{CapabilityProfile, Catalog};
        use gis_storage::StatsCollector;
        use gis_types::{DataType, Field, Schema};
        let c = Catalog::new();
        c.register_source("s", "relational", CapabilityProfile::full_sql());
        let export = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amount", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .into_ref();
        let mut sc = StatsCollector::new(4);
        for i in 0..1000i64 {
            let region = if i % 2 == 0 {
                "east".to_string()
            } else {
                format!("w{:03}", (i / 2) % 500)
            };
            sc.observe_row(&[
                Value::Int64(i),
                Value::Utf8(region),
                Value::Int64(i),
                Value::Utf8(format!("name-{:03}", i)),
            ]);
        }
        c.register_table("s", "t", export, Some(sc.finish()))
            .unwrap();
        crate::plan::logical::TableScanNode::new("t", c.resolve(Some("s"), "t").unwrap())
    }

    fn filtered_rows(pred: ScalarExpr) -> f64 {
        let scan = LogicalPlan::TableScan(scan_with_stats());
        estimate(&LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: pred,
        })
        .rows
    }

    use crate::plan::logical::LogicalPlan;

    #[test]
    fn filter_equality_uses_ndv_not_magic_constant() {
        // id = 5 on a unique column: 1/NDV ≈ 1/1000, so ~1 row — the
        // old generic fallback would have said 100.
        let rows = filtered_rows(
            ScalarExpr::col(0).binary(BinaryOp::Eq, ScalarExpr::lit(Value::Int64(5))),
        );
        assert!(rows <= 2.0, "eq over unique column estimated {rows} rows");
        // Literal-on-the-left swaps the operator and hits the same path.
        let swapped = filtered_rows(
            ScalarExpr::lit(Value::Int64(5)).binary(BinaryOp::Eq, ScalarExpr::col(0)),
        );
        assert!(swapped <= 2.0, "swapped eq estimated {swapped} rows");
    }

    #[test]
    fn filter_not_eq_complements_ndv() {
        let rows = filtered_rows(
            ScalarExpr::col(0).binary(BinaryOp::NotEq, ScalarExpr::lit(Value::Int64(5))),
        );
        assert!(rows >= 990.0, "neq over unique column estimated {rows}");
    }

    #[test]
    fn filter_equality_consults_mcvs_for_skew() {
        // "east" is half the table — a heavy hitter the MCV list knows.
        let hot = filtered_rows(
            ScalarExpr::col(1).binary(BinaryOp::Eq, ScalarExpr::lit(Value::Utf8("east".into()))),
        );
        assert!(
            (400.0..=600.0).contains(&hot),
            "MCV estimate for the hot value: {hot}"
        );
        // A non-MCV value gets the spread remainder, far below 1/NDV
        // of a uniform assumption over the skewed column.
        let cold = filtered_rows(
            ScalarExpr::col(1).binary(BinaryOp::Eq, ScalarExpr::lit(Value::Utf8("w007".into()))),
        );
        assert!(cold < 20.0, "non-MCV estimate: {cold}");
        assert!(hot / cold > 20.0, "skew must separate hot from cold");
    }

    #[test]
    fn filter_range_uses_histogram() {
        let rows = filtered_rows(
            ScalarExpr::col(2).binary(BinaryOp::Lt, ScalarExpr::lit(Value::Int64(250))),
        );
        assert!(
            (150.0..=350.0).contains(&rows),
            "histogram range estimate {rows} for true 250"
        );
        let rows = filtered_rows(
            ScalarExpr::col(2).binary(BinaryOp::GtEq, ScalarExpr::lit(Value::Int64(900))),
        );
        assert!(
            (50.0..=200.0).contains(&rows),
            "histogram range estimate {rows} for true 100"
        );
    }

    #[test]
    fn filter_like_prefix_uses_histogram() {
        // name LIKE 'name-1%' matches name-100..name-199: 100 rows.
        let rows = filtered_rows(ScalarExpr::Like {
            expr: Box::new(ScalarExpr::col(3)),
            pattern: Box::new(ScalarExpr::lit(Value::Utf8("name-1%".into()))),
            negated: false,
        });
        assert!(
            (40.0..=250.0).contains(&rows),
            "LIKE-prefix estimate {rows} for true 100"
        );
        // Without a usable prefix the magic constant holds.
        let all = filtered_rows(ScalarExpr::Like {
            expr: Box::new(ScalarExpr::col(3)),
            pattern: Box::new(ScalarExpr::lit(Value::Utf8("%9".into()))),
            negated: false,
        });
        assert!((all - 1000.0 * defaults::LIKE).abs() < 1.0);
    }

    #[test]
    fn filter_in_list_sums_member_selectivities() {
        let rows = filtered_rows(ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: (0..5).map(|i| ScalarExpr::lit(Value::Int64(i))).collect(),
            negated: false,
        });
        // 5 members over a unique column: ~5 rows, not 5·0.1·1000.
        assert!(rows <= 10.0, "IN-list over unique column estimated {rows}");
    }

    #[test]
    fn filter_traces_through_projection() {
        let scan = LogicalPlan::TableScan(scan_with_stats());
        let schema = scan.schema().clone();
        let proj = LogicalPlan::Projection {
            schema: std::sync::Arc::new(schema.project(&[2, 0])),
            input: Box::new(scan),
            exprs: vec![ScalarExpr::col(2), ScalarExpr::col(0)],
        };
        // Column 1 of the projection is `id`; equality must still find
        // the NDV through the reordering.
        let rows = estimate(&LogicalPlan::Filter {
            input: Box::new(proj),
            predicate: ScalarExpr::col(1).binary(BinaryOp::Eq, ScalarExpr::lit(Value::Int64(7))),
        })
        .rows;
        assert!(rows <= 2.0, "projection-traced eq estimated {rows}");
    }

    #[test]
    fn estimates_compose_over_plan_shapes() {
        use crate::plan::logical::LogicalPlan;
        use gis_types::{Field, Schema};
        use std::sync::Arc;
        let values = LogicalPlan::Values {
            schema: Arc::new(Schema::new(vec![
                Field::new("a", gis_types::DataType::Int64),
                Field::new("b", gis_types::DataType::Int64),
            ])),
            rows: (0..100)
                .map(|i| vec![Value::Int64(i), Value::Int64(i % 10)])
                .collect(),
        };
        let base = estimate(&values);
        assert_eq!(base.rows, 100.0);
        let filtered = LogicalPlan::Filter {
            input: Box::new(values.clone()),
            predicate: lit_pred(BinaryOp::Eq),
        };
        assert!((estimate(&filtered).rows - 10.0).abs() < 1e-9);
        let limited = LogicalPlan::Limit {
            input: Box::new(values.clone()),
            skip: 90,
            fetch: Some(50),
        };
        assert_eq!(estimate(&limited).rows, 10.0);
        let crossed = LogicalPlan::join(
            values.clone(),
            values.clone(),
            gis_sql::ast::JoinKind::Cross,
            None,
        );
        assert_eq!(estimate(&crossed).rows, 10_000.0);
        let unioned = LogicalPlan::Union {
            schema: values.schema().clone(),
            inputs: vec![values.clone(), values.clone()],
        };
        assert_eq!(estimate(&unioned).rows, 200.0);
        let grouped = LogicalPlan::aggregate(values, vec![ScalarExpr::col(1)], vec![]).unwrap();
        let g = estimate(&grouped).rows;
        assert!((1.0..=100.0).contains(&g), "group estimate {g}");
    }
}
