//! The federation façade — the public face of the GIS.
//!
//! A [`Federation`] owns the catalog, the registry of metered remote
//! sources, the shared virtual clock, and the option sets. Downstream
//! users do three things: register component systems, optionally
//! declare global-schema mappings, and run SQL.
//!
//! ```no_run
//! # use gis_core::Federation;
//! # use gis_net::NetworkConditions;
//! let fed = Federation::new();
//! // fed.add_source(adapter, NetworkConditions::wan())?;
//! let result = fed.query("SELECT 1 AS x")?;
//! println!("{}", result.batch.to_table());
//! # Ok::<(), gis_types::GisError>(())
//! ```

use crate::exec::{create_physical_plan, ExecContext, ExecOptions};
use crate::metrics::{DegradedReport, QueryMetrics, TrafficSnapshot};
use crate::optimizer::{optimize, OptimizerOptions};
use crate::plan::binder::{check_duplicate_aliases, Binder};
use crate::plan::logical::LogicalPlan;
use gis_adapters::{register_adapter, RemoteSource, SourceAdapter, SourceGroup};
use gis_catalog::{Catalog, CatalogRef, TableMapping};
use gis_net::{BreakerConfig, Link, NetworkConditions, RetryPolicy, SimClock};
use gis_sql::ast::Statement;
use gis_types::{Batch, GisError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query result: data plus everything measured about getting it.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows.
    pub batch: Batch,
    /// Traffic and timing.
    pub metrics: QueryMetrics,
    /// Present when the query ran under
    /// [`ExecOptions::partial_results`] and one or more sources were
    /// unreachable: the rows above are a lower bound on the true
    /// answer, and this report names what is missing. `None` means
    /// the result is complete. Degraded results are never cached.
    pub degraded: Option<DegradedReport>,
}

impl QueryResult {
    /// True when the result is partial (some sources unreachable).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// A Global Information System instance.
pub struct Federation {
    catalog: CatalogRef,
    sources: RwLock<HashMap<String, SourceGroup>>,
    clock: SimClock,
    optimizer_options: RwLock<OptimizerOptions>,
    exec_options: RwLock<ExecOptions>,
    next_query_id: AtomicU64,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Federation {
    /// An empty federation with default options.
    pub fn new() -> Self {
        Federation {
            catalog: Catalog::new(),
            sources: RwLock::new(HashMap::new()),
            clock: SimClock::new(),
            optimizer_options: RwLock::new(OptimizerOptions::default()),
            exec_options: RwLock::new(ExecOptions::default()),
            next_query_id: AtomicU64::new(1),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &CatalogRef {
        &self.catalog
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Replaces the optimizer options (ablation knobs).
    pub fn set_optimizer_options(&self, options: OptimizerOptions) {
        *self.optimizer_options.write() = options;
    }

    /// Current optimizer options.
    pub fn optimizer_options(&self) -> OptimizerOptions {
        *self.optimizer_options.read()
    }

    /// Replaces the execution options (strategy knobs).
    pub fn set_exec_options(&self, options: ExecOptions) {
        *self.exec_options.write() = options;
    }

    /// Current execution options.
    pub fn exec_options(&self) -> ExecOptions {
        *self.exec_options.read()
    }

    /// Registers a component system behind a simulated link with the
    /// given conditions. Export schemas and statistics flow into the
    /// catalog; the adapter becomes reachable to query plans.
    pub fn add_source(
        &self,
        adapter: Arc<dyn SourceAdapter>,
        conditions: NetworkConditions,
    ) -> Result<()> {
        register_adapter(&self.catalog, &adapter)?;
        let name = adapter.name().to_ascii_lowercase();
        let link = Link::new(adapter.name(), conditions, self.clock.clone());
        let chunk = self.exec_options.read().chunk_rows;
        let remote = RemoteSource::new(adapter, link).with_chunk_rows(chunk);
        self.sources.write().insert(name, SourceGroup::new(remote));
        Ok(())
    }

    /// Registers an additional replica of an already-registered
    /// source, behind its own [`Link`] (own conditions, fault script,
    /// breaker). The replica serves the same adapter — same tables,
    /// same data, same capabilities — so the catalog is untouched;
    /// only routing changes. Returns the replica's link so tests and
    /// chaos experiments can script its faults directly.
    ///
    /// Fragments route to the cheapest healthy replica and fail over
    /// to the next one when every retry against the current choice is
    /// exhausted.
    pub fn add_source_replica(&self, source: &str, conditions: NetworkConditions) -> Result<Link> {
        let mut sources = self.sources.write();
        let group = sources
            .get_mut(&source.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))?;
        let link = Link::new(
            format!("{}@r{}", group.name(), group.replica_count()),
            conditions,
            self.clock.clone(),
        );
        let chunk = self.exec_options.read().chunk_rows;
        let replica = RemoteSource::new(group.adapter().clone(), link.clone())
            .with_chunk_rows(chunk)
            .with_retry_policy(group.primary().retry_policy());
        group.push_replica(replica);
        Ok(link)
    }

    /// Applies one retry policy to every replica of every source.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        for group in self.sources.write().values_mut() {
            group.set_retry_policy(policy);
        }
    }

    /// Applies one circuit-breaker configuration to every link.
    pub fn configure_breaker(&self, config: BreakerConfig) {
        for group in self.sources.read().values() {
            for replica in group.replicas() {
                replica.link().breaker().set_config(config);
            }
        }
    }

    /// Declares a global table over a registered source table.
    pub fn add_global_mapping(&self, mapping: TableMapping) -> Result<()> {
        self.catalog.register_global(mapping)
    }

    /// Declares `global` as an identity view of `source.table`.
    pub fn add_global_identity(&self, global: &str, source: &str, table: &str) -> Result<()> {
        self.catalog.register_global_identity(global, source, table)
    }

    /// The link to a registered source — the handle for scripting
    /// faults (partitions, transient loss) and reading raw traffic
    /// counters in tests and chaos experiments.
    pub fn source_link(&self, source: &str) -> Option<Link> {
        self.sources
            .read()
            .get(&source.to_ascii_lowercase())
            .map(|r| r.link().clone())
    }

    /// Every replica link of one source, primary first.
    pub fn replica_links(&self, source: &str) -> Vec<Link> {
        self.sources
            .read()
            .get(&source.to_ascii_lowercase())
            .map(|g| g.replicas().iter().map(|r| r.link().clone()).collect())
            .unwrap_or_default()
    }

    /// Every link in the federation — one per replica, across all
    /// sources, sorted by link name. The observability tier iterates
    /// this for per-link metric series.
    pub fn all_links(&self) -> Vec<Link> {
        let mut links: Vec<Link> = self
            .sources
            .read()
            .values()
            .flat_map(|g| g.replicas().iter().map(|r| r.link().clone()))
            .collect();
        links.sort_by(|a, b| a.name().cmp(b.name()));
        links
    }

    /// Like [`Federation::source_link`], but errors on unknown names —
    /// the form fault-injection tests want: `fed.link("crm")?` hands
    /// back the metered link whose `faults()` handle scripts
    /// partitions and transient failures.
    pub fn link(&self, source: &str) -> Result<Link> {
        self.source_link(source)
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))
    }

    /// The catalog's metadata version. Plan caches key on this: any
    /// registration or mapping change invalidates cached plans.
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// Per-source data versions, as reported by each adapter. Result
    /// caches pin this map: a bump on any source a cached result read
    /// from invalidates the entry.
    pub fn data_versions(&self) -> BTreeMap<String, u64> {
        self.sources
            .read()
            .values()
            .map(|s| (s.name().to_string(), s.adapter().data_version()))
            .collect()
    }

    /// Allocates a fresh query id (monotonic, starts at 1; id 0 is
    /// reserved for ad-hoc queries outside the runtime).
    pub fn next_query_id(&self) -> u64 {
        self.next_query_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Names of all registered sources.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sources
            .read()
            .values()
            .map(|s| s.name().to_string())
            .collect();
        names.sort();
        names
    }

    /// Refreshes catalog statistics for one table from its source.
    pub fn refresh_stats(&self, source: &str, table: &str) -> Result<()> {
        let sources = self.sources.read();
        let remote = sources
            .get(&source.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))?;
        let stats = remote.adapter().collect_stats(table)?;
        self.catalog.update_stats(source, table, stats)
    }

    /// Runs `sql` and returns rows plus metrics. `EXPLAIN` statements
    /// return the plan rendering as a one-column batch.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let stmt = gis_sql::parse(sql)?;
        match stmt {
            Statement::Explain { analyze, statement } => {
                let optimizer = self.optimizer_options();
                let exec = self.exec_options();
                self.explain_statement(*statement, analyze, &optimizer, &exec)
            }
            Statement::Query(_) => self.run_statement(&stmt),
        }
    }

    /// Binds and optimizes `sql` without executing (inspection/tests).
    pub fn logical_plan(&self, sql: &str) -> Result<LogicalPlan> {
        let stmt = gis_sql::parse(sql)?;
        self.plan_statement(&stmt)
    }

    /// Renders the optimized logical and physical plans.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = gis_sql::parse(sql)?;
        let plan = self.plan_statement(&stmt)?;
        let sources = self.sources.read();
        let physical = create_physical_plan(&plan, &sources, &self.exec_options.read())?;
        Ok(format!(
            "== Logical plan ==\n{plan}== Physical plan ==\n{}",
            physical.display()
        ))
    }

    /// Like [`Federation::query`], but with explicit option sets
    /// instead of the federation-wide defaults. This is the session
    /// path: a runtime session carries its own overrides and must not
    /// mutate shared state to apply them.
    pub fn query_with(
        &self,
        sql: &str,
        optimizer: &OptimizerOptions,
        exec: &ExecOptions,
    ) -> Result<QueryResult> {
        let stmt = gis_sql::parse(sql)?;
        match stmt {
            Statement::Explain { analyze, statement } => {
                self.explain_statement(*statement, analyze, optimizer, exec)
            }
            Statement::Query(_) => {
                let started = Instant::now();
                let plan = self.plan_statement_with(&stmt, optimizer)?;
                let mut result = self.execute_logical(&plan, exec, 0, None)?;
                result.metrics.wall_us = started.elapsed().as_micros();
                Ok(result)
            }
        }
    }

    /// Binds and optimizes a parsed statement under explicit optimizer
    /// options. The frontend half of the query path; the runtime's
    /// plan cache wraps exactly this call.
    pub fn plan_statement_with(
        &self,
        stmt: &Statement,
        options: &OptimizerOptions,
    ) -> Result<LogicalPlan> {
        if let Statement::Query(q) = stmt {
            if let gis_sql::ast::SetExpr::Select(s) = &q.body {
                if let Some(from) = &s.from {
                    let mut seen = std::collections::HashSet::new();
                    check_duplicate_aliases(from, &mut seen)?;
                }
            }
        }
        let binder = Binder::new(self.catalog.clone());
        let bound = binder.bind(stmt)?;
        optimize(bound, options)
    }

    /// Executes an already-optimized logical plan under explicit
    /// execution options, attributing traffic to `query_id` and
    /// cancelling (with [`GisError::Deadline`]) once `deadline`
    /// passes. The backend half of the query path.
    pub fn execute_logical(
        &self,
        plan: &LogicalPlan,
        exec: &ExecOptions,
        query_id: u64,
        deadline: Option<Instant>,
    ) -> Result<QueryResult> {
        let started = Instant::now();
        let sources = self.sources.read();
        let physical = create_physical_plan(plan, &sources, exec)?;
        // Traffic is accounted over *every* replica link: a failover
        // charges the replica that actually carried (or dropped) the
        // messages, not the logical source's primary.
        let links: Vec<&Link> = sources
            .values()
            .flat_map(|g| g.replicas().iter().map(|r| r.link()))
            .collect();
        let snapshot = TrafficSnapshot::capture(links.iter().copied(), &self.clock);
        let ctx = ExecContext::with_options(&sources, *exec)
            .with_query_id(query_id)
            .with_deadline(deadline);
        let (batch, trace) = physical.execute_traced(&ctx)?;
        let mut metrics = snapshot.diff_against(links.iter().copied(), &self.clock);
        metrics.rows_returned = batch.num_rows();
        metrics.fragments = physical.fragment_count();
        metrics.query_id = query_id;
        metrics.wall_us = started.elapsed().as_micros();
        metrics.trace = trace;
        let degraded = ctx.take_degraded();
        Ok(QueryResult {
            batch,
            metrics,
            degraded,
        })
    }

    fn plan_statement(&self, stmt: &Statement) -> Result<LogicalPlan> {
        let options = *self.optimizer_options.read();
        self.plan_statement_with(stmt, &options)
    }

    fn run_statement(&self, stmt: &Statement) -> Result<QueryResult> {
        let started = Instant::now();
        let plan = self.plan_statement(stmt)?;
        let exec = self.exec_options();
        let mut result = self.execute_logical(&plan, &exec, 0, None)?;
        result.metrics.wall_us = started.elapsed().as_micros();
        Ok(result)
    }

    fn explain_statement(
        &self,
        stmt: Statement,
        analyze: bool,
        optimizer: &OptimizerOptions,
        exec: &ExecOptions,
    ) -> Result<QueryResult> {
        let mut degraded = None;
        let rendered = if analyze {
            // Execute with tracing forced on: the annotated tree is
            // the point, whatever the session's normal settings are.
            let mut exec = *exec;
            exec.tracing = true;
            let started = Instant::now();
            let plan = self.plan_statement_with(&stmt, optimizer)?;
            let mut result = self.execute_logical(&plan, &exec, 0, None)?;
            result.metrics.wall_us = started.elapsed().as_micros();
            let tree = match &result.metrics.trace {
                Some(span) => span.render(),
                None => plan.to_string(),
            };
            let mut rendered = format!("{tree}-- executed: {}\n", result.metrics.summary());
            if let Some(report) = &result.degraded {
                rendered.push_str(&format!("-- degraded: {}\n", report.summary()));
            }
            degraded = result.degraded;
            rendered
        } else {
            let plan = self.plan_statement_with(&stmt, optimizer)?;
            let sources = self.sources.read();
            let physical = create_physical_plan(&plan, &sources, exec)?;
            format!(
                "== Logical plan ==\n{plan}== Physical plan ==\n{}",
                physical.display()
            )
        };
        let schema = gis_types::Schema::new(vec![gis_types::Field::required(
            "plan",
            gis_types::DataType::Utf8,
        )])
        .into_ref();
        let rows: Vec<Vec<gis_types::Value>> = rendered
            .lines()
            .map(|l| vec![gis_types::Value::Utf8(l.to_string())])
            .collect();
        Ok(QueryResult {
            batch: Batch::from_rows(schema, &rows)?,
            metrics: QueryMetrics::default(),
            degraded,
        })
    }
}
