//! The federation façade — the public face of the GIS.
//!
//! A [`Federation`] owns the catalog, the registry of metered remote
//! sources, the shared virtual clock, and the option sets. Downstream
//! users do three things: register component systems, optionally
//! declare global-schema mappings, and run SQL.
//!
//! ```no_run
//! # use gis_core::Federation;
//! # use gis_net::NetworkConditions;
//! let fed = Federation::new();
//! // fed.add_source(adapter, NetworkConditions::wan())?;
//! let result = fed.query("SELECT 1 AS x")?;
//! println!("{}", result.batch.to_table());
//! # Ok::<(), gis_types::GisError>(())
//! ```

use crate::exec::{create_physical_plan, ExecContext, ExecOptions};
use crate::metrics::{DegradedReport, QueryMetrics, TrafficSnapshot};
use crate::optimizer::view_match::{rewrite_with_views, would_match, ViewCandidate};
use crate::optimizer::{optimize, OptimizerOptions};
use crate::plan::binder::{check_duplicate_aliases, Binder};
use crate::plan::logical::LogicalPlan;
use gis_adapters::{register_adapter, RemoteSource, SourceAdapter, SourceGroup};
use gis_catalog::{Catalog, CatalogRef, TableMapping};
use gis_net::{BreakerConfig, Link, NetworkConditions, RetryPolicy, SimClock, WireStats};
use gis_sql::ast::Statement;
use gis_stats::{
    plan_fingerprint, FeedbackRegistry, SampleMode, SampleSpec, StatsGauges, StatsPolicy,
};
use gis_types::{Batch, GisError, MemBudget, Result};
use gis_views::{CompiledView, MaterializedView, RefreshPolicy, ViewGauges, ViewRegistry};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query result: data plus everything measured about getting it.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows.
    pub batch: Batch,
    /// Traffic and timing.
    pub metrics: QueryMetrics,
    /// Present when the query ran under
    /// [`ExecOptions::partial_results`] and one or more sources were
    /// unreachable: the rows above are a lower bound on the true
    /// answer, and this report names what is missing. `None` means
    /// the result is complete. Degraded results are never cached.
    pub degraded: Option<DegradedReport>,
}

impl QueryResult {
    /// True when the result is partial (some sources unreachable).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// A one-row `status` batch carrying `metrics` — the result shape of
/// materialized-view DDL statements.
fn status_result(text: String, metrics: QueryMetrics) -> Result<QueryResult> {
    let schema = gis_types::Schema::new(vec![gis_types::Field::required(
        "status",
        gis_types::DataType::Utf8,
    )])
    .into_ref();
    let rows = vec![vec![gis_types::Value::Utf8(text)]];
    Ok(QueryResult {
        batch: Batch::from_rows(schema, &rows)?,
        metrics,
        degraded: None,
    })
}

/// A Global Information System instance.
pub struct Federation {
    catalog: CatalogRef,
    sources: RwLock<HashMap<String, SourceGroup>>,
    clock: SimClock,
    optimizer_options: RwLock<OptimizerOptions>,
    exec_options: RwLock<ExecOptions>,
    next_query_id: AtomicU64,
    views: ViewRegistry<LogicalPlan>,
    /// Shared switch every registered link's [`RemoteSource`] watches:
    /// when set, fragment results and bind-join chunks ship as
    /// compressed v1 frames; when clear, as legacy raw frames.
    wire_compression: Arc<AtomicBool>,
    /// Federation-wide raw/compressed byte accumulator, fed by every
    /// [`RemoteSource`] as frames are encoded.
    wire_stats: Arc<WireStats>,
    /// Estimated-vs-actual cardinality feedback: the q-error ring,
    /// per-table drift windows, and the re-ANALYZE scheduler's state.
    feedback: Arc<FeedbackRegistry>,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Federation {
    /// An empty federation with default options.
    pub fn new() -> Self {
        Federation {
            catalog: Catalog::new(),
            sources: RwLock::new(HashMap::new()),
            clock: SimClock::new(),
            optimizer_options: RwLock::new(OptimizerOptions::default()),
            exec_options: RwLock::new(ExecOptions::default()),
            next_query_id: AtomicU64::new(1),
            views: ViewRegistry::new(),
            wire_compression: Arc::new(AtomicBool::new(true)),
            wire_stats: WireStats::shared(),
            feedback: Arc::new(FeedbackRegistry::default()),
        }
    }

    /// Turns adaptive wire compression on or off for every source
    /// (current and future). Default is on; turning it off ships
    /// legacy raw frames — the ablation baseline for byte counts.
    pub fn set_wire_compression(&self, on: bool) {
        self.wire_compression.store(on, Ordering::Relaxed);
    }

    /// Whether fragment results currently ship compressed.
    pub fn wire_compression(&self) -> bool {
        self.wire_compression.load(Ordering::Relaxed)
    }

    /// Cumulative raw-vs-wire byte counters across all sources.
    pub fn wire_stats(&self) -> &Arc<WireStats> {
        &self.wire_stats
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &CatalogRef {
        &self.catalog
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Replaces the optimizer options (ablation knobs).
    pub fn set_optimizer_options(&self, options: OptimizerOptions) {
        *self.optimizer_options.write() = options;
    }

    /// Current optimizer options.
    pub fn optimizer_options(&self) -> OptimizerOptions {
        *self.optimizer_options.read()
    }

    /// Replaces the execution options (strategy knobs).
    pub fn set_exec_options(&self, options: ExecOptions) {
        *self.exec_options.write() = options;
    }

    /// Current execution options.
    pub fn exec_options(&self) -> ExecOptions {
        *self.exec_options.read()
    }

    /// Registers a component system behind a simulated link with the
    /// given conditions. Export schemas and statistics flow into the
    /// catalog; the adapter becomes reachable to query plans.
    pub fn add_source(
        &self,
        adapter: Arc<dyn SourceAdapter>,
        conditions: NetworkConditions,
    ) -> Result<()> {
        register_adapter(&self.catalog, &adapter)?;
        let name = adapter.name().to_ascii_lowercase();
        let link = Link::new(adapter.name(), conditions, self.clock.clone());
        let chunk = self.exec_options.read().chunk_rows;
        let remote = RemoteSource::new(adapter, link)
            .with_chunk_rows(chunk)
            .with_compression_flag(self.wire_compression.clone())
            .with_wire_stats(self.wire_stats.clone());
        self.sources.write().insert(name, SourceGroup::new(remote));
        Ok(())
    }

    /// Registers an additional replica of an already-registered
    /// source, behind its own [`Link`] (own conditions, fault script,
    /// breaker). The replica serves the same adapter — same tables,
    /// same data, same capabilities — so the catalog is untouched;
    /// only routing changes. Returns the replica's link so tests and
    /// chaos experiments can script its faults directly.
    ///
    /// Fragments route to the cheapest healthy replica and fail over
    /// to the next one when every retry against the current choice is
    /// exhausted.
    pub fn add_source_replica(&self, source: &str, conditions: NetworkConditions) -> Result<Link> {
        let mut sources = self.sources.write();
        let group = sources
            .get_mut(&source.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))?;
        let link = Link::new(
            format!("{}@r{}", group.name(), group.replica_count()),
            conditions,
            self.clock.clone(),
        );
        let chunk = self.exec_options.read().chunk_rows;
        let replica = RemoteSource::new(group.adapter().clone(), link.clone())
            .with_chunk_rows(chunk)
            .with_retry_policy(group.primary().retry_policy())
            .with_compression_flag(self.wire_compression.clone())
            .with_wire_stats(self.wire_stats.clone());
        group.push_replica(replica);
        Ok(link)
    }

    /// Applies one retry policy to every replica of every source.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        for group in self.sources.write().values_mut() {
            group.set_retry_policy(policy);
        }
    }

    /// Applies one circuit-breaker configuration to every link.
    pub fn configure_breaker(&self, config: BreakerConfig) {
        for group in self.sources.read().values() {
            for replica in group.replicas() {
                replica.link().breaker().set_config(config);
            }
        }
    }

    /// Declares a global table over a registered source table.
    pub fn add_global_mapping(&self, mapping: TableMapping) -> Result<()> {
        self.catalog.register_global(mapping)
    }

    /// Declares `global` as an identity view of `source.table`.
    pub fn add_global_identity(&self, global: &str, source: &str, table: &str) -> Result<()> {
        self.catalog.register_global_identity(global, source, table)
    }

    /// The link to a registered source — the handle for scripting
    /// faults (partitions, transient loss) and reading raw traffic
    /// counters in tests and chaos experiments.
    pub fn source_link(&self, source: &str) -> Option<Link> {
        self.sources
            .read()
            .get(&source.to_ascii_lowercase())
            .map(|r| r.link().clone())
    }

    /// Every replica link of one source, primary first.
    pub fn replica_links(&self, source: &str) -> Vec<Link> {
        self.sources
            .read()
            .get(&source.to_ascii_lowercase())
            .map(|g| g.replicas().iter().map(|r| r.link().clone()).collect())
            .unwrap_or_default()
    }

    /// Every link in the federation — one per replica, across all
    /// sources, sorted by link name. The observability tier iterates
    /// this for per-link metric series.
    pub fn all_links(&self) -> Vec<Link> {
        let mut links: Vec<Link> = self
            .sources
            .read()
            .values()
            .flat_map(|g| g.replicas().iter().map(|r| r.link().clone()))
            .collect();
        links.sort_by(|a, b| a.name().cmp(b.name()));
        links
    }

    /// Like [`Federation::source_link`], but errors on unknown names —
    /// the form fault-injection tests want: `fed.link("crm")?` hands
    /// back the metered link whose `faults()` handle scripts
    /// partitions and transient failures.
    pub fn link(&self, source: &str) -> Result<Link> {
        self.source_link(source)
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))
    }

    /// The catalog's metadata version. Plan caches key on this: any
    /// registration or mapping change invalidates cached plans.
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// Per-source data versions, as reported by each adapter. Result
    /// caches pin this map: a bump on any source a cached result read
    /// from invalidates the entry.
    pub fn data_versions(&self) -> BTreeMap<String, u64> {
        self.sources
            .read()
            .values()
            .map(|s| (s.name().to_string(), s.adapter().data_version()))
            .collect()
    }

    /// Per-source data versions restricted to the given (lowercase)
    /// source names — the pin set for anything built from a plan that
    /// reads only those sources. Unknown names are silently absent.
    pub fn data_versions_for(&self, names: &[String]) -> BTreeMap<String, u64> {
        let sources = self.sources.read();
        names
            .iter()
            .filter_map(|n| {
                sources
                    .get(n)
                    .map(|s| (n.clone(), s.adapter().data_version()))
            })
            .collect()
    }

    /// Allocates a fresh query id (monotonic, starts at 1; id 0 is
    /// reserved for ad-hoc queries outside the runtime).
    pub fn next_query_id(&self) -> u64 {
        self.next_query_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Names of all registered sources.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sources
            .read()
            .values()
            .map(|s| s.name().to_string())
            .collect();
        names.sort();
        names
    }

    /// Refreshes catalog statistics for one table from its source.
    pub fn refresh_stats(&self, source: &str, table: &str) -> Result<()> {
        let sources = self.sources.read();
        let remote = sources
            .get(&source.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))?;
        let stats = remote.adapter().collect_stats(table)?;
        self.catalog.update_stats(source, table, stats)
    }

    /// The cardinality-feedback registry (q-error ring, drift windows,
    /// re-ANALYZE scheduling state).
    pub fn feedback(&self) -> &Arc<FeedbackRegistry> {
        &self.feedback
    }

    /// Replaces the adaptive statistics policy (thresholds, cooldown,
    /// auto-re-ANALYZE switch).
    pub fn set_stats_policy(&self, policy: StatsPolicy) {
        self.feedback.set_policy(policy);
    }

    /// Observability snapshot of the statistics subsystem, rendered by
    /// the runtime as `gis_stats_*` series.
    pub fn stats_gauges(&self) -> StatsGauges {
        self.feedback.gauges()
    }

    /// The sampling instruction for one table of one source: a
    /// relational engine evaluates pushdown over every row anyway, so
    /// ANALYZE scans fully; a columnar engine samples whole segments;
    /// a KV store strides its ordered key space. The seed folds in the
    /// catalog version so repeated ANALYZEs are deterministic yet
    /// don't resample identically forever.
    fn sample_spec_for(&self, kind: &str) -> SampleSpec {
        let seed = 0x5ca1e ^ self.catalog.version();
        match kind {
            "relational" => SampleSpec::full(),
            "kv" => SampleSpec::sampled(SampleMode::Range, seed),
            _ => SampleSpec::sampled(SampleMode::Page, seed),
        }
    }

    /// ANALYZEs one table: ships the request and the statistics frame
    /// across the table's metered link, installs the result in the
    /// catalog (bumping the catalog version, so cached plans
    /// re-optimize), and resets the table's drift window. Returns the
    /// wire bytes the exchange cost.
    pub fn analyze_table(&self, source: &str, table: &str) -> Result<u64> {
        let sources = self.sources.read();
        let group = sources
            .get(&source.to_ascii_lowercase())
            .ok_or_else(|| GisError::Catalog(format!("unknown source '{source}'")))?;
        let spec = self.sample_spec_for(group.adapter().kind());
        let (stats, wire_bytes) = group.primary().analyze(table, &spec)?;
        drop(sources);
        self.catalog.update_stats(source, table, stats)?;
        self.feedback
            .note_analyzed(source, table, self.clock.now_us(), wire_bytes);
        Ok(wire_bytes)
    }

    /// Runs an `ANALYZE [source[.table]]` statement: no target means
    /// every table of every source; a bare source means all its
    /// tables. Returns a one-row status batch whose metrics carry the
    /// collection traffic, priced on the virtual clock like any query.
    pub fn run_analyze(&self, source: Option<&str>, table: Option<&str>) -> Result<QueryResult> {
        let started = Instant::now();
        let targets: Vec<(String, String)> = match (source, table) {
            (Some(s), Some(t)) => vec![(s.to_string(), t.to_string())],
            (Some(s), None) => {
                let tables = self.catalog.tables_of(s);
                if tables.is_empty() {
                    return Err(GisError::Catalog(format!(
                        "unknown source '{s}' (or it exports no tables)"
                    )));
                }
                tables.into_iter().map(|t| (s.to_string(), t)).collect()
            }
            _ => self
                .catalog
                .sources()
                .into_iter()
                .flat_map(|s| {
                    self.catalog
                        .tables_of(&s.name)
                        .into_iter()
                        .map(move |t| (s.name.clone(), t))
                })
                .collect(),
        };
        let sources = self.sources.read();
        let links: Vec<Link> = sources
            .values()
            .flat_map(|g| g.replicas().iter().map(|r| r.link().clone()))
            .collect();
        drop(sources);
        let snapshot = TrafficSnapshot::capture(links.iter(), &self.clock);
        let mut wire_bytes = 0u64;
        for (s, t) in &targets {
            wire_bytes += self.analyze_table(s, t)?;
        }
        let mut metrics = snapshot.diff_against(links.iter(), &self.clock);
        metrics.rows_returned = 1;
        metrics.wall_us = started.elapsed().as_micros();
        status_result(
            format!(
                "ANALYZE: {} table(s), {wire_bytes} wire bytes",
                targets.len()
            ),
            metrics,
        )
    }

    /// Re-ANALYZEs every table whose recent q-errors say the
    /// optimizer's picture has rotted (threshold, window, and cooldown
    /// per [`StatsPolicy`]), on the virtual clock. The runtime's workers
    /// call this between jobs, next to [`Federation::maintain_views`].
    /// Returns the number of tables re-analyzed.
    pub fn maintain_stats(&self) -> usize {
        let due = self.feedback.due_for_reanalyze(self.clock.now_us());
        let mut done = 0;
        for (source, table) in due {
            if self.analyze_table(&source, &table).is_ok() {
                done += 1;
            }
        }
        done
    }

    /// The materialized-view registry (inspection, tests, gauges).
    pub fn views(&self) -> &ViewRegistry<LogicalPlan> {
        &self.views
    }

    /// Observability snapshot of every view, judged against current
    /// source versions. The runtime renders these as `gis_view_*`
    /// series.
    pub fn view_gauges(&self) -> Vec<ViewGauges> {
        self.views.gauges(&self.data_versions())
    }

    /// Creates a materialized view named `name` defined by the SELECT
    /// text `sql`, materializes it immediately, and registers it for
    /// [`RefreshPolicy::Manual`] refreshes.
    pub fn create_materialized_view(&self, name: &str, sql: &str) -> Result<QueryResult> {
        self.create_materialized_view_with(name, sql, RefreshPolicy::Manual)
    }

    /// Like [`Federation::create_materialized_view`], with an explicit
    /// refresh policy.
    pub fn create_materialized_view_with(
        &self,
        name: &str,
        sql: &str,
        policy: RefreshPolicy,
    ) -> Result<QueryResult> {
        if name.is_empty() {
            return Err(GisError::Analysis("materialized view name is empty".into()));
        }
        // A view shadowing a global table would make `FROM name`
        // ambiguous between catalog resolution and view matching.
        if self
            .catalog
            .global_tables()
            .iter()
            .any(|t| t.eq_ignore_ascii_case(name))
        {
            return Err(GisError::Catalog(format!(
                "cannot create materialized view '{name}': a global table with that name exists"
            )));
        }
        let stmt = gis_sql::parse(sql)?;
        if !matches!(stmt, Statement::Query(_)) {
            return Err(GisError::Analysis(
                "materialized view definition must be a SELECT query".into(),
            ));
        }
        let compiled = self.compile_view(&stmt)?;
        let view = self.views.insert(MaterializedView::new(
            name.to_ascii_lowercase(),
            sql,
            policy,
            compiled,
        ))?;
        let metrics = match self.run_refresh(&view) {
            Ok(m) => m,
            Err(e) => {
                // Creation is atomic: a failed initial materialization
                // leaves no half-registered view behind.
                let _ = self.views.remove(name);
                return Err(e);
            }
        };
        let rows = view.data().map(|d| d.batch.num_rows()).unwrap_or(0);
        status_result(
            format!(
                "created materialized view {} ({} rows, {} bytes shipped, policy {})",
                view.name(),
                rows,
                metrics.bytes_shipped,
                policy.label()
            ),
            metrics,
        )
    }

    /// Re-runs a view's plan and replaces its materialized rows.
    pub fn refresh_materialized_view(&self, name: &str) -> Result<QueryResult> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| GisError::Catalog(format!("unknown materialized view '{name}'")))?;
        let metrics = self.run_refresh(&view)?;
        let rows = view.data().map(|d| d.batch.num_rows()).unwrap_or(0);
        status_result(
            format!(
                "refreshed materialized view {} ({} rows, {} bytes shipped)",
                view.name(),
                rows,
                metrics.bytes_shipped
            ),
            metrics,
        )
    }

    /// Drops a view (definition and materialized rows).
    pub fn drop_materialized_view(&self, name: &str) -> Result<QueryResult> {
        let view = self.views.remove(name)?;
        status_result(
            format!("dropped materialized view {}", view.name()),
            QueryMetrics::default(),
        )
    }

    /// Runs every due [`RefreshPolicy::Interval`] refresh against the
    /// virtual clock. The runtime's workers call this between jobs (a
    /// wall-clock thread cannot pace a virtual clock). When an
    /// interval elapses but no pinned source version moved, the timer
    /// is re-armed without shipping anything — refresh cost tracks
    /// actual change, not time. Returns the number of refreshes run.
    pub fn maintain_views(&self) -> usize {
        let mut refreshed = 0;
        for view in self.views.all() {
            if !view.interval_due(self.clock.now_us()) {
                continue;
            }
            let compiled = view.compiled();
            let plan_current = compiled.catalog_version == self.catalog.version();
            let current = self.data_versions_for(&compiled.sources);
            if plan_current && view.staleness(&current).is_fresh() {
                view.touch(self.clock.now_us());
            } else if self.run_refresh(&view).is_ok() {
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Binds and optimizes a view definition, recording what it reads.
    fn compile_view(&self, stmt: &Statement) -> Result<CompiledView<LogicalPlan>> {
        // Capture the catalog version *before* binding: a concurrent
        // catalog change then marks the plan stale, never fresh.
        let catalog_version = self.catalog.version();
        let plan = self.plan_statement(stmt)?;
        let schema = plan.schema().clone();
        let sources = plan.source_names();
        Ok(CompiledView {
            plan: Arc::new(plan),
            schema,
            sources,
            catalog_version,
        })
    }

    /// Re-materializes one view: re-binds if the catalog moved, pins
    /// source versions, executes the stored plan (with view matching
    /// off — a view must never be refreshed from itself), installs
    /// the result.
    fn run_refresh(&self, view: &MaterializedView<LogicalPlan>) -> Result<QueryMetrics> {
        let mut compiled = view.compiled();
        if compiled.catalog_version != self.catalog.version() {
            let stmt = gis_sql::parse(view.sql())?;
            compiled = self.compile_view(&stmt)?;
            view.recompile(compiled.clone());
        }
        // Pin versions BEFORE executing: a write racing the refresh
        // leaves the view stale, never falsely fresh.
        let versions = self.data_versions_for(&compiled.sources);
        let mut exec = self.exec_options();
        exec.view_matching = false;
        let result = self.execute_logical(&compiled.plan, &exec, 0, None)?;
        if result.degraded.is_some() {
            return Err(GisError::Unavailable(format!(
                "refresh of materialized view '{}' degraded; refusing to materialize a partial result",
                view.name()
            )));
        }
        view.install(result.batch, versions, self.clock.now_us());
        Ok(result.metrics)
    }

    /// Offers every usable view to the matcher and rewrites `plan`
    /// where one subsumes a subtree. A stale on-query-if-stale view
    /// that *would* match is refreshed first (synchronously); stale
    /// views under other policies are skipped and counted.
    fn apply_view_matching(&self, plan: &LogicalPlan) -> Option<(LogicalPlan, Vec<String>)> {
        let catalog_version = self.catalog.version();
        let mut candidates = Vec::new();
        for view in self.views.all() {
            let compiled = view.compiled();
            let plan_current = compiled.catalog_version == catalog_version;
            let fresh = plan_current
                && view
                    .staleness(&self.data_versions_for(&compiled.sources))
                    .is_fresh();
            if fresh {
                if let Some(d) = view.data() {
                    candidates.push(ViewCandidate {
                        name: view.name().to_string(),
                        plan: compiled.plan.clone(),
                        batch: d.batch,
                    });
                }
                continue;
            }
            // Stale rows (or a stale plan). Only worth acting on when
            // the view could answer part of *this* query.
            if !would_match(plan, &compiled.plan) {
                continue;
            }
            if view.policy() == RefreshPolicy::OnQueryIfStale && self.run_refresh(&view).is_ok() {
                let compiled = view.compiled();
                if let Some(d) = view.data() {
                    candidates.push(ViewCandidate {
                        name: view.name().to_string(),
                        plan: compiled.plan.clone(),
                        batch: d.batch,
                    });
                }
            } else {
                view.record_stale_skip();
            }
        }
        let outcome = rewrite_with_views(plan, &candidates);
        if let Some((_, used)) = &outcome {
            for name in used {
                if let Some(v) = self.views.get(name) {
                    v.record_hit();
                }
            }
        }
        outcome
    }

    /// Runs `sql` and returns rows plus metrics. `EXPLAIN` statements
    /// return the plan rendering as a one-column batch;
    /// materialized-view DDL returns a one-row status batch.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let stmt = gis_sql::parse(sql)?;
        match stmt {
            Statement::Explain { analyze, statement } => {
                let optimizer = self.optimizer_options();
                let exec = self.exec_options();
                self.explain_statement(
                    *statement,
                    analyze,
                    &optimizer,
                    &exec,
                    &gis_types::mem::UNLIMITED,
                )
            }
            Statement::Query(_) => self.run_statement(&stmt),
            Statement::CreateMaterializedView { name, query } => {
                self.create_materialized_view(&name, &gis_sql::unparse::query_to_sql(&query))
            }
            Statement::RefreshMaterializedView { name } => self.refresh_materialized_view(&name),
            Statement::DropMaterializedView { name } => self.drop_materialized_view(&name),
            Statement::Analyze { source, table } => {
                self.run_analyze(source.as_deref(), table.as_deref())
            }
        }
    }

    /// Binds and optimizes `sql` without executing (inspection/tests).
    pub fn logical_plan(&self, sql: &str) -> Result<LogicalPlan> {
        let stmt = gis_sql::parse(sql)?;
        self.plan_statement(&stmt)
    }

    /// Renders the optimized logical and physical plans.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = gis_sql::parse(sql)?;
        let plan = self.plan_statement(&stmt)?;
        let sources = self.sources.read();
        let physical = create_physical_plan(&plan, &sources, &self.exec_options.read())?;
        Ok(format!(
            "== Logical plan ==\n{plan}== Physical plan ==\n{}",
            physical.display()
        ))
    }

    /// Like [`Federation::query`], but with explicit option sets
    /// instead of the federation-wide defaults. This is the session
    /// path: a runtime session carries its own overrides and must not
    /// mutate shared state to apply them.
    pub fn query_with(
        &self,
        sql: &str,
        optimizer: &OptimizerOptions,
        exec: &ExecOptions,
    ) -> Result<QueryResult> {
        self.query_with_budget(sql, optimizer, exec, &gis_types::mem::UNLIMITED)
    }

    /// [`Federation::query_with`] under an explicit per-query memory
    /// budget: hash kernels and sort buffers account against it,
    /// spill when the soft limit is hit, and cancel the query with
    /// [`GisError::ResourceExhausted`] past the hard limit.
    pub fn query_with_budget(
        &self,
        sql: &str,
        optimizer: &OptimizerOptions,
        exec: &ExecOptions,
        budget: &MemBudget,
    ) -> Result<QueryResult> {
        let stmt = gis_sql::parse(sql)?;
        match stmt {
            Statement::Explain { analyze, statement } => {
                self.explain_statement(*statement, analyze, optimizer, exec, budget)
            }
            Statement::Query(_) => {
                let started = Instant::now();
                let plan = self.plan_statement_with(&stmt, optimizer)?;
                let mut result = self.execute_logical_governed(&plan, exec, 0, None, budget)?;
                result.metrics.wall_us = started.elapsed().as_micros();
                Ok(result)
            }
            // View DDL mutates federation-wide state; session option
            // overrides don't apply, so route to the shared APIs.
            Statement::CreateMaterializedView { name, query } => {
                self.create_materialized_view(&name, &gis_sql::unparse::query_to_sql(&query))
            }
            Statement::RefreshMaterializedView { name } => self.refresh_materialized_view(&name),
            Statement::DropMaterializedView { name } => self.drop_materialized_view(&name),
            // ANALYZE mutates shared catalog state; session overrides
            // don't apply.
            Statement::Analyze { source, table } => {
                self.run_analyze(source.as_deref(), table.as_deref())
            }
        }
    }

    /// Binds and optimizes a parsed statement under explicit optimizer
    /// options. The frontend half of the query path; the runtime's
    /// plan cache wraps exactly this call.
    pub fn plan_statement_with(
        &self,
        stmt: &Statement,
        options: &OptimizerOptions,
    ) -> Result<LogicalPlan> {
        if let Statement::Query(q) = stmt {
            if let gis_sql::ast::SetExpr::Select(s) = &q.body {
                if let Some(from) = &s.from {
                    let mut seen = std::collections::HashSet::new();
                    check_duplicate_aliases(from, &mut seen)?;
                }
            }
        }
        let binder = Binder::new(self.catalog.clone());
        let bound = binder.bind(stmt)?;
        optimize(bound, options)
    }

    /// Executes an already-optimized logical plan under explicit
    /// execution options, attributing traffic to `query_id` and
    /// cancelling (with [`GisError::Deadline`]) once `deadline`
    /// passes. The backend half of the query path.
    pub fn execute_logical(
        &self,
        plan: &LogicalPlan,
        exec: &ExecOptions,
        query_id: u64,
        deadline: Option<Instant>,
    ) -> Result<QueryResult> {
        self.execute_logical_governed(plan, exec, query_id, deadline, &gis_types::mem::UNLIMITED)
    }

    /// [`Federation::execute_logical`] under an explicit memory
    /// budget. The runtime scheduler builds one budget per admitted
    /// query (charged against the process pool) and threads it here;
    /// the unbudgeted entry points pass the process-wide unlimited
    /// budget.
    pub fn execute_logical_governed(
        &self,
        plan: &LogicalPlan,
        exec: &ExecOptions,
        query_id: u64,
        deadline: Option<Instant>,
        budget: &MemBudget,
    ) -> Result<QueryResult> {
        let started = Instant::now();
        // View matching runs here — after optimization, at execution
        // time — because freshness is only knowable now, and because
        // the runtime's plan cache must never store a view decision
        // that could outlive the view's freshness.
        let rewritten = if exec.view_matching && !self.views.is_empty() {
            self.apply_view_matching(plan)
        } else {
            None
        };
        let (plan, views_used) = match &rewritten {
            Some((p, used)) => (p, used.clone()),
            None => (plan, Vec::new()),
        };
        let sources = self.sources.read();
        let physical = create_physical_plan(plan, &sources, exec)?;
        // Traffic is accounted over *every* replica link: a failover
        // charges the replica that actually carried (or dropped) the
        // messages, not the logical source's primary.
        let links: Vec<&Link> = sources
            .values()
            .flat_map(|g| g.replicas().iter().map(|r| r.link()))
            .collect();
        let snapshot = TrafficSnapshot::capture(links.iter().copied(), &self.clock);
        let ctx = ExecContext::with_options(&sources, *exec)
            .with_query_id(query_id)
            .with_deadline(deadline)
            .with_budget(budget);
        let (batch, trace) = physical.execute_traced(&ctx)?;
        let mut metrics = snapshot.diff_against(links.iter().copied(), &self.clock);
        metrics.rows_returned = batch.num_rows();
        metrics.fragments = physical.fragment_count();
        metrics.query_id = query_id;
        metrics.wall_us = started.elapsed().as_micros();
        metrics.trace = trace;
        metrics.views_used = views_used;
        // Stamp the root span with the optimizer's estimate so
        // `EXPLAIN ANALYZE` shows est-vs-actual at the top of the tree
        // (fragments carry their own scan-level estimates).
        if let Some(span) = &mut metrics.trace {
            span.est_rows = crate::cost::estimate(plan).rows.round().max(1.0) as u64;
        }
        let degraded = ctx.take_degraded();
        // Cardinality feedback: compare the optimizer's root estimate
        // against the observed row count, attributed to every base
        // table the plan read. Degraded (partial) results are skipped
        // — a missing source, not a bad estimate.
        if degraded.is_none() {
            let tables: Vec<(String, String)> = plan
                .scans()
                .iter()
                .map(|s| {
                    (
                        s.resolved.source.name.clone(),
                        s.resolved.mapping.source_table.clone(),
                    )
                })
                .collect();
            if !tables.is_empty() {
                let est = crate::cost::estimate(plan).rows;
                self.feedback.record(
                    plan_fingerprint(&plan.to_string()),
                    &tables,
                    est,
                    batch.num_rows() as u64,
                    self.clock.now_us(),
                );
            }
        }
        Ok(QueryResult {
            batch,
            metrics,
            degraded,
        })
    }

    fn plan_statement(&self, stmt: &Statement) -> Result<LogicalPlan> {
        let options = *self.optimizer_options.read();
        self.plan_statement_with(stmt, &options)
    }

    fn run_statement(&self, stmt: &Statement) -> Result<QueryResult> {
        let started = Instant::now();
        let plan = self.plan_statement(stmt)?;
        let exec = self.exec_options();
        let mut result = self.execute_logical(&plan, &exec, 0, None)?;
        result.metrics.wall_us = started.elapsed().as_micros();
        Ok(result)
    }

    fn explain_statement(
        &self,
        stmt: Statement,
        analyze: bool,
        optimizer: &OptimizerOptions,
        exec: &ExecOptions,
        budget: &MemBudget,
    ) -> Result<QueryResult> {
        let mut degraded = None;
        let rendered = if analyze {
            // Execute with tracing forced on: the annotated tree is
            // the point, whatever the session's normal settings are.
            let mut exec = *exec;
            exec.tracing = true;
            let started = Instant::now();
            let plan = self.plan_statement_with(&stmt, optimizer)?;
            let mut result = self.execute_logical_governed(&plan, &exec, 0, None, budget)?;
            result.metrics.wall_us = started.elapsed().as_micros();
            let tree = match &result.metrics.trace {
                Some(span) => span.render(),
                None => plan.to_string(),
            };
            let mut rendered = format!("{tree}-- executed: {}\n", result.metrics.summary());
            if let Some(report) = &result.degraded {
                rendered.push_str(&format!("-- degraded: {}\n", report.summary()));
            }
            degraded = result.degraded;
            rendered
        } else {
            let plan = self.plan_statement_with(&stmt, optimizer)?;
            let sources = self.sources.read();
            let physical = create_physical_plan(&plan, &sources, exec)?;
            format!(
                "== Logical plan ==\n{plan}== Physical plan ==\n{}",
                physical.display()
            )
        };
        let schema = gis_types::Schema::new(vec![gis_types::Field::required(
            "plan",
            gis_types::DataType::Utf8,
        )])
        .into_ref();
        let rows: Vec<Vec<gis_types::Value>> = rendered
            .lines()
            .map(|l| vec![gis_types::Value::Utf8(l.to_string())])
            .collect();
        Ok(QueryResult {
            batch: Batch::from_rows(schema, &rows)?,
            metrics: QueryMetrics::default(),
            degraded,
        })
    }
}
