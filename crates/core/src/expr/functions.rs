//! Scalar function registry.
//!
//! Resolution from name happens in the binder via
//! [`ScalarFunc::resolve`]; evaluation is row-at-a-time inside the
//! vectorized evaluator (the function set is small enough that
//! per-function kernels would be noise).

use gis_types::{DataType, GisError, Result, Value};

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// `abs(x)` — absolute value.
    Abs,
    /// `length(s)` — characters in a string.
    Length,
    /// `upper(s)` / `lower(s)`.
    Upper,
    /// Lowercase.
    Lower,
    /// `substr(s, start[, len])` — 1-based start.
    Substr,
    /// `coalesce(a, b, ...)` — first non-null.
    Coalesce,
    /// `round(x[, digits])`.
    Round,
    /// `floor(x)` / `ceil(x)`.
    Floor,
    /// Ceiling.
    Ceil,
    /// `nullif(a, b)` — NULL when equal, else `a`.
    NullIf,
    /// `trim(s)` — strip ASCII whitespace.
    Trim,
    /// `concat(a, b, ...)` — string concatenation. NULL dialect: NULL
    /// arguments are *skipped* rather than poisoning the result
    /// (MySQL/Postgres `CONCAT` behaviour, not SQL-standard `||`).
    Concat,
    /// `concat_ws(sep, a, b, ...)` — join the non-NULL arguments with
    /// the separator; NULL arguments are skipped; a NULL separator
    /// yields NULL.
    ConcatWs,
    /// `year(d)` / `month(d)` / `day(d)` — date parts.
    Year,
    /// Month part.
    Month,
    /// Day part.
    Day,
    /// `sqrt(x)`.
    Sqrt,
}

impl ScalarFunc {
    /// Resolves a lowercase function name.
    pub fn resolve(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "abs" => ScalarFunc::Abs,
            "length" | "char_length" => ScalarFunc::Length,
            "upper" => ScalarFunc::Upper,
            "lower" => ScalarFunc::Lower,
            "substr" | "substring" => ScalarFunc::Substr,
            "coalesce" => ScalarFunc::Coalesce,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "nullif" => ScalarFunc::NullIf,
            "trim" => ScalarFunc::Trim,
            "concat" => ScalarFunc::Concat,
            "concat_ws" => ScalarFunc::ConcatWs,
            "year" => ScalarFunc::Year,
            "month" => ScalarFunc::Month,
            "day" => ScalarFunc::Day,
            "sqrt" => ScalarFunc::Sqrt,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Abs => "abs",
            ScalarFunc::Length => "length",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Substr => "substr",
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::Round => "round",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::NullIf => "nullif",
            ScalarFunc::Trim => "trim",
            ScalarFunc::Concat => "concat",
            ScalarFunc::ConcatWs => "concat_ws",
            ScalarFunc::Year => "year",
            ScalarFunc::Month => "month",
            ScalarFunc::Day => "day",
            ScalarFunc::Sqrt => "sqrt",
        }
    }

    /// Return type given argument types; validates arity.
    pub fn return_type(self, args: &[DataType]) -> Result<DataType> {
        let arity_err = |want: &str| {
            Err(GisError::Analysis(format!(
                "{}() expects {want} argument(s), got {}",
                self.name(),
                args.len()
            )))
        };
        match self {
            ScalarFunc::Abs => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(args[0])
            }
            ScalarFunc::Length => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(DataType::Int64)
            }
            ScalarFunc::Upper | ScalarFunc::Lower | ScalarFunc::Trim => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(DataType::Utf8)
            }
            ScalarFunc::Substr => {
                if args.len() != 2 && args.len() != 3 {
                    return arity_err("2 or 3");
                }
                Ok(DataType::Utf8)
            }
            ScalarFunc::Coalesce => {
                if args.is_empty() {
                    return arity_err("at least 1");
                }
                let mut ty = DataType::Null;
                for &a in args {
                    ty = ty.common_supertype(a).ok_or_else(|| {
                        GisError::Analysis(
                            "coalesce() arguments have incompatible types".to_string(),
                        )
                    })?;
                }
                Ok(ty)
            }
            ScalarFunc::Round => {
                if args.len() != 1 && args.len() != 2 {
                    return arity_err("1 or 2");
                }
                Ok(DataType::Float64)
            }
            ScalarFunc::Floor | ScalarFunc::Ceil => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(DataType::Int64)
            }
            ScalarFunc::NullIf => {
                if args.len() != 2 {
                    return arity_err("2");
                }
                // The two sides are compared for equality at eval
                // time, so reject incomparable pairs here instead of
                // deferring a confusing row-at-a-time failure.
                args[0].common_supertype(args[1]).ok_or_else(|| {
                    GisError::Analysis(format!(
                        "nullif() arguments are not comparable: {} vs {}",
                        args[0], args[1]
                    ))
                })?;
                Ok(args[0])
            }
            ScalarFunc::Concat => {
                if args.is_empty() {
                    return arity_err("at least 1");
                }
                Ok(DataType::Utf8)
            }
            ScalarFunc::ConcatWs => {
                if args.len() < 2 {
                    return arity_err("at least 2 (separator + values)");
                }
                Ok(DataType::Utf8)
            }
            ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(DataType::Int64)
            }
            ScalarFunc::Sqrt => {
                if args.len() != 1 {
                    return arity_err("1");
                }
                Ok(DataType::Float64)
            }
        }
    }

    /// Evaluates over materialized argument values.
    pub fn eval(self, args: &[Value]) -> Result<Value> {
        let null_in = |n: usize| args[..n].iter().any(Value::is_null);
        Ok(match self {
            ScalarFunc::Abs => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Int32(v) => Value::Int32(v.wrapping_abs()),
                    Value::Int64(v) => Value::Int64(v.wrapping_abs()),
                    Value::Float64(v) => Value::Float64(v.abs()),
                    other => {
                        return Err(GisError::Execution(format!(
                            "abs() on {}",
                            other.data_type()
                        )))
                    }
                }
            }
            ScalarFunc::Length => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Int64(req_str(&args[0], "length")?.chars().count() as i64)
            }
            ScalarFunc::Upper => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Utf8(req_str(&args[0], "upper")?.to_uppercase())
            }
            ScalarFunc::Lower => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Utf8(req_str(&args[0], "lower")?.to_lowercase())
            }
            ScalarFunc::Trim => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Utf8(req_str(&args[0], "trim")?.trim().to_string())
            }
            ScalarFunc::Substr => {
                if args.iter().any(Value::is_null) {
                    return Ok(Value::Null);
                }
                let s: Vec<char> = req_str(&args[0], "substr")?.chars().collect();
                // SQL (Postgres) semantics: `start` is 1-based and may
                // be zero or negative, in which case the window
                // [start, start+len) still begins there — positions
                // before the string consume length budget without
                // producing characters: substr('hello', -1, 3) = 'h'.
                let from = args[1].as_i64()?.unwrap_or(1).saturating_sub(1);
                let until = if args.len() == 3 {
                    let len = args[2].as_i64()?.unwrap_or(0).max(0);
                    from.saturating_add(len)
                } else {
                    i64::MAX
                };
                let lo = from.clamp(0, s.len() as i64) as usize;
                let hi = until.clamp(0, s.len() as i64) as usize;
                Value::Utf8(s[lo..hi].iter().collect())
            }
            ScalarFunc::Coalesce => args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null),
            ScalarFunc::Round => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                let x = req_num(&args[0], "round")?;
                let digits = if args.len() == 2 {
                    if args[1].is_null() {
                        return Ok(Value::Null);
                    }
                    args[1].as_i64()?.unwrap_or(0)
                } else {
                    0
                };
                // The scale 10^digits must stay a finite f64: past
                // ±308 it overflows/underflows and the old
                // `x·∞/∞` path produced NaN (and `digits as i32`
                // wrapped for |digits| > i32::MAX). Digits beyond that
                // range decide the rounding directly: finer than f64
                // precision is an identity, coarser than any
                // representable magnitude is zero.
                let rounded = if !x.is_finite() || digits > 308 {
                    x
                } else if digits < -308 {
                    // Every finite f64 is below 10^309.
                    0.0 * x.signum()
                } else {
                    let scale = 10f64.powi(digits as i32);
                    let scaled = x * scale;
                    if !scaled.is_finite() {
                        // Overflow requires digits ≥ 1 and |x| ≫ 2^53:
                        // x has no fractional part, so rounding at a
                        // positive digit position is an identity.
                        x
                    } else {
                        let r = scaled.round() / scale;
                        if r.is_finite() {
                            r
                        } else {
                            // digits < 0 rounded |x| up past f64::MAX.
                            return Err(GisError::Execution(format!(
                                "round({x}, {digits}) overflows double precision"
                            )));
                        }
                    }
                };
                Value::Float64(rounded)
            }
            ScalarFunc::Floor => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Int64(float_to_i64(req_num(&args[0], "floor")?.floor(), "floor")?)
            }
            ScalarFunc::Ceil => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Int64(float_to_i64(req_num(&args[0], "ceil")?.ceil(), "ceil")?)
            }
            ScalarFunc::NullIf => {
                if args[0].is_null() {
                    return Ok(Value::Null);
                }
                if args[0].sql_eq(&args[1]) == Some(true) {
                    Value::Null
                } else {
                    args[0].clone()
                }
            }
            ScalarFunc::Concat => {
                let mut s = String::new();
                for a in args {
                    if !a.is_null() {
                        s.push_str(&a.to_string());
                    }
                }
                Value::Utf8(s)
            }
            ScalarFunc::ConcatWs => {
                if args[0].is_null() {
                    return Ok(Value::Null);
                }
                let sep = args[0].to_string();
                let joined: Vec<String> = args[1..]
                    .iter()
                    .filter(|a| !a.is_null())
                    .map(Value::to_string)
                    .collect();
                Value::Utf8(joined.join(&sep))
            }
            ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                let days = match &args[0] {
                    Value::Date(d) => *d,
                    Value::Timestamp(us) => us.div_euclid(86_400_000_000) as i32,
                    other => {
                        return Err(GisError::Execution(format!(
                            "{}() on {}",
                            self.name(),
                            other.data_type()
                        )))
                    }
                };
                let (y, m, d) = gis_types::value::date_parts(days);
                Value::Int64(match self {
                    ScalarFunc::Year => y,
                    ScalarFunc::Month => m as i64,
                    _ => d as i64,
                })
            }
            ScalarFunc::Sqrt => {
                if null_in(1) {
                    return Ok(Value::Null);
                }
                Value::Float64(req_num(&args[0], "sqrt")?.sqrt())
            }
        })
    }
}

/// Converts an already-rounded float to `i64`, erroring when the value
/// falls outside the representable range. A bare `as` cast would
/// silently saturate — a wrong result, where an error is honest.
fn float_to_i64(v: f64, func: &str) -> Result<i64> {
    // 2^63 is exactly representable as f64; i64::MAX is not (it
    // rounds up to 2^63), so the in-range test is a half-open
    // interval. NaN fails both comparisons and errors too.
    if (-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0).contains(&v) {
        Ok(v as i64)
    } else {
        Err(GisError::Execution(format!(
            "{func}() result {v} is outside the bigint range"
        )))
    }
}

fn req_str<'a>(v: &'a Value, func: &str) -> Result<&'a str> {
    v.as_str()?
        .ok_or_else(|| GisError::Execution(format!("{func}() received NULL unexpectedly")))
}

fn req_num(v: &Value, func: &str) -> Result<f64> {
    v.as_f64()?
        .ok_or_else(|| GisError::Execution(format!("{func}() received NULL unexpectedly")))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn resolve_and_names() {
        assert_eq!(ScalarFunc::resolve("upper"), Some(ScalarFunc::Upper));
        assert_eq!(
            ScalarFunc::resolve("CEILING".to_lowercase().as_str()),
            Some(ScalarFunc::Ceil)
        );
        assert_eq!(ScalarFunc::resolve("nope"), None);
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            ScalarFunc::Upper
                .eval(&[Value::Utf8("abc".into())])
                .unwrap(),
            Value::Utf8("ABC".into())
        );
        assert_eq!(
            ScalarFunc::Length
                .eval(&[Value::Utf8("héllo".into())])
                .unwrap(),
            Value::Int64(5)
        );
        assert_eq!(
            ScalarFunc::Substr
                .eval(&[
                    Value::Utf8("hello".into()),
                    Value::Int64(2),
                    Value::Int64(3)
                ])
                .unwrap(),
            Value::Utf8("ell".into())
        );
        assert_eq!(
            ScalarFunc::Substr
                .eval(&[Value::Utf8("hello".into()), Value::Int64(10)])
                .unwrap(),
            Value::Utf8("".into())
        );
        assert_eq!(
            ScalarFunc::Trim
                .eval(&[Value::Utf8("  x ".into())])
                .unwrap(),
            Value::Utf8("x".into())
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(
            ScalarFunc::Abs.eval(&[Value::Int64(-5)]).unwrap(),
            Value::Int64(5)
        );
        assert_eq!(
            ScalarFunc::Round
                .eval(&[Value::Float64(2.345), Value::Int64(2)])
                .unwrap(),
            Value::Float64(2.35)
        );
        assert_eq!(
            ScalarFunc::Floor.eval(&[Value::Float64(-1.5)]).unwrap(),
            Value::Int64(-2)
        );
        assert_eq!(
            ScalarFunc::Ceil.eval(&[Value::Float64(1.2)]).unwrap(),
            Value::Int64(2)
        );
        assert_eq!(
            ScalarFunc::Sqrt.eval(&[Value::Int64(9)]).unwrap(),
            Value::Float64(3.0)
        );
    }

    #[test]
    fn substr_negative_and_zero_starts() {
        let substr = |s: &str, args: &[i64]| {
            let mut v = vec![Value::Utf8(s.into())];
            v.extend(args.iter().map(|&a| Value::Int64(a)));
            ScalarFunc::Substr.eval(&v).unwrap()
        };
        // The window starts before the string; its length budget is
        // consumed by the virtual positions (Postgres semantics).
        assert_eq!(substr("hello", &[-1, 3]), Value::Utf8("h".into()));
        assert_eq!(substr("hello", &[0, 3]), Value::Utf8("he".into()));
        assert_eq!(substr("hello", &[-2, 2]), Value::Utf8("".into()));
        // Without a length the whole string survives.
        assert_eq!(substr("hello", &[-10]), Value::Utf8("hello".into()));
        assert_eq!(substr("hello", &[0]), Value::Utf8("hello".into()));
        // Character (not byte) positions for multibyte text.
        assert_eq!(substr("héllo", &[-1, 3]), Value::Utf8("h".into()));
        // Extremes must not panic or wrap.
        assert_eq!(substr("hi", &[i64::MIN, 3]), Value::Utf8("".into()));
        assert_eq!(substr("hi", &[i64::MIN]), Value::Utf8("hi".into()));
        assert_eq!(substr("hi", &[2, i64::MAX]), Value::Utf8("i".into()));
        assert_eq!(substr("hi", &[1, -5]), Value::Utf8("".into()));
    }

    #[test]
    fn floor_ceil_error_outside_i64_range() {
        for f in [ScalarFunc::Floor, ScalarFunc::Ceil] {
            assert!(f.eval(&[Value::Float64(1e300)]).is_err());
            assert!(f.eval(&[Value::Float64(-1e300)]).is_err());
            assert!(f.eval(&[Value::Float64(f64::INFINITY)]).is_err());
            assert!(f.eval(&[Value::Float64(f64::NAN)]).is_err());
            // i64::MAX as f64 rounds up to 2^63, which is out of range.
            assert!(f.eval(&[Value::Float64(i64::MAX as f64)]).is_err());
            // 2^63 - 1024 is representable and in range.
            assert_eq!(
                f.eval(&[Value::Float64(9_223_372_036_854_774_784.0)])
                    .unwrap(),
                Value::Int64(9_223_372_036_854_774_784)
            );
            assert_eq!(
                f.eval(&[Value::Float64(i64::MIN as f64)]).unwrap(),
                Value::Int64(i64::MIN)
            );
        }
        assert_eq!(
            ScalarFunc::Floor.eval(&[Value::Float64(2.9)]).unwrap(),
            Value::Int64(2)
        );
    }

    #[test]
    fn round_extreme_digits() {
        let round = |x: f64, d: i64| {
            ScalarFunc::Round
                .eval(&[Value::Float64(x), Value::Int64(d)])
                .unwrap()
        };
        // Pre-fix: `digits as i32` wrapped 4·10^9 to a negative scale
        // and produced NaN via 0/0; 10^12 digits overflowed to ∞/∞.
        assert_eq!(round(2.345, 4_000_000_000), Value::Float64(2.345));
        assert_eq!(round(2.345, 1_000_000_000_000), Value::Float64(2.345));
        assert_eq!(round(2.345, 400), Value::Float64(2.345));
        // Coarser than any representable magnitude rounds to zero.
        assert_eq!(round(5.0, -1_000), Value::Float64(0.0));
        assert_eq!(round(5.0, -4_000_000_000), Value::Float64(0.0));
        // Ordinary negative digits still work.
        assert_eq!(round(123.456, -2), Value::Float64(100.0));
        // Non-finite inputs pass through.
        assert_eq!(round(f64::INFINITY, 2), Value::Float64(f64::INFINITY));
        // Rounding up past f64::MAX is an error, not ∞.
        assert!(ScalarFunc::Round
            .eval(&[Value::Float64(1.7e308), Value::Int64(-308)])
            .is_err());
    }

    #[test]
    fn null_handling() {
        assert_eq!(ScalarFunc::Abs.eval(&[Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            ScalarFunc::Coalesce
                .eval(&[Value::Null, Value::Null, Value::Int64(3)])
                .unwrap(),
            Value::Int64(3)
        );
        assert_eq!(
            ScalarFunc::Coalesce.eval(&[Value::Null]).unwrap(),
            Value::Null
        );
        assert_eq!(
            ScalarFunc::NullIf
                .eval(&[Value::Int64(1), Value::Int64(1)])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            ScalarFunc::NullIf
                .eval(&[Value::Int64(1), Value::Int64(2)])
                .unwrap(),
            Value::Int64(1)
        );
    }

    #[test]
    fn date_parts() {
        // 2024-02-29
        let d = Value::Date(gis_types::value::parse_date("2024-02-29").unwrap());
        assert_eq!(
            ScalarFunc::Year.eval(std::slice::from_ref(&d)).unwrap(),
            Value::Int64(2024)
        );
        assert_eq!(
            ScalarFunc::Month.eval(std::slice::from_ref(&d)).unwrap(),
            Value::Int64(2)
        );
        assert_eq!(ScalarFunc::Day.eval(&[d]).unwrap(), Value::Int64(29));
    }

    #[test]
    fn date_parts_pre_epoch_and_negative_years_do_not_panic() {
        // 1969-12-31, the day before the epoch.
        let d = Value::Date(-1);
        assert_eq!(
            ScalarFunc::Year.eval(std::slice::from_ref(&d)).unwrap(),
            Value::Int64(1969)
        );
        assert_eq!(ScalarFunc::Day.eval(&[d]).unwrap(), Value::Int64(31));

        // Year -1 (formatted "-0001-03-01"): the old split('-')
        // reimplementation panicked on the leading '-'.
        let neg = Value::Date(-719_468 - 366);
        assert_eq!(
            ScalarFunc::Year.eval(std::slice::from_ref(&neg)).unwrap(),
            Value::Int64(-1)
        );
        assert_eq!(
            ScalarFunc::Month.eval(std::slice::from_ref(&neg)).unwrap(),
            Value::Int64(3)
        );
        assert_eq!(ScalarFunc::Day.eval(&[neg]).unwrap(), Value::Int64(1));

        // Negative-year timestamps take the same path.
        let ts = Value::Timestamp((-719_834i64) * 86_400_000_000);
        assert_eq!(ScalarFunc::Year.eval(&[ts]).unwrap(), Value::Int64(-1));
    }

    #[test]
    fn concat_skips_nulls() {
        assert_eq!(ScalarFunc::resolve("concat"), Some(ScalarFunc::Concat));
        assert_eq!(
            ScalarFunc::Concat
                .eval(&[Value::Utf8("a".into()), Value::Null, Value::Int64(7),])
                .unwrap(),
            Value::Utf8("a7".into())
        );
        assert_eq!(
            ScalarFunc::Concat
                .eval(&[Value::Null, Value::Null])
                .unwrap(),
            Value::Utf8("".into())
        );
    }

    #[test]
    fn concat_ws_joins_with_separator() {
        assert_eq!(ScalarFunc::resolve("concat_ws"), Some(ScalarFunc::ConcatWs));
        assert_eq!(
            ScalarFunc::ConcatWs
                .eval(&[
                    Value::Utf8(",".into()),
                    Value::Utf8("a".into()),
                    Value::Null,
                    Value::Int64(7),
                ])
                .unwrap(),
            Value::Utf8("a,7".into())
        );
        // NULL separator yields NULL even with non-NULL values.
        assert_eq!(
            ScalarFunc::ConcatWs
                .eval(&[Value::Null, Value::Utf8("a".into())])
                .unwrap(),
            Value::Null
        );
        // Arity: a lone separator is rejected at bind time.
        assert!(ScalarFunc::ConcatWs.return_type(&[DataType::Utf8]).is_err());
        assert_eq!(
            ScalarFunc::ConcatWs
                .return_type(&[DataType::Utf8, DataType::Int64])
                .unwrap(),
            DataType::Utf8
        );
    }

    #[test]
    fn nullif_rejects_incomparable_types_at_bind_time() {
        assert!(ScalarFunc::NullIf
            .return_type(&[DataType::Int64, DataType::Utf8])
            .is_err());
        assert!(ScalarFunc::NullIf
            .return_type(&[DataType::Date, DataType::Boolean])
            .is_err());
        assert_eq!(
            ScalarFunc::NullIf
                .return_type(&[DataType::Int32, DataType::Int64])
                .unwrap(),
            DataType::Int32
        );
        assert_eq!(
            ScalarFunc::NullIf
                .return_type(&[DataType::Utf8, DataType::Null])
                .unwrap(),
            DataType::Utf8
        );
    }

    #[test]
    fn return_types_and_arity() {
        assert_eq!(
            ScalarFunc::Coalesce
                .return_type(&[DataType::Null, DataType::Int64])
                .unwrap(),
            DataType::Int64
        );
        assert!(ScalarFunc::Coalesce
            .return_type(&[DataType::Int64, DataType::Utf8])
            .is_err());
        assert!(ScalarFunc::Abs.return_type(&[]).is_err());
        assert!(ScalarFunc::Substr.return_type(&[DataType::Utf8]).is_err());
    }
}
