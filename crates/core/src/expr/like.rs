//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches
//! exactly one character, `\` escapes the next character. Matching is
//! over Unicode scalar values, implemented with the classic
//! two-pointer backtracking algorithm (linear in practice, no regex
//! dependency).

/// Returns whether `text` matches the SQL LIKE `pattern`.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p = parse_pattern(pattern);
    matches(&t, &p)
}

/// One pattern token after escape processing. A dedicated enum rather
/// than in-band sentinel characters: an earlier encoding reused
/// `'\u{0}'`/`'\u{1}'` for the wildcards, so raw NUL/SOH characters in
/// a pattern silently *became* wildcards. With the enum, every literal
/// code point — including NUL — matches only itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    /// Matches exactly this character.
    Lit(char),
    /// `%` — any run of characters, including the empty run.
    AnyRun,
    /// `_` — exactly one character.
    AnyOne,
}

fn parse_pattern(pattern: &str) -> Vec<Tok> {
    let mut out = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                // Escaped char is a literal; a trailing backslash is
                // itself a literal backslash.
                out.push(Tok::Lit(chars.next().unwrap_or('\\')));
            }
            '%' => out.push(Tok::AnyRun),
            '_' => out.push(Tok::AnyOne),
            other => out.push(Tok::Lit(other)),
        }
    }
    out
}

fn matches(t: &[char], p: &[Tok]) -> bool {
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        let tok = p.get(pi);
        if matches!(tok, Some(Tok::AnyOne)) || tok == Some(&Tok::Lit(t[ti])) {
            ti += 1;
            pi += 1;
        } else if matches!(tok, Some(Tok::AnyRun)) {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more char.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while matches!(p.get(pi), Some(Tok::AnyRun)) {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn exact_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "hell"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("abcbcd", "a%bcd"));
        assert!(like_match("aaa", "%a%a%"));
        assert!(!like_match("ab", "%a%a%"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%iss%ppx"));
    }

    #[test]
    fn escapes() {
        assert!(like_match("50%", "50\\%"));
        assert!(!like_match("50x", "50\\%"));
        assert!(like_match("a_b", "a\\_b"));
        assert!(!like_match("axb", "a\\_b"));
        assert!(like_match("back\\slash", "back\\\\slash"));
        // trailing backslash is a literal backslash
        assert!(like_match("a\\", "a\\"));
    }

    #[test]
    fn unicode() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語", "日%"));
        assert!(like_match("日本語", "__語"));
    }

    #[test]
    fn case_sensitive() {
        assert!(!like_match("Hello", "hello"));
    }

    #[test]
    fn nul_and_control_chars_are_literals() {
        // The old char-sentinel encoding turned a raw NUL in the
        // pattern into `%` and a raw SOH into `_`.
        assert!(!like_match("ab", "a\u{0}"));
        assert!(like_match("a\u{0}", "a\u{0}"));
        assert!(!like_match("ax", "a\u{1}"));
        assert!(like_match("a\u{1}", "a\u{1}"));
        assert!(!like_match("a", "a\u{0}"));
        // Real wildcards still cross NUL-containing data.
        assert!(like_match("a\u{0}b", "a%b"));
        assert!(like_match("a\u{0}", "a_"));
        assert!(like_match("\u{0}\u{1}", "__"));
    }
}
