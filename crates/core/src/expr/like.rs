//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches
//! exactly one character, `\` escapes the next character. Matching is
//! over Unicode scalar values, implemented with the classic
//! two-pointer backtracking algorithm (linear in practice, no regex
//! dependency).

/// Returns whether `text` matches the SQL LIKE `pattern`.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = parse_pattern(pattern);
    matches(&t, &p)
}

/// Pattern tokens after escape processing: we encode literals as the
/// char itself, `%` as '\u{0}' and `_` as '\u{1}' (neither can appear
/// as a raw literal because escapes substitute them earlier).
const ANY_RUN: char = '\u{0}';
const ANY_ONE: char = '\u{1}';

fn parse_pattern(pattern: &str) -> Vec<char> {
    let mut out = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                // Escaped char is a literal; a trailing backslash is
                // itself a literal backslash.
                out.push(chars.next().unwrap_or('\\'));
            }
            '%' => out.push(ANY_RUN),
            '_' => out.push(ANY_ONE),
            other => out.push(other),
        }
    }
    out
}

fn matches(t: &[char], p: &[char]) -> bool {
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == ANY_ONE || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == ANY_RUN {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more char.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == ANY_RUN {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn exact_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "hell"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("abcbcd", "a%bcd"));
        assert!(like_match("aaa", "%a%a%"));
        assert!(!like_match("ab", "%a%a%"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%iss%ppx"));
    }

    #[test]
    fn escapes() {
        assert!(like_match("50%", "50\\%"));
        assert!(!like_match("50x", "50\\%"));
        assert!(like_match("a_b", "a\\_b"));
        assert!(!like_match("axb", "a\\_b"));
        assert!(like_match("back\\slash", "back\\\\slash"));
        // trailing backslash is a literal backslash
        assert!(like_match("a\\", "a\\"));
    }

    #[test]
    fn unicode() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語", "日%"));
        assert!(like_match("日本語", "__語"));
    }

    #[test]
    fn case_sensitive() {
        assert!(!like_match("Hello", "hello"));
    }
}
