//! Resolved scalar expressions.
//!
//! After binding, every column reference is an **ordinal** into the
//! input schema of the plan node that owns the expression — name
//! resolution happens exactly once, in the binder. This keeps the
//! optimizer's expression rewrites (pushdown remapping, folding) free
//! of name-scoping bugs.

pub mod eval;
pub mod functions;
pub mod like;
pub mod simplify;

use gis_sql::ast::{BinaryOp, UnaryOp};
use gis_types::{DataType, GisError, Result, Schema, Value};
use std::fmt;

pub use functions::ScalarFunc;

/// A resolved scalar expression over a known input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Input column by ordinal.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
    /// Scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
    /// Explicit cast.
    Cast {
        /// Input.
        expr: Box<ScalarExpr>,
        /// Target type.
        to: DataType,
    },
    /// Searched CASE (`CASE x WHEN ...` is desugared by the binder).
    Case {
        /// (condition, result) pairs.
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        /// ELSE result (NULL when absent).
        else_expr: Option<Box<ScalarExpr>>,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Members.
        list: Vec<ScalarExpr>,
        /// Negated.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Pattern.
        pattern: Box<ScalarExpr>,
        /// Negated.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl ScalarExpr {
    /// Convenience constructors.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Column(i)
    }

    /// A literal.
    pub fn lit(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    /// `self op other`.
    pub fn binary(self, op: BinaryOp, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::And, other)
    }

    /// `self = other`.
    pub fn eq(self, other: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Eq, other)
    }

    /// The output type over `input`.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        Ok(match self {
            ScalarExpr::Column(i) => {
                if *i >= input.len() {
                    return Err(GisError::Internal(format!(
                        "column ordinal {i} out of range for schema [{input}]"
                    )));
                }
                input.field(*i).data_type
            }
            ScalarExpr::Literal(v) => v.data_type(),
            ScalarExpr::Binary { left, op, right } => {
                let lt = left.data_type(input)?;
                let rt = right.data_type(input)?;
                binary_result_type(lt, *op, rt)?
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Boolean,
                UnaryOp::Neg | UnaryOp::Pos => expr.data_type(input)?,
            },
            ScalarExpr::Func { func, args } => {
                let arg_types: Vec<DataType> = args
                    .iter()
                    .map(|a| a.data_type(input))
                    .collect::<Result<_>>()?;
                func.return_type(&arg_types)?
            }
            ScalarExpr::Cast { to, .. } => *to,
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                let mut ty = DataType::Null;
                for (_, result) in branches {
                    let rt = result.data_type(input)?;
                    ty = ty.common_supertype(rt).ok_or_else(|| {
                        GisError::Analysis(format!(
                            "CASE branches have incompatible types {ty} and {rt}"
                        ))
                    })?;
                }
                if let Some(e) = else_expr {
                    let et = e.data_type(input)?;
                    ty = ty.common_supertype(et).ok_or_else(|| {
                        GisError::Analysis(format!(
                            "CASE ELSE type {et} incompatible with branches ({ty})"
                        ))
                    })?;
                }
                ty
            }
            ScalarExpr::InList { .. } | ScalarExpr::Like { .. } | ScalarExpr::IsNull { .. } => {
                DataType::Boolean
            }
        })
    }

    /// Whether the expression can produce NULL over `input`.
    pub fn nullable(&self, input: &Schema) -> bool {
        match self {
            ScalarExpr::Column(i) => input.field(*i).nullable,
            ScalarExpr::Literal(v) => v.is_null(),
            ScalarExpr::IsNull { .. } => false,
            ScalarExpr::Binary { left, right, .. } => left.nullable(input) || right.nullable(input),
            ScalarExpr::Unary { expr, .. } => expr.nullable(input),
            ScalarExpr::Cast { expr, .. } => expr.nullable(input),
            // Conservative for the rest.
            _ => true,
        }
    }

    /// Pre-order walk.
    pub fn walk(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            ScalarExpr::Unary { expr, .. }
            | ScalarExpr::Cast { expr, .. }
            | ScalarExpr::IsNull { expr, .. } => expr.walk(f),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
        }
    }

    /// Rewrites every node bottom-up with `f`.
    pub fn transform(self, f: &impl Fn(ScalarExpr) -> ScalarExpr) -> ScalarExpr {
        let rebuilt = match self {
            ScalarExpr::Binary { left, op, right } => ScalarExpr::Binary {
                left: Box::new(left.transform(f)),
                op,
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op,
                expr: Box::new(expr.transform(f)),
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func,
                args: args.into_iter().map(|a| a.transform(f)).collect(),
            },
            ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
                expr: Box::new(expr.transform(f)),
                to,
            },
            ScalarExpr::Case {
                branches,
                else_expr,
            } => ScalarExpr::Case {
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (w.transform(f), t.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.into_iter().map(|e| e.transform(f)).collect(),
                negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated,
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
            leaf @ (ScalarExpr::Column(_) | ScalarExpr::Literal(_)) => leaf,
        };
        f(rebuilt)
    }

    /// Ordinals of all referenced input columns (sorted, deduped).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Column(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Rewrites column ordinals through `map` (old ordinal → new);
    /// errors if a referenced ordinal is missing from the map.
    pub fn remap_columns(
        self,
        map: &std::collections::HashMap<usize, usize>,
    ) -> Result<ScalarExpr> {
        // Detect unmapped ordinals first (transform can't fail).
        for c in self.referenced_columns() {
            if !map.contains_key(&c) {
                return Err(GisError::Internal(format!(
                    "cannot remap expression: ordinal {c} not in target schema"
                )));
            }
        }
        Ok(self.transform(&|e| match e {
            ScalarExpr::Column(i) => ScalarExpr::Column(map[&i]),
            other => other,
        }))
    }

    /// True when no column references appear.
    pub fn is_constant(&self) -> bool {
        self.referenced_columns().is_empty()
    }

    /// Splits `a AND b AND c` into parts.
    pub fn split_conjunction(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            if let ScalarExpr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } = e
            {
                go(left, out);
                go(right, out);
            } else {
                out.push(e);
            }
        }
        go(self, &mut out);
        out
    }

    /// AND-joins expressions; `None` when empty.
    pub fn conjunction(parts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
        parts.into_iter().reduce(|a, b| a.and(b))
    }
}

/// Result type of a binary operation, enforcing the coercion lattice.
pub fn binary_result_type(lt: DataType, op: BinaryOp, rt: DataType) -> Result<DataType> {
    use BinaryOp::*;
    match op {
        And | Or => {
            for t in [lt, rt] {
                if t != DataType::Boolean && t != DataType::Null {
                    return Err(GisError::Analysis(format!(
                        "logical operator {op} requires booleans, got {t}"
                    )));
                }
            }
            Ok(DataType::Boolean)
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            lt.common_supertype(rt)
                .ok_or_else(|| GisError::Analysis(format!("cannot compare {lt} {op} {rt}")))?;
            Ok(DataType::Boolean)
        }
        Plus | Minus | Multiply | Divide | Modulo => {
            // Date arithmetic: date ± integer = date.
            if lt == DataType::Date && rt.is_integer() && matches!(op, Plus | Minus) {
                return Ok(DataType::Date);
            }
            let common = lt
                .common_supertype(rt)
                .ok_or_else(|| GisError::Analysis(format!("cannot apply {op} to {lt} and {rt}")))?;
            if !common.is_numeric() && common != DataType::Null {
                return Err(GisError::Analysis(format!(
                    "arithmetic {op} requires numerics, got {common}"
                )));
            }
            // Division always yields float (SQL-ish pragmatism).
            if matches!(op, Divide) {
                Ok(DataType::Float64)
            } else {
                Ok(common)
            }
        }
        Concat => Ok(DataType::Utf8),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "#{i}"),
            ScalarExpr::Literal(v) => match v {
                Value::Utf8(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Binary { left, op, right } => {
                write!(f, "({left} {op} {right})")
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT {expr}"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Pos => write!(f, "(+{expr})"),
            },
            ScalarExpr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use gis_types::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("flag", DataType::Boolean),
            Field::new("d", DataType::Date),
        ])
    }

    #[test]
    fn type_inference() {
        let s = schema();
        let e = ScalarExpr::col(0).binary(BinaryOp::Plus, ScalarExpr::col(1));
        assert_eq!(e.data_type(&s).unwrap(), DataType::Float64);
        let cmp = ScalarExpr::col(0).binary(BinaryOp::Lt, ScalarExpr::lit(Value::Int64(3)));
        assert_eq!(cmp.data_type(&s).unwrap(), DataType::Boolean);
        let div = ScalarExpr::col(0).binary(BinaryOp::Divide, ScalarExpr::lit(Value::Int64(2)));
        assert_eq!(div.data_type(&s).unwrap(), DataType::Float64);
        let date_add = ScalarExpr::col(4).binary(BinaryOp::Plus, ScalarExpr::lit(Value::Int64(7)));
        assert_eq!(date_add.data_type(&s).unwrap(), DataType::Date);
    }

    #[test]
    fn type_errors() {
        let s = schema();
        // int + string
        let bad = ScalarExpr::col(0).binary(BinaryOp::Plus, ScalarExpr::col(2));
        assert!(bad.data_type(&s).is_err());
        // AND over ints
        let bad2 = ScalarExpr::col(0).and(ScalarExpr::col(0));
        assert!(bad2.data_type(&s).is_err());
        // comparing string to int
        let bad3 = ScalarExpr::col(2).eq(ScalarExpr::col(0));
        assert!(bad3.data_type(&s).is_err());
        // out-of-range ordinal
        assert!(ScalarExpr::col(9).data_type(&s).is_err());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = ScalarExpr::col(3).and(ScalarExpr::col(1).eq(ScalarExpr::col(3)));
        assert_eq!(e.referenced_columns(), vec![1, 3]);
        let map = [(1usize, 0usize), (3, 1)].into_iter().collect();
        let remapped = e.clone().remap_columns(&map).unwrap();
        assert_eq!(remapped.referenced_columns(), vec![0, 1]);
        let bad_map = [(1usize, 0usize)].into_iter().collect();
        assert!(e.remap_columns(&bad_map).is_err());
    }

    #[test]
    fn transform_reaches_every_node_kind() {
        // Regression: IsNull children were once skipped by transform,
        // silently surviving ordinal remaps.
        let bump = |e: ScalarExpr| match e {
            ScalarExpr::Column(i) => ScalarExpr::Column(i + 10),
            other => other,
        };
        let exprs = vec![
            ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::col(1)),
                negated: false,
            },
            ScalarExpr::Like {
                expr: Box::new(ScalarExpr::col(1)),
                pattern: Box::new(ScalarExpr::col(2)),
                negated: true,
            },
            ScalarExpr::InList {
                expr: Box::new(ScalarExpr::col(1)),
                list: vec![ScalarExpr::col(2)],
                negated: false,
            },
            ScalarExpr::Case {
                branches: vec![(ScalarExpr::col(1), ScalarExpr::col(2))],
                else_expr: Some(Box::new(ScalarExpr::col(3))),
            },
            ScalarExpr::Cast {
                expr: Box::new(ScalarExpr::col(1)),
                to: DataType::Int64,
            },
            ScalarExpr::Func {
                func: crate::expr::functions::ScalarFunc::Abs,
                args: vec![ScalarExpr::col(1)],
            },
            ScalarExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(ScalarExpr::col(1)),
            },
        ];
        for e in exprs {
            let before = e.referenced_columns();
            let after = e.clone().transform(&bump).referenced_columns();
            assert_eq!(
                after,
                before.iter().map(|c| c + 10).collect::<Vec<_>>(),
                "transform missed children of {e}"
            );
        }
    }

    #[test]
    fn conjunction_roundtrip() {
        let e = ScalarExpr::col(0)
            .eq(ScalarExpr::lit(Value::Int64(1)))
            .and(ScalarExpr::col(1).eq(ScalarExpr::lit(Value::Int64(2))));
        assert_eq!(e.split_conjunction().len(), 2);
        assert!(ScalarExpr::conjunction(vec![]).is_none());
    }

    #[test]
    fn display_is_readable() {
        let e = ScalarExpr::col(0).binary(BinaryOp::Plus, ScalarExpr::lit(Value::Int64(1)));
        assert_eq!(e.to_string(), "(#0 + 1)");
    }

    #[test]
    fn case_type_unification() {
        let s = schema();
        let c = ScalarExpr::Case {
            branches: vec![(ScalarExpr::col(3), ScalarExpr::lit(Value::Int32(1)))],
            else_expr: Some(Box::new(ScalarExpr::lit(Value::Float64(0.5)))),
        };
        assert_eq!(c.data_type(&s).unwrap(), DataType::Float64);
        let bad = ScalarExpr::Case {
            branches: vec![
                (ScalarExpr::col(3), ScalarExpr::lit(Value::Int32(1))),
                (ScalarExpr::col(3), ScalarExpr::lit(Value::Utf8("x".into()))),
            ],
            else_expr: None,
        };
        assert!(bad.data_type(&s).is_err());
    }
}
