//! Vectorized expression evaluation over batches.
//!
//! Comparisons and arithmetic over numeric columns run as typed
//! column kernels; everything else falls back to row-at-a-time value
//! evaluation. Three-valued logic is observed throughout: a NULL
//! predicate result filters a row out (it is not an error).

use crate::expr::like::like_match;
use crate::expr::ScalarExpr;
use gis_sql::ast::{BinaryOp, UnaryOp};
use gis_types::{Array, ArrayBuilder, Batch, DataType, GisError, Result, Value};

/// Evaluates `expr` over every row of `batch`, producing a column.
pub fn evaluate(expr: &ScalarExpr, batch: &Batch) -> Result<Array> {
    let out_type = expr.data_type(batch.schema())?;
    match expr {
        ScalarExpr::Column(i) => Ok(batch.column(*i).clone()),
        ScalarExpr::Literal(v) => {
            let dt = if v.is_null() {
                DataType::Int32
            } else {
                out_type
            };
            Array::from_scalar(v, batch.num_rows(), dt)
        }
        ScalarExpr::Binary { left, op, right } => {
            let l = evaluate(left, batch)?;
            let r = evaluate(right, batch)?;
            eval_binary(&l, *op, &r, out_type)
        }
        ScalarExpr::Unary { op, expr } => {
            let input = evaluate(expr, batch)?;
            eval_unary(*op, &input)
        }
        ScalarExpr::Cast { expr, to } => {
            let input = evaluate(expr, batch)?;
            input.cast_to(*to)
        }
        ScalarExpr::Func { func, args } => {
            let arg_arrays: Vec<Array> = args
                .iter()
                .map(|a| evaluate(a, batch))
                .collect::<Result<_>>()?;
            let mut b = ArrayBuilder::with_capacity(out_type, batch.num_rows());
            let mut row: Vec<Value> = Vec::with_capacity(arg_arrays.len());
            for i in 0..batch.num_rows() {
                row.clear();
                row.extend(arg_arrays.iter().map(|a| a.value_at(i)));
                let v = func.eval(&row)?;
                b.push_value(&v.cast_to(out_type)?)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::Case {
            branches,
            else_expr,
        } => {
            let mut b = ArrayBuilder::with_capacity(out_type, batch.num_rows());
            let conds: Vec<Array> = branches
                .iter()
                .map(|(w, _)| evaluate(w, batch))
                .collect::<Result<_>>()?;
            let results: Vec<Array> = branches
                .iter()
                .map(|(_, t)| evaluate(t, batch))
                .collect::<Result<_>>()?;
            let else_arr = else_expr.as_ref().map(|e| evaluate(e, batch)).transpose()?;
            for i in 0..batch.num_rows() {
                let mut out = Value::Null;
                let mut matched = false;
                for (c, r) in conds.iter().zip(&results) {
                    if c.value_at(i).as_bool()?.unwrap_or(false) {
                        out = r.value_at(i);
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if let Some(e) = &else_arr {
                        out = e.value_at(i);
                    }
                }
                b.push_value(&out.cast_to(out_type)?)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = evaluate(expr, batch)?;
            let members: Vec<Array> = list
                .iter()
                .map(|e| evaluate(e, batch))
                .collect::<Result<_>>()?;
            let mut b = ArrayBuilder::with_capacity(DataType::Boolean, batch.num_rows());
            for i in 0..batch.num_rows() {
                let v = needle.value_at(i);
                if v.is_null() {
                    b.push_null();
                    continue;
                }
                let mut found = false;
                let mut saw_null = false;
                for m in &members {
                    let mv = m.value_at(i);
                    match v.sql_eq(&mv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                // SQL three-valued IN: unknown when not found but a
                // NULL member was present.
                if found {
                    b.push_bool(!negated)?;
                } else if saw_null {
                    b.push_null();
                } else {
                    b.push_bool(*negated)?;
                }
            }
            Ok(b.finish())
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let s = evaluate(expr, batch)?;
            let p = evaluate(pattern, batch)?;
            let mut b = ArrayBuilder::with_capacity(DataType::Boolean, batch.num_rows());
            for i in 0..batch.num_rows() {
                match (s.value_at(i), p.value_at(i)) {
                    (Value::Null, _) | (_, Value::Null) => b.push_null(),
                    (Value::Utf8(text), Value::Utf8(pat)) => {
                        b.push_bool(like_match(&text, &pat) != *negated)?
                    }
                    (a, _) => {
                        return Err(GisError::Execution(format!(
                            "LIKE requires strings, got {}",
                            a.data_type()
                        )))
                    }
                }
            }
            Ok(b.finish())
        }
        ScalarExpr::IsNull { expr, negated } => {
            let input = evaluate(expr, batch)?;
            let mut b = ArrayBuilder::with_capacity(DataType::Boolean, batch.num_rows());
            for i in 0..batch.num_rows() {
                let is_null = !input.is_valid(i);
                b.push_bool(is_null != *negated)?;
            }
            Ok(b.finish())
        }
    }
}

/// Evaluates a predicate into a keep-mask: NULL → false.
pub fn evaluate_predicate(expr: &ScalarExpr, batch: &Batch) -> Result<Vec<bool>> {
    let arr = evaluate(expr, batch)?;
    if arr.data_type() != DataType::Boolean {
        return Err(GisError::Execution(format!(
            "predicate evaluated to {}, expected boolean",
            arr.data_type()
        )));
    }
    Ok((0..arr.len())
        .map(|i| arr.value_at(i).as_bool().ok().flatten().unwrap_or(false))
        .collect())
}

/// Evaluates a constant expression without any input rows.
pub fn evaluate_constant(expr: &ScalarExpr) -> Result<Value> {
    let batch = Batch::placeholder(1);
    let arr = evaluate(expr, &batch)?;
    Ok(arr.value_at(0))
}

fn eval_unary(op: UnaryOp, input: &Array) -> Result<Array> {
    match op {
        UnaryOp::Pos => Ok(input.clone()),
        UnaryOp::Not => {
            let mut b = ArrayBuilder::with_capacity(DataType::Boolean, input.len());
            for i in 0..input.len() {
                match input.value_at(i).as_bool()? {
                    Some(v) => b.push_bool(!v)?,
                    None => b.push_null(),
                }
            }
            Ok(b.finish())
        }
        UnaryOp::Neg => match input {
            Array::Int32(v, m) => Ok(Array::Int32(
                v.iter().map(|x| x.wrapping_neg()).collect(),
                m.clone(),
            )),
            Array::Int64(v, m) => Ok(Array::Int64(
                v.iter().map(|x| x.wrapping_neg()).collect(),
                m.clone(),
            )),
            Array::Float64(v, m) => Ok(Array::Float64(v.iter().map(|x| -x).collect(), m.clone())),
            other => Err(GisError::Execution(format!(
                "cannot negate {}",
                other.data_type()
            ))),
        },
    }
}

fn eval_binary(l: &Array, op: BinaryOp, r: &Array, out_type: DataType) -> Result<Array> {
    use BinaryOp::*;
    match op {
        And | Or => eval_logical(l, op, r),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => eval_comparison(l, op, r),
        Plus | Minus | Multiply | Divide | Modulo => eval_arithmetic(l, op, r, out_type),
        Concat => {
            let mut b = ArrayBuilder::with_capacity(DataType::Utf8, l.len());
            for i in 0..l.len() {
                let (a, c) = (l.value_at(i), r.value_at(i));
                if a.is_null() || c.is_null() {
                    b.push_null();
                } else {
                    b.push_value(&Value::Utf8(format!("{a}{c}")))?;
                }
            }
            Ok(b.finish())
        }
    }
}

/// Kleene AND/OR.
fn eval_logical(l: &Array, op: BinaryOp, r: &Array) -> Result<Array> {
    let mut b = ArrayBuilder::with_capacity(DataType::Boolean, l.len());
    for i in 0..l.len() {
        let lv = l.value_at(i).as_bool()?;
        let rv = r.value_at(i).as_bool()?;
        let out = match op {
            BinaryOp::And => match (lv, rv) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (lv, rv) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        match out {
            Some(v) => b.push_bool(v)?,
            None => b.push_null(),
        }
    }
    Ok(b.finish())
}

fn eval_comparison(l: &Array, op: BinaryOp, r: &Array) -> Result<Array> {
    // Typed fast path for int64/int64 — the hot case for keys.
    if let (Array::Int64(lv, lm), Array::Int64(rv, rm)) = (l, r) {
        let mut b = ArrayBuilder::with_capacity(DataType::Boolean, lv.len());
        for i in 0..lv.len() {
            if !lm.get(i) || !rm.get(i) {
                b.push_null();
            } else {
                b.push_bool(cmp_outcome(lv[i].cmp(&rv[i]), op))?;
            }
        }
        return Ok(b.finish());
    }
    let mut b = ArrayBuilder::with_capacity(DataType::Boolean, l.len());
    for i in 0..l.len() {
        let (a, c) = (l.value_at(i), r.value_at(i));
        if a.is_null() || c.is_null() {
            b.push_null();
        } else {
            b.push_bool(cmp_outcome(a.total_cmp(&c), op))?;
        }
    }
    Ok(b.finish())
}

fn cmp_outcome(ord: std::cmp::Ordering, op: BinaryOp) -> bool {
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("not a comparison"),
    }
}

fn eval_arithmetic(l: &Array, op: BinaryOp, r: &Array, out_type: DataType) -> Result<Array> {
    // Date ± integer.
    if out_type == DataType::Date {
        let mut b = ArrayBuilder::with_capacity(DataType::Date, l.len());
        for i in 0..l.len() {
            match (l.value_at(i), r.value_at(i)) {
                (Value::Null, _) | (_, Value::Null) => b.push_null(),
                (Value::Date(d), delta) => {
                    let k = delta.as_i64()?.unwrap_or(0);
                    let shifted = if op == BinaryOp::Plus {
                        d as i64 + k
                    } else {
                        d as i64 - k
                    };
                    b.push_value(&Value::Date(shifted as i32))?;
                }
                (a, _) => {
                    return Err(GisError::Execution(format!(
                        "date arithmetic on {}",
                        a.data_type()
                    )))
                }
            }
        }
        return Ok(b.finish());
    }
    // Integer-preserving fast path.
    if out_type == DataType::Int64 {
        let mut b = ArrayBuilder::with_capacity(DataType::Int64, l.len());
        for i in 0..l.len() {
            let lv = l.as_i64_lossy(i);
            let rv = r.as_i64_lossy(i);
            match (lv, rv) {
                (Some(a), Some(c)) => {
                    let out = match op {
                        BinaryOp::Plus => a.checked_add(c),
                        BinaryOp::Minus => a.checked_sub(c),
                        BinaryOp::Multiply => a.checked_mul(c),
                        BinaryOp::Modulo => {
                            if c == 0 {
                                return Err(GisError::Execution("integer modulo by zero".into()));
                            }
                            a.checked_rem(c)
                        }
                        _ => unreachable!(),
                    }
                    .ok_or_else(|| {
                        GisError::Execution(format!("integer overflow evaluating {a} {op} {c}"))
                    })?;
                    b.push_value(&Value::Int64(out))?;
                }
                _ => b.push_null(),
            }
        }
        return Ok(b.finish());
    }
    // Float path (covers Divide and mixed numeric).
    let mut b = ArrayBuilder::with_capacity(out_type, l.len());
    for i in 0..l.len() {
        let (a, c) = (l.value_at(i), r.value_at(i));
        if a.is_null() || c.is_null() {
            b.push_null();
            continue;
        }
        // Vetted: both sides were null-checked two lines up, so
        // `as_f64` can only return `Some` here (or error on type).
        #[allow(clippy::unwrap_used)]
        let (x, y) = (a.as_f64()?.unwrap(), c.as_f64()?.unwrap());
        let out = match op {
            BinaryOp::Plus => x + y,
            BinaryOp::Minus => x - y,
            BinaryOp::Multiply => x * y,
            BinaryOp::Divide => {
                if y == 0.0 {
                    // SQL engines typically error; we yield NULL to
                    // keep scans robust and document it.
                    b.push_null();
                    continue;
                }
                x / y
            }
            BinaryOp::Modulo => {
                if y == 0.0 {
                    b.push_null();
                    continue;
                }
                x % y
            }
            _ => unreachable!(),
        };
        b.push_value(&Value::Float64(out).cast_to(out_type)?)?;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use gis_types::{Field, Schema};

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
                Field::new("s", DataType::Utf8),
                Field::new("d", DataType::Date),
            ])
            .into_ref(),
            &[
                vec![
                    Value::Int64(1),
                    Value::Float64(0.5),
                    Value::Utf8("apple".into()),
                    Value::Date(10),
                ],
                vec![
                    Value::Int64(2),
                    Value::Null,
                    Value::Utf8("banana".into()),
                    Value::Date(20),
                ],
                vec![Value::Null, Value::Float64(2.5), Value::Null, Value::Null],
            ],
        )
        .unwrap()
    }

    fn vals(a: Array) -> Vec<Value> {
        a.iter_values().collect()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        assert_eq!(
            vals(evaluate(&ScalarExpr::col(0), &b).unwrap()),
            vec![Value::Int64(1), Value::Int64(2), Value::Null]
        );
        let lit = evaluate(&ScalarExpr::lit(Value::Int64(7)), &b).unwrap();
        assert_eq!(lit.len(), 3);
        assert!(vals(lit).iter().all(|v| *v == Value::Int64(7)));
    }

    #[test]
    fn arithmetic_with_nulls() {
        let b = batch();
        let e = ScalarExpr::col(0).binary(BinaryOp::Plus, ScalarExpr::lit(Value::Int64(10)));
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Int64(11), Value::Int64(12), Value::Null]
        );
        let f = ScalarExpr::col(0).binary(BinaryOp::Multiply, ScalarExpr::col(1));
        assert_eq!(
            vals(evaluate(&f, &b).unwrap()),
            vec![Value::Float64(0.5), Value::Null, Value::Null]
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let b = batch();
        let e = ScalarExpr::col(0).binary(BinaryOp::Divide, ScalarExpr::lit(Value::Int64(0)));
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Null, Value::Null, Value::Null]
        );
    }

    #[test]
    fn integer_overflow_errors() {
        let b = batch();
        let e = ScalarExpr::lit(Value::Int64(i64::MAX)).binary(BinaryOp::Plus, ScalarExpr::col(0));
        assert!(evaluate(&e, &b).is_err());
        let m = ScalarExpr::col(0).binary(BinaryOp::Modulo, ScalarExpr::lit(Value::Int64(0)));
        assert!(evaluate(&m, &b).is_err());
    }

    #[test]
    fn comparisons_three_valued() {
        let b = batch();
        let e = ScalarExpr::col(0).binary(BinaryOp::GtEq, ScalarExpr::lit(Value::Int64(2)));
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Boolean(false), Value::Boolean(true), Value::Null]
        );
        assert_eq!(
            evaluate_predicate(&e, &b).unwrap(),
            vec![false, true, false]
        );
    }

    #[test]
    fn kleene_logic() {
        let b = batch();
        // (a >= 2) AND (b < 1): row2 has b NULL but a>=2 true -> NULL
        let left = ScalarExpr::col(0).binary(BinaryOp::GtEq, ScalarExpr::lit(Value::Int64(2)));
        let right = ScalarExpr::col(1).binary(BinaryOp::Lt, ScalarExpr::lit(Value::Float64(1.0)));
        let e = left.clone().and(right.clone());
        // row3: a is NULL (so a>=2 is NULL) but b<1 is false -> false
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Boolean(false), Value::Null, Value::Boolean(false)]
        );
        // OR: false|true = true; true|NULL = true; NULL|false = NULL
        let o = left.binary(BinaryOp::Or, right);
        assert_eq!(
            vals(evaluate(&o, &b).unwrap()),
            vec![Value::Boolean(true), Value::Boolean(true), Value::Null]
        );
    }

    #[test]
    fn like_and_isnull() {
        let b = batch();
        let like = ScalarExpr::Like {
            expr: Box::new(ScalarExpr::col(2)),
            pattern: Box::new(ScalarExpr::lit(Value::Utf8("%an%".into()))),
            negated: false,
        };
        assert_eq!(
            vals(evaluate(&like, &b).unwrap()),
            vec![Value::Boolean(false), Value::Boolean(true), Value::Null]
        );
        let isnull = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::col(2)),
            negated: false,
        };
        assert_eq!(
            vals(evaluate(&isnull, &b).unwrap()),
            vec![
                Value::Boolean(false),
                Value::Boolean(false),
                Value::Boolean(true)
            ]
        );
    }

    #[test]
    fn in_list_three_valued() {
        let b = batch();
        let e = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: vec![
                ScalarExpr::lit(Value::Int64(1)),
                ScalarExpr::lit(Value::Null),
            ],
            negated: false,
        };
        // 1 IN (1, NULL) = true; 2 IN (1, NULL) = NULL; NULL IN ... = NULL
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Boolean(true), Value::Null, Value::Null]
        );
        let no_null = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: vec![ScalarExpr::lit(Value::Int64(1))],
            negated: true,
        };
        assert_eq!(
            vals(evaluate(&no_null, &b).unwrap()),
            vec![Value::Boolean(false), Value::Boolean(true), Value::Null]
        );
    }

    #[test]
    fn case_evaluation() {
        let b = batch();
        let e = ScalarExpr::Case {
            branches: vec![(
                ScalarExpr::col(0).binary(BinaryOp::Eq, ScalarExpr::lit(Value::Int64(1))),
                ScalarExpr::lit(Value::Utf8("one".into())),
            )],
            else_expr: Some(Box::new(ScalarExpr::lit(Value::Utf8("other".into())))),
        };
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![
                Value::Utf8("one".into()),
                Value::Utf8("other".into()),
                Value::Utf8("other".into())
            ]
        );
    }

    #[test]
    fn date_arithmetic() {
        let b = batch();
        let e = ScalarExpr::col(3).binary(BinaryOp::Plus, ScalarExpr::lit(Value::Int64(5)));
        assert_eq!(
            vals(evaluate(&e, &b).unwrap()),
            vec![Value::Date(15), Value::Date(25), Value::Null]
        );
    }

    #[test]
    fn constant_evaluation() {
        let e = ScalarExpr::lit(Value::Int64(6))
            .binary(BinaryOp::Multiply, ScalarExpr::lit(Value::Int64(7)));
        assert_eq!(evaluate_constant(&e).unwrap(), Value::Int64(42));
    }
}
