//! Expression simplification: constant folding and boolean algebra.
//!
//! Runs as part of the optimizer but lives next to the expression
//! type because it is a pure expression→expression rewrite. Folding
//! matters doubly in a federation: a predicate reduced to `TRUE`
//! disappears before it is (pointlessly) shipped, and one reduced to
//! `FALSE` lets the whole fragment be answered locally with zero
//! messages.

use crate::expr::eval::evaluate_constant;
use crate::expr::ScalarExpr;
use gis_sql::ast::{BinaryOp, UnaryOp};
use gis_types::Value;

/// Simplifies an expression bottom-up. Idempotent.
pub fn simplify(expr: ScalarExpr) -> ScalarExpr {
    expr.transform(&simplify_node)
}

fn simplify_node(e: ScalarExpr) -> ScalarExpr {
    // Fold any constant subtree that evaluates cleanly. Evaluation
    // errors (overflow, bad cast) are left in place to surface at
    // runtime rather than plan time.
    if e.is_constant() && !matches!(e, ScalarExpr::Literal(_)) {
        if let Ok(v) = evaluate_constant(&e) {
            return ScalarExpr::Literal(v);
        }
    }
    match e {
        ScalarExpr::Binary { left, op, right } => simplify_binary(*left, op, *right),
        ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match *expr {
            // NOT(NOT x) => x
            ScalarExpr::Unary {
                op: UnaryOp::Not,
                expr: inner,
            } => *inner,
            ScalarExpr::Literal(Value::Boolean(b)) => ScalarExpr::Literal(Value::Boolean(!b)),
            other => ScalarExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(other),
            },
        },
        other => other,
    }
}

fn simplify_binary(left: ScalarExpr, op: BinaryOp, right: ScalarExpr) -> ScalarExpr {
    use BinaryOp::*;
    let t = |b| ScalarExpr::Literal(Value::Boolean(b));
    match op {
        And => match (&left, &right) {
            (ScalarExpr::Literal(Value::Boolean(false)), _)
            | (_, ScalarExpr::Literal(Value::Boolean(false))) => t(false),
            (ScalarExpr::Literal(Value::Boolean(true)), _) => right,
            (_, ScalarExpr::Literal(Value::Boolean(true))) => left,
            _ if left == right => left,
            _ => left.binary(And, right),
        },
        Or => match (&left, &right) {
            (ScalarExpr::Literal(Value::Boolean(true)), _)
            | (_, ScalarExpr::Literal(Value::Boolean(true))) => t(true),
            (ScalarExpr::Literal(Value::Boolean(false)), _) => right,
            (_, ScalarExpr::Literal(Value::Boolean(false))) => left,
            _ if left == right => left,
            _ => left.binary(Or, right),
        },
        Plus | Minus => match (&left, &right) {
            // x + 0, x - 0 => x (only when types already align:
            // keep it conservative by requiring an integer zero)
            (_, ScalarExpr::Literal(Value::Int64(0))) => left,
            (ScalarExpr::Literal(Value::Int64(0)), _) if op == Plus => right,
            _ => left.binary(op, right),
        },
        Multiply => match (&left, &right) {
            (_, ScalarExpr::Literal(Value::Int64(1))) => left,
            (ScalarExpr::Literal(Value::Int64(1)), _) => right,
            _ => left.binary(op, right),
        },
        _ => left.binary(op, right),
    }
}

/// True when the (simplified) predicate is the literal TRUE.
pub fn is_true(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Boolean(true)))
}

/// True when the (simplified) predicate is the literal FALSE.
pub fn is_false(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Boolean(false)))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn lit_i(v: i64) -> ScalarExpr {
        ScalarExpr::lit(Value::Int64(v))
    }

    #[test]
    fn folds_constant_arithmetic() {
        let e = lit_i(2).binary(BinaryOp::Multiply, lit_i(21));
        assert_eq!(simplify(e), lit_i(42));
        // nested: (1+2) < 10 => true
        let cmp = lit_i(1)
            .binary(BinaryOp::Plus, lit_i(2))
            .binary(BinaryOp::Lt, lit_i(10));
        assert!(is_true(&simplify(cmp)));
    }

    #[test]
    fn boolean_shortcuts() {
        let col = ScalarExpr::col(0);
        let e = ScalarExpr::lit(Value::Boolean(true)).and(col.clone());
        assert_eq!(simplify(e), col);
        let e2 = ScalarExpr::lit(Value::Boolean(false)).and(ScalarExpr::col(0));
        assert!(is_false(&simplify(e2)));
        let e3 = ScalarExpr::col(0).binary(BinaryOp::Or, ScalarExpr::lit(Value::Boolean(true)));
        assert!(is_true(&simplify(e3)));
        let dup = ScalarExpr::col(0).and(ScalarExpr::col(0));
        assert_eq!(simplify(dup), ScalarExpr::col(0));
    }

    #[test]
    fn double_negation() {
        let e = ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(ScalarExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(ScalarExpr::col(2)),
            }),
        };
        assert_eq!(simplify(e), ScalarExpr::col(2));
    }

    #[test]
    fn arithmetic_identities() {
        let e = ScalarExpr::col(0).binary(BinaryOp::Plus, lit_i(0));
        assert_eq!(simplify(e), ScalarExpr::col(0));
        let m = lit_i(1).binary(BinaryOp::Multiply, ScalarExpr::col(0));
        assert_eq!(simplify(m), ScalarExpr::col(0));
    }

    #[test]
    fn erroring_constants_left_for_runtime() {
        let e = lit_i(i64::MAX).binary(BinaryOp::Plus, lit_i(1));
        // must remain a binary op, not fold or panic
        assert!(matches!(simplify(e), ScalarExpr::Binary { .. }));
    }

    #[test]
    fn idempotent() {
        let e = ScalarExpr::col(0)
            .eq(lit_i(3))
            .and(ScalarExpr::lit(Value::Boolean(true)));
        let once = simplify(e);
        let twice = simplify(once.clone());
        assert_eq!(once, twice);
    }
}
