//! # gis-core — the GIS mediator
//!
//! The paper's primary contribution: one engine that presents the
//! catalog's global schema, decomposes SQL into per-source fragments
//! each component system can execute, and integrates the results —
//! minimizing what crosses the (simulated) wide-area network.
//!
//! Pipeline:
//!
//! ```text
//! SQL ──parse──▶ AST ──bind──▶ LogicalPlan ──optimize──▶ LogicalPlan
//!     ──physical──▶ PhysicalPlan (fragments + mediator operators)
//!     ──execute──▶ Batch + QueryMetrics
//! ```
//!
//! * [`expr`] — resolved, ordinal-based scalar expressions with a
//!   vectorized evaluator.
//! * [`plan`] — the logical algebra and the binder from SQL ASTs.
//! * [`optimizer`] — rewrite rules: constant folding, predicate
//!   pushdown, projection pruning, cost-based join ordering.
//! * [`cost`] — cardinality estimation over catalog statistics.
//! * [`exec`] — the physical operators, including the three
//!   distributed join strategies (ship-whole, semijoin reduction,
//!   bind-join) whose crossover the evaluation reproduces.
//! * [`federation`] — the façade a downstream user touches:
//!   register adapters, run SQL, read metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod exec;
// Expression evaluation runs row-at-a-time over untrusted remote data,
// so a stray `unwrap` is a mediator panic: lint it (tests and the few
// vetted null-checked sites carry explicit allows). CI runs clippy
// with `-D warnings`, which makes this a hard gate.
#[warn(clippy::unwrap_used)]
pub mod expr;
pub mod federation;
pub mod metrics;
pub mod optimizer;
pub mod plan;

pub use exec::options::{ExecOptions, JoinStrategy};
pub use federation::{Federation, QueryResult};
pub use gis_views::{RefreshPolicy, Staleness, ViewGauges};
pub use metrics::{DegradedReport, DegradedSource, QueryMetrics};
pub use optimizer::OptimizerOptions;
pub use plan::logical::LogicalPlan;
