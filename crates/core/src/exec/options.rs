//! Execution options: the distributed-strategy knobs the experiments
//! sweep.

/// How a mediator-side join against a remote table fetches the
/// remote side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Cost-based choice among the three below (default).
    #[default]
    Auto,
    /// Fetch the whole remote relation and hash-join at the mediator.
    ShipWhole,
    /// Ship the distinct join-key set in one message, fetch only
    /// matching rows (SDD-1-style semijoin reduction).
    SemiJoin,
    /// Ship keys in batches of `bind_batch_size`, fetching matches
    /// incrementally (R*-style bind join / fetch-matches).
    BindJoin,
}

impl JoinStrategy {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            JoinStrategy::Auto => "auto",
            JoinStrategy::ShipWhole => "ship-whole",
            JoinStrategy::SemiJoin => "semijoin",
            JoinStrategy::BindJoin => "bind-join",
        }
    }
}

/// Knobs for physical planning and execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Remote join strategy.
    pub join_strategy: JoinStrategy,
    /// Keys per message for [`JoinStrategy::BindJoin`].
    pub bind_batch_size: usize,
    /// Push whole-aggregate fragments to capable sources.
    pub aggregate_pushdown: bool,
    /// Push ORDER BY into capable sources when the sort sits directly
    /// over a scan.
    pub sort_pushdown: bool,
    /// Rows per response message (overrides the remote default when
    /// set).
    pub chunk_rows: usize,
    /// Push inner equi-joins of two tables on the *same* source down
    /// as one join fragment (the source joins; only results ship).
    pub colocated_join: bool,
    /// Fetch independent subplans (union branches, join sides) on
    /// separate threads. Does not change results; wall time and the
    /// *parallel* virtual-time metric improve, while the sequential
    /// virtual clock still accumulates total work.
    pub parallel_fetch: bool,
    /// Collect a per-operator span tree (rows, bytes, wall time)
    /// during execution. Remote sources report their own spans back
    /// over the wire — the extra frame is metered like any other
    /// message. Off by default: `EXPLAIN ANALYZE` and the slow-query
    /// log turn it on.
    pub tracing: bool,
    /// Graceful degradation: when a source (and every replica of it)
    /// is unreachable, substitute zero rows for its fragments and
    /// succeed with a [`crate::metrics::DegradedReport`] naming the
    /// missing sources, instead of failing the whole query. Off by
    /// default — partial answers are opt-in, flagged on
    /// [`crate::QueryResult::degraded`], and never cached.
    pub partial_results: bool,
    /// Input rows (build + probe combined for joins) at or above
    /// which the mediator's hash kernels (join / group-by / distinct)
    /// radix-partition by key hash and run one scoped thread per
    /// partition. Results are bit-identical to serial execution —
    /// only wall time changes. `usize::MAX` disables partitioning.
    pub parallel_kernel_rows: usize,
    /// Answer queries (or their fragments) from fresh materialized
    /// views when a registered view subsumes the plan. Disable to
    /// force shipping from sources (baselines, differential tests).
    pub view_matching: bool,
    /// Allow the classic-semijoin path to ship a compact Bloom filter
    /// of the outer key set instead of the explicit key list when the
    /// inner source can evaluate one ([`filter_lookup`] capability)
    /// and the filter plus expected false-positive rows is cheaper
    /// than the keys. False positives are removed by the mediator's
    /// residual hash join, so results are identical either way.
    ///
    /// [`filter_lookup`]: gis_catalog::CapabilityProfile::filter_lookup
    pub bloom_semijoin: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            join_strategy: JoinStrategy::Auto,
            bind_batch_size: 1024,
            aggregate_pushdown: true,
            sort_pushdown: true,
            chunk_rows: 1024,
            colocated_join: true,
            parallel_fetch: false,
            tracing: false,
            partial_results: false,
            parallel_kernel_rows: 100_000,
            view_matching: true,
            bloom_semijoin: true,
        }
    }
}

impl ExecOptions {
    /// The naive baseline: ship everything, push nothing.
    pub fn naive() -> Self {
        ExecOptions {
            join_strategy: JoinStrategy::ShipWhole,
            aggregate_pushdown: false,
            sort_pushdown: false,
            colocated_join: false,
            ..ExecOptions::default()
        }
    }
}
